"""Algorithm 2, second stage: verified payment computation.

The honest stage-2 protocol lets every selfish source compute the very
payments it owes — "what is to stop them from running a different
algorithm that computes prices more favorable to them?" (Feigenbaum et
al., quoted in Section III.D). Algorithm 2 counters this with provenance
and re-derivation:

1. every price announcement carries, per entry, *which neighbour
   triggered* the last change (the honest protocol already tracks this);
2. the named trigger re-derives the entry from its own announced state
   and **flags** the announcer on mismatch;
3. any neighbour can additionally flag an announcer whose entry exceeds
   the candidate that neighbour itself offers (the min-rule was ignored).

Signatures are modelled by the simulator stamping message provenance, and
the paper's "audit ... performed later if a disagreement happens" is
realized literally: verification runs as a post-quiescence audit pass
over the cached final announcements, when every candidate has provably
been delivered (so no transient state can cause false flags).

Declared costs are treated as public knowledge — they were broadcast
network-wide in stage 1 — which is what lets a verifier price a relay
``k`` that is not on its own LCP.

**Reliability assumptions.** Both audit checks assume the witness has
the suspect's *final* announcement and the suspect has processed *all*
of the witness's — true at quiescence on a reliable network. Under
fault injection that only holds for witness/suspect pairs whose channel
completed in both directions, so :func:`run_secure_distributed_payments`
skips pairs with a permanently failed delivery between them, skips
nodes crashed at the end, and audits nothing at all when the run was
starved (round cap hit with messages still in flight) — honest-but-
unlucky nodes are never reported.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.distributed.node_proc import NodeProcess
from repro.distributed.payment_protocol import (
    DistributedPaymentResult,
    PaymentNode,
    run_distributed_payments,
)
from repro.graph.node_graph import NodeWeightedGraph

__all__ = ["SecurePaymentNode", "CheatingReport", "run_secure_distributed_payments"]

_EPS = 1e-7


@dataclass(frozen=True)
class CheatingReport:
    """An audit finding: ``witness`` caught ``suspect`` on entry ``relay``."""

    witness: int
    suspect: int
    relay: int
    announced: float
    expected: float
    reason: str

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"node {self.suspect} announced p^{self.relay} = "
            f"{self.announced:.6g} but witness {self.witness} derives "
            f"{self.expected:.6g} ({self.reason})"
        )


class SecurePaymentNode(PaymentNode):
    """Stage-2 node that caches neighbour announcements for the audit.

    Behaviour during the run is identical to :class:`PaymentNode` (the
    update rule is unchanged); the node additionally remembers the final
    announcement it heard from each neighbour and the final announcement
    it sent, which the audit pass consumes.
    """

    def __init__(self, *args, declared_costs=None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.declared_costs = (
            None if declared_costs is None else np.asarray(declared_costs, float)
        )
        self.heard: dict[int, Mapping] = {}
        self.sent: Mapping = {}

    def _announcement(self) -> dict:
        ann = super()._announcement()
        self.sent = ann
        return ann

    def on_message(self, api, sender: int, payload: Mapping) -> None:
        """Handle one delivered message (see NodeProcess).

        The audit cache keeps the *newest* announcement per neighbour:
        under injected delay an old announcement can arrive after a
        newer one, and the versioned ``v`` counter (present in
        fault-aware runs) keeps the stale copy from clobbering the
        cache. Unversioned (lossless) announcements always replace.
        """
        if payload.get("type") == "price":
            old = self.heard.get(sender)
            if old is None or payload.get("v", 0) >= old.get("v", 0):
                self.heard[sender] = payload
        super().on_message(api, sender, payload)

    # -- audit --------------------------------------------------------

    def audit(
        self,
        skip_pairs: frozenset = frozenset(),
        skip_nodes: frozenset = frozenset(),
    ) -> list[CheatingReport]:
        """Verify every cached neighbour announcement against own state.

        Two checks per entry ``k`` of a neighbour ``j`` (skipping
        ``k == self`` — we can never be part of our own avoiding path):

        * **trigger check** — if ``j`` claims *we* triggered ``p_j^k``,
          the value must equal our candidate exactly;
        * **min-rule check** — ``p_j^k`` must not exceed the candidate we
          offered (at quiescence ``j`` has processed all our messages).

        Args:
            skip_pairs: ``(sender, dest)`` pairs whose delivery
                permanently failed — neither check is sound for a
                suspect on a broken channel, so those are skipped.
            skip_nodes: Nodes the audit must not judge (crashed at the
                end of the run) nor act as witness for.

        Returns:
            The :class:`CheatingReport` findings of this witness.
        """
        if not self.sent or self.is_root or not np.isfinite(self.dist):
            return []
        if self.node_id in skip_nodes:
            return []
        reports: list[CheatingReport] = []
        my_prices = self.sent["prices"]
        my_relays = set(self.sent["relays"])
        base_self = self.declared_cost + self.dist
        for j, ann in self.heard.items():
            if (
                j in skip_nodes
                or (self.node_id, j) in skip_pairs
                or (j, self.node_id) in skip_pairs
            ):
                continue
            d_j = float(ann["dist"])
            if not np.isfinite(d_j):
                continue
            for k in ann["relays"]:
                k = int(k)
                if k == self.node_id:
                    continue
                announced = float(ann["prices"].get(k, np.inf))
                cand = self._candidate_for(k, my_prices, my_relays, base_self, d_j)
                if cand is None:
                    continue
                trigger = ann.get("triggers", {}).get(k)
                if trigger == self.node_id and abs(announced - cand) > _EPS:
                    reports.append(
                        CheatingReport(
                            witness=self.node_id,
                            suspect=j,
                            relay=k,
                            announced=announced,
                            expected=cand,
                            reason="claimed-trigger value does not re-derive",
                        )
                    )
                elif announced > cand + _EPS:
                    reports.append(
                        CheatingReport(
                            witness=self.node_id,
                            suspect=j,
                            relay=k,
                            announced=announced,
                            expected=cand,
                            reason="entry exceeds the candidate we offered",
                        )
                    )
        return reports

    def _candidate_for(
        self,
        k: int,
        my_prices: Mapping[int, float],
        my_relays: set,
        base_self: float,
        d_j: float,
    ) -> float | None:
        """The candidate value we offer ``j`` for its entry ``k``."""
        if k in my_relays:
            pk = float(my_prices.get(k, np.inf))
            return pk + base_self - d_j
        if self.declared_costs is None:
            return None  # cannot price an unknown relay
        return float(self.declared_costs[k]) + base_self - d_j


def run_secure_distributed_payments(
    g: NodeWeightedGraph,
    root: int = 0,
    declared_costs=None,
    spt_processes: Mapping[int, NodeProcess] | None = None,
    payment_overrides: Mapping[int, type] | None = None,
    max_rounds: int = 10_000,
    faults=None,
    max_retries: int | None = None,
) -> tuple[DistributedPaymentResult, list[CheatingReport]]:
    """Two-stage run with :class:`SecurePaymentNode` plus the audit pass.

    ``payment_overrides`` maps node id -> a :class:`PaymentNode` subclass
    (e.g. an adversary from :mod:`repro.distributed.adversary`); it is
    constructed with the same signature plus ``declared_costs``.

    Args:
        g: The node-weighted network.
        root: The access point ``v_0``.
        declared_costs: Per-node declarations; defaults to ``g.costs``.
        spt_processes: Optional adversarial stage-1 overrides.
        payment_overrides: Per-node stage-2 class substitutions.
        max_rounds: Engine round cap per stage.
        faults: Optional :class:`~repro.distributed.faults.FaultPlan`.
            The audit then excludes witness/suspect pairs whose channel
            permanently failed in either direction and nodes down at the
            end; a starved run audits nothing (see module docstring).
        max_retries: Per-message retransmission budget (fault runs).

    Returns:
        ``(result, reports)``: the payment result and the audit findings.
    """
    declared = (
        g.costs if declared_costs is None else np.asarray(declared_costs, float)
    )

    def factory(node_id, cost, dist, relays, relay_costs, is_root=False):
        """Construct the (possibly adversarial) stage-2 node."""
        cls = SecurePaymentNode
        if payment_overrides is not None and node_id in payment_overrides:
            cls = payment_overrides[node_id]
        return cls(
            node_id,
            cost,
            dist,
            relays,
            relay_costs,
            is_root=is_root,
            declared_costs=declared,
        )

    result = run_distributed_payments(
        g,
        root=root,
        declared_costs=declared,
        spt_processes=spt_processes,
        payment_node_factory=factory,
        max_rounds=max_rounds,
        faults=faults,
        max_retries=max_retries,
    )
    skip_pairs: frozenset = frozenset()
    skip_nodes: frozenset = frozenset()
    if result.fault_report is not None:
        stage_reports = [result.fault_report]
        if result.spt.fault_report is not None:
            stage_reports.append(result.spt.fault_report)
        if any(not r.converged for r in stage_reports):
            # Starved: messages were still in flight at the round cap, so
            # no announcement cache is final — auditing would convict
            # honest-but-unlucky nodes. Report nothing.
            return result, []
        pairs = set()
        nodes = set()
        for r in stage_reports:
            for a, b in r.failed_pairs:
                pairs.add((a, b))
                pairs.add((b, a))
            nodes.update(r.down_at_end)
        skip_pairs = frozenset(pairs)
        skip_nodes = frozenset(nodes)
    reports: list[CheatingReport] = []
    # The audit pass: every node checks every cached announcement.
    # (In deployment this is the after-the-fact signed-message audit the
    # paper describes; here the runner collects the findings.)
    for proc in result.procs:
        if isinstance(proc, SecurePaymentNode):
            reports.extend(proc.audit(skip_pairs, skip_nodes))
    return result, reports
