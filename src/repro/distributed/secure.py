"""Algorithm 2, second stage: verified payment computation.

The honest stage-2 protocol lets every selfish source compute the very
payments it owes — "what is to stop them from running a different
algorithm that computes prices more favorable to them?" (Feigenbaum et
al., quoted in Section III.D). Algorithm 2 counters this with provenance
and re-derivation:

1. every price announcement carries, per entry, *which neighbour
   triggered* the last change (the honest protocol already tracks this);
2. the named trigger re-derives the entry from its own announced state
   and **flags** the announcer on mismatch;
3. any neighbour can additionally flag an announcer whose entry exceeds
   the candidate that neighbour itself offers (the min-rule was ignored).

Signatures are modelled by the simulator stamping message provenance, and
the paper's "audit ... performed later if a disagreement happens" is
realized literally: verification runs as a post-quiescence audit pass
over the cached final announcements, when every candidate has provably
been delivered (so no transient state can cause false flags).

Declared costs are treated as public knowledge — they were broadcast
network-wide in stage 1 — which is what lets a verifier price a relay
``k`` that is not on its own LCP.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.distributed.node_proc import NodeProcess
from repro.distributed.payment_protocol import (
    DistributedPaymentResult,
    PaymentNode,
    run_distributed_payments,
)
from repro.graph.node_graph import NodeWeightedGraph

__all__ = ["SecurePaymentNode", "CheatingReport", "run_secure_distributed_payments"]

_EPS = 1e-7


@dataclass(frozen=True)
class CheatingReport:
    """An audit finding: ``witness`` caught ``suspect`` on entry ``relay``."""

    witness: int
    suspect: int
    relay: int
    announced: float
    expected: float
    reason: str

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"node {self.suspect} announced p^{self.relay} = "
            f"{self.announced:.6g} but witness {self.witness} derives "
            f"{self.expected:.6g} ({self.reason})"
        )


class SecurePaymentNode(PaymentNode):
    """Stage-2 node that caches neighbour announcements for the audit.

    Behaviour during the run is identical to :class:`PaymentNode` (the
    update rule is unchanged); the node additionally remembers the final
    announcement it heard from each neighbour and the final announcement
    it sent, which the audit pass consumes.
    """

    def __init__(self, *args, declared_costs=None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.declared_costs = (
            None if declared_costs is None else np.asarray(declared_costs, float)
        )
        self.heard: dict[int, Mapping] = {}
        self.sent: Mapping = {}

    def _announcement(self) -> dict:
        ann = super()._announcement()
        self.sent = ann
        return ann

    def on_message(self, api, sender: int, payload: Mapping) -> None:
        """Handle one delivered message (see NodeProcess)."""
        if payload.get("type") == "price":
            self.heard[sender] = payload
        super().on_message(api, sender, payload)

    # -- audit --------------------------------------------------------

    def audit(self) -> list[CheatingReport]:
        """Verify every cached neighbour announcement against own state.

        Two checks per entry ``k`` of a neighbour ``j`` (skipping
        ``k == self`` — we can never be part of our own avoiding path):

        * **trigger check** — if ``j`` claims *we* triggered ``p_j^k``,
          the value must equal our candidate exactly;
        * **min-rule check** — ``p_j^k`` must not exceed the candidate we
          offered (at quiescence ``j`` has processed all our messages).
        """
        if not self.sent or self.is_root or not np.isfinite(self.dist):
            return []
        reports: list[CheatingReport] = []
        my_prices = self.sent["prices"]
        my_relays = set(self.sent["relays"])
        base_self = self.declared_cost + self.dist
        for j, ann in self.heard.items():
            d_j = float(ann["dist"])
            if not np.isfinite(d_j):
                continue
            for k in ann["relays"]:
                k = int(k)
                if k == self.node_id:
                    continue
                announced = float(ann["prices"].get(k, np.inf))
                cand = self._candidate_for(k, my_prices, my_relays, base_self, d_j)
                if cand is None:
                    continue
                trigger = ann.get("triggers", {}).get(k)
                if trigger == self.node_id and abs(announced - cand) > _EPS:
                    reports.append(
                        CheatingReport(
                            witness=self.node_id,
                            suspect=j,
                            relay=k,
                            announced=announced,
                            expected=cand,
                            reason="claimed-trigger value does not re-derive",
                        )
                    )
                elif announced > cand + _EPS:
                    reports.append(
                        CheatingReport(
                            witness=self.node_id,
                            suspect=j,
                            relay=k,
                            announced=announced,
                            expected=cand,
                            reason="entry exceeds the candidate we offered",
                        )
                    )
        return reports

    def _candidate_for(
        self,
        k: int,
        my_prices: Mapping[int, float],
        my_relays: set,
        base_self: float,
        d_j: float,
    ) -> float | None:
        """The candidate value we offer ``j`` for its entry ``k``."""
        if k in my_relays:
            pk = float(my_prices.get(k, np.inf))
            return pk + base_self - d_j
        if self.declared_costs is None:
            return None  # cannot price an unknown relay
        return float(self.declared_costs[k]) + base_self - d_j


def run_secure_distributed_payments(
    g: NodeWeightedGraph,
    root: int = 0,
    declared_costs=None,
    spt_processes: Mapping[int, NodeProcess] | None = None,
    payment_overrides: Mapping[int, type] | None = None,
    max_rounds: int = 10_000,
) -> tuple[DistributedPaymentResult, list[CheatingReport]]:
    """Two-stage run with :class:`SecurePaymentNode` plus the audit pass.

    ``payment_overrides`` maps node id -> a :class:`PaymentNode` subclass
    (e.g. an adversary from :mod:`repro.distributed.adversary`); it is
    constructed with the same signature plus ``declared_costs``.
    """
    declared = (
        g.costs if declared_costs is None else np.asarray(declared_costs, float)
    )

    def factory(node_id, cost, dist, relays, relay_costs, is_root=False):
        """Construct the (possibly adversarial) stage-2 node."""
        cls = SecurePaymentNode
        if payment_overrides is not None and node_id in payment_overrides:
            cls = payment_overrides[node_id]
        return cls(
            node_id,
            cost,
            dist,
            relays,
            relay_costs,
            is_root=is_root,
            declared_costs=declared,
        )

    result = run_distributed_payments(
        g,
        root=root,
        declared_costs=declared,
        spt_processes=spt_processes,
        payment_node_factory=factory,
        max_rounds=max_rounds,
    )
    reports: list[CheatingReport] = []
    # The audit pass: every node checks every cached announcement.
    # (In deployment this is the after-the-fact signed-message audit the
    # paper describes; here the runner collects the findings.)
    for proc in result.procs:
        if isinstance(proc, SecurePaymentNode):
            reports.extend(proc.audit())
    return result, reports
