"""Fault injection and reliable delivery for the distributed protocols.

**Reliability assumptions.** The plain :class:`~repro.distributed.
simulator.Simulator` delivers every message exactly once, one round after
it was sent — the reliable network Section III.C/III.D of the paper
assumes. Real wireless links drop, delay and duplicate frames, and nodes
crash; this module makes both halves of that gap explicit:

* :class:`FaultPlan` / :class:`FaultInjector` describe and execute a
  *seeded, reproducible* fault schedule — per-delivery message loss,
  bounded random delay, duplication, and scheduled node crash/recovery.
  The same seed always yields the same drop/delay/crash trace.
* :class:`ReliableNode` wraps any :class:`~repro.distributed.node_proc.
  NodeProcess` in a per-message acknowledge/retransmit transport
  (sequence numbers, receiver-side deduplication, exponential backoff,
  bounded retry budget) so the paper's protocols survive the injected
  faults without modification.
* :class:`FaultReport` / :func:`build_fault_report` summarise what the
  transport layer can *prove* after a run: whether every send was
  eventually delivered (``clean``), which sender→receiver pairs failed
  permanently, and which nodes are therefore *tainted* (their state may
  silently differ from the lossless fixed point).

The key invariant, regression-tested in ``tests/test_faults.py``: with a
null plan (``loss=0``, no delay, no duplication, no crashes) every
protocol produces bit-identical results, statistics and flags to a run
without fault injection at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.distributed.node_proc import NodeAPI, NodeProcess
from repro.utils.rng import as_rng, derive_seed

__all__ = [
    "CrashWindow",
    "FaultPlan",
    "FaultInjector",
    "ReliableNode",
    "FaultReport",
    "build_fault_report",
    "taint_closure",
    "DEFAULT_MAX_RETRIES",
]

#: Default retransmission budget per message (initial send + 6 retries).
DEFAULT_MAX_RETRIES = 6


@dataclass(frozen=True)
class CrashWindow:
    """One scheduled crash: ``node`` is down in rounds [``down``, ``up``).

    Args:
        node: Node id that crashes.
        down: First engine round during which the node is unavailable.
        up: First round the node is available again (``None`` = never
            recovers). While down the node executes no callbacks, sends
            nothing, and every message addressed to it is dropped; its
            in-memory state survives (crash-recovery with stable storage).

    Returns:
        A frozen schedule entry consumed by :class:`FaultInjector`.
    """

    node: int
    down: int
    up: int | None = None

    def __post_init__(self) -> None:
        if self.down < 0:
            raise ValueError(f"down round must be >= 0, got {self.down}")
        if self.up is not None and self.up <= self.down:
            raise ValueError(
                f"up round {self.up} must be after down round {self.down}"
            )

    def covers(self, round_: int) -> bool:
        """True when the node is crashed during engine round ``round_``."""
        if round_ < self.down:
            return False
        return self.up is None or round_ < self.up


@dataclass(frozen=True)
class FaultPlan:
    """A declarative, seedable description of the injected faults.

    Args:
        loss: Probability in [0, 1) that any single *delivery attempt*
            (one receiver of one transmission) is silently dropped.
        max_delay: Maximum extra delivery delay in whole rounds; each
            surviving delivery draws a uniform extra delay in
            ``[0, max_delay]``. ``0`` keeps the synchronous one-round
            latency.
        duplicate: Probability in [0, 1) that a surviving delivery is
            duplicated (the copy draws its own delay).
        crash: Scheduled :class:`CrashWindow` entries (or bare
            ``(node, down[, up])`` tuples).
        seed: Seed for the fault RNG (anything
            :func:`repro.utils.rng.as_rng` accepts). The same plan and
            seed always produce the same fault trace.

    Returns:
        A frozen plan; pass it to the protocol runners' ``faults=``
        parameter or build a :class:`FaultInjector` from it directly.
    """

    loss: float = 0.0
    max_delay: int = 0
    duplicate: float = 0.0
    crash: tuple[CrashWindow, ...] = ()
    seed: int | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss < 1.0:
            raise ValueError(f"loss must be in [0, 1), got {self.loss}")
        if not 0.0 <= self.duplicate < 1.0:
            raise ValueError(
                f"duplicate must be in [0, 1), got {self.duplicate}"
            )
        if self.max_delay < 0:
            raise ValueError(f"max_delay must be >= 0, got {self.max_delay}")
        windows = tuple(
            w if isinstance(w, CrashWindow) else CrashWindow(*w)
            for w in self.crash
        )
        object.__setattr__(self, "crash", windows)

    @property
    def is_null(self) -> bool:
        """True when the plan injects nothing at all."""
        return (
            self.loss == 0.0
            and self.max_delay == 0
            and self.duplicate == 0.0
            and not self.crash
        )

    def stage(self, label: str) -> "FaultPlan":
        """Derive an equal plan with a stage-specific sub-seed.

        Args:
            label: Stage name (e.g. ``"spt"`` or ``"payment"``); folded
                into the seed with :func:`repro.utils.rng.derive_seed` so
                the two protocol stages draw independent fault streams
                while remaining reproducible from the one plan seed.

        Returns:
            A new :class:`FaultPlan` identical except for the seed.
        """
        base = 0 if self.seed is None else int(self.seed)
        return FaultPlan(
            loss=self.loss,
            max_delay=self.max_delay,
            duplicate=self.duplicate,
            crash=self.crash,
            seed=derive_seed(base, "faults", label),
        )


class FaultInjector:
    """Executable form of a :class:`FaultPlan` with a live RNG and trace.

    The simulator consults :meth:`fate` once per delivery attempt, in a
    deterministic order (send order, then receiver order), so two runs
    with the same plan produce the identical event sequence. Every
    consulted fate is appended to :attr:`trace` for reproducibility
    tests and debugging.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.rng = as_rng(plan.seed)
        #: Dropped delivery attempts (loss only; crash drops are separate).
        self.drops = 0
        #: Extra copies scheduled by duplication.
        self.duplicates = 0
        #: Deliveries that drew a non-zero extra delay.
        self.delayed = 0
        #: (round, sender, dest, fate) per consulted delivery attempt,
        #: where fate is the tuple of extra delays ("()" = dropped).
        self.trace: list[tuple[int, int, int, tuple[int, ...]]] = []

    def crashed(self, node: int, round_: int) -> bool:
        """True when ``node`` is scheduled down during ``round_``."""
        return any(
            w.node == node and w.covers(round_) for w in self.plan.crash
        )

    def crashed_nodes(self, round_: int) -> set[int]:
        """Ids of all nodes scheduled down during ``round_``."""
        return {w.node for w in self.plan.crash if w.covers(round_)}

    def fate(self, round_: int, sender: int, dest: int) -> tuple[int, ...]:
        """Decide what happens to one delivery attempt.

        Args:
            round_: Engine round at which the delivery would normally
                happen.
            sender: Originating node id.
            dest: Receiving node id.

        Returns:
            A tuple of extra delays, one per scheduled copy: ``()``
            means the delivery is dropped, ``(0,)`` is a normal on-time
            delivery, ``(2,)`` arrives two rounds late, ``(0, 1)`` is a
            duplicated delivery whose copy arrives one round late.
        """
        plan = self.plan
        if plan.loss and self.rng.random() < plan.loss:
            self.drops += 1
            fate: tuple[int, ...] = ()
        else:
            delays = [self._draw_delay()]
            if plan.duplicate and self.rng.random() < plan.duplicate:
                self.duplicates += 1
                delays.append(self._draw_delay())
            fate = tuple(delays)
        self.trace.append((round_, sender, dest, fate))
        return fate

    def _draw_delay(self) -> int:
        if self.plan.max_delay == 0:
            return 0
        d = int(self.rng.integers(0, self.plan.max_delay + 1))
        if d:
            self.delayed += 1
        return d


class _ReliableApi:
    """The :class:`~repro.distributed.node_proc.NodeAPI` view handed to a
    wrapped protocol node: sends are enveloped, sequenced and tracked for
    acknowledgement by the owning :class:`ReliableNode`."""

    __slots__ = ("_transport", "_api")

    def __init__(self, transport: "ReliableNode", api: NodeAPI) -> None:
        self._transport = transport
        self._api = api

    @property
    def node_id(self) -> int:
        """This node's identifier."""
        return self._api.node_id

    @property
    def round(self) -> int:
        """Current engine round (virtual time under async delivery)."""
        return self._api.round

    @property
    def neighbors(self) -> Sequence[int]:
        """Ids of the nodes that hear this node's broadcasts."""
        return self._api.neighbors

    def broadcast(self, payload: Mapping) -> None:
        """Queue a reliable broadcast (acked per neighbour)."""
        self._transport._reliable_broadcast(self._api, payload)

    def send(self, dest: int, payload: Mapping) -> None:
        """Queue a reliable unicast (retransmitted until acked)."""
        self._transport._reliable_send(self._api, dest, payload)

    def flag(self, suspect: int, reason: str) -> None:
        """Report a suspect to the punishment authority."""
        self._api.flag(suspect, reason)


@dataclass
class _Pending:
    """One un-acknowledged message awaiting acks or retransmission."""

    seq: int
    body: Mapping
    expect: set[int]
    attempts: int = 1
    next_retry: int = 0


class ReliableNode(NodeProcess):
    """Acknowledge/retransmit transport around any protocol node.

    Every protocol send is wrapped in a ``{"type": "rel", "seq": s,
    "body": ...}`` envelope. Receivers acknowledge each envelope with an
    (unreliable) ``rel-ack`` unicast and deduplicate by ``(sender,
    seq)``, so the inner protocol sees *exactly-once* delivery even when
    the network duplicates or the sender retransmits. Unacknowledged
    envelopes are retransmitted to the remaining receivers with
    exponential backoff (1, 2, 4, ... rounds) until ``max_retries``
    retransmissions are spent, after which the transport gives up and
    records a permanently *failed pair* — the input of
    :func:`build_fault_report`'s taint analysis.

    Args:
        inner: The protocol node to wrap. Attribute access falls through
            to it, so runner code reading ``proc.dist`` etc. keeps
            working on the wrapper.
        max_retries: Retransmissions allowed per message beyond the
            initial send.

    Returns:
        A :class:`~repro.distributed.node_proc.NodeProcess` suitable for
        either simulator.
    """

    def __init__(
        self, inner: NodeProcess, max_retries: int = DEFAULT_MAX_RETRIES
    ) -> None:
        super().__init__(inner.node_id)
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.inner = inner
        self.max_retries = int(max_retries)
        self._seq = 0
        self._pending: dict[int, _Pending] = {}
        self._seen: set[tuple[int, int]] = set()
        self._rapi: _ReliableApi | None = None
        #: Retransmitted unicast copies sent by this node.
        self.retransmissions = 0
        #: Acks this node sent back to senders.
        self.acks_sent = 0
        #: Duplicate envelope deliveries suppressed by the dedup cache.
        self.duplicates_suppressed = 0
        #: Messages abandoned after the retry budget ran out.
        self.retry_exhausted = 0
        #: (self, dest) pairs whose delivery permanently failed.
        self.failed_pairs: set[tuple[int, int]] = set()

    def __getattr__(self, name: str):
        # Fall through to the wrapped protocol node (only reached when
        # normal attribute lookup on the wrapper fails).
        return getattr(self.inner, name)

    def _wrap(self, api: NodeAPI) -> _ReliableApi:
        if self._rapi is None or self._rapi._api is not api:
            self._rapi = _ReliableApi(self, api)
        return self._rapi

    # -- outgoing ----------------------------------------------------------

    def _envelope(self, seq: int, body: Mapping) -> dict:
        return {"type": "rel", "seq": seq, "body": body}

    def _reliable_broadcast(self, api: NodeAPI, body: Mapping) -> None:
        self._seq += 1
        expect = set(api.neighbors)
        api.broadcast(self._envelope(self._seq, body))
        if expect:
            self._pending[self._seq] = _Pending(
                self._seq, body, expect, attempts=1, next_retry=api.round + 1
            )

    def _reliable_send(self, api: NodeAPI, dest: int, body: Mapping) -> None:
        self._seq += 1
        api.send(dest, self._envelope(self._seq, body))
        self._pending[self._seq] = _Pending(
            self._seq, body, {int(dest)}, attempts=1, next_retry=api.round + 1
        )

    # -- NodeProcess hooks -------------------------------------------------

    def start(self, api: NodeAPI) -> None:
        """Start the wrapped protocol node through the reliable layer."""
        self.inner.start(self._wrap(api))

    def on_message(self, api: NodeAPI, sender: int, payload: Mapping) -> None:
        """Ack + dedup incoming envelopes; deliver bodies exactly once."""
        kind = payload.get("type")
        if kind == "rel-ack":
            pend = self._pending.get(payload.get("seq"))
            if pend is not None:
                pend.expect.discard(sender)
                if not pend.expect:
                    del self._pending[pend.seq]
            return
        if kind == "rel":
            seq = int(payload["seq"])
            # Acks are deliberately unreliable: a lost ack just triggers
            # one more retransmission, answered by a fresh ack.
            api.send(sender, {"type": "rel-ack", "seq": seq})
            self.acks_sent += 1
            if (sender, seq) in self._seen:
                self.duplicates_suppressed += 1
                return
            self._seen.add((sender, seq))
            self.inner.on_message(self._wrap(api), sender, payload["body"])
            return
        # Plain message from an unwrapped peer: pass through untouched.
        self.inner.on_message(self._wrap(api), sender, payload)

    def on_round_end(self, api: NodeAPI) -> None:
        """Retransmit overdue envelopes, then run the inner hook."""
        for pend in list(self._pending.values()):
            if api.round < pend.next_retry:
                continue
            if pend.attempts > self.max_retries:
                del self._pending[pend.seq]
                self.retry_exhausted += 1
                for dest in sorted(pend.expect):
                    self.failed_pairs.add((self.node_id, dest))
                    self.inner.on_delivery_failure(
                        self._wrap(api), dest, pend.body
                    )
                continue
            env = self._envelope(pend.seq, pend.body)
            for dest in sorted(pend.expect):
                api.send(dest, env)
                self.retransmissions += 1
            pend.attempts += 1
            pend.next_retry = api.round + (1 << (pend.attempts - 1))
        self.inner.on_round_end(self._wrap(api))

    def on_recover(self, api: NodeAPI) -> None:
        """Reset backoff timers and wake the wrapped node after a crash."""
        for pend in self._pending.values():
            pend.next_retry = min(pend.next_retry, api.round + 1)
        self.inner.on_recover(self._wrap(api))

    def pending_work(self) -> bool:
        """True while un-acked messages or inner timers are outstanding."""
        return bool(self._pending) or self.inner.pending_work()


@dataclass(frozen=True)
class FaultReport:
    """What the transport layer can prove about a faulty run.

    Attributes:
        plan: The executed :class:`FaultPlan`.
        clean: True when every send was eventually delivered and no node
            was down at the end — the condition under which the
            converged state provably equals the lossless fixed point.
        converged: The engine reached quiescence (as opposed to the
            round cap — "partitioned/starved").
        failed_pairs: ``(sender, dest)`` pairs whose delivery
            permanently failed after the retry budget.
        down_at_end: Nodes still crashed when the run stopped.
        tainted: Nodes whose final state cannot be vouched for — the
            adjacency closure of every failure seed (see
            :func:`taint_closure`).
        retransmissions: Total retransmitted unicast copies.
        acks: Total transport acknowledgements sent.
        duplicates_suppressed: Duplicate deliveries hidden from the
            protocols by deduplication.
        retry_exhausted: Messages abandoned after the retry budget.
    """

    plan: FaultPlan
    clean: bool
    converged: bool
    failed_pairs: tuple[tuple[int, int], ...] = ()
    down_at_end: tuple[int, ...] = ()
    tainted: tuple[int, ...] = ()
    retransmissions: int = 0
    acks: int = 0
    duplicates_suppressed: int = 0
    retry_exhausted: int = 0

    @property
    def outcome(self) -> str:
        """``"converged"``, ``"degraded"`` or ``"starved"``."""
        if not self.converged:
            return "starved"
        return "converged" if self.clean else "degraded"


def taint_closure(
    adjacency: Sequence[Sequence[int]], seeds: Iterable[int]
) -> set[int]:
    """Nodes whose state may have been influenced by a failure seed.

    Information flows along edges every round, so any node reachable
    from a seed (in the undirected sense) may have built its state on
    announcements the seed should have refined but could not. This is
    deliberately conservative: it trades precision for the guarantee
    that *untainted* entries equal the lossless fixed point.

    Args:
        adjacency: ``adjacency[i]`` = neighbours of node ``i``.
        seeds: Nodes known to have missed a delivery permanently or to
            have been down when the run stopped.

    Returns:
        The set of tainted node ids (including the seeds).
    """
    tainted = {int(s) for s in seeds}
    frontier = list(tainted)
    while frontier:
        v = frontier.pop()
        for u in adjacency[v]:
            u = int(u)
            if u not in tainted:
                tainted.add(u)
                frontier.append(u)
    return tainted


def build_fault_report(
    sim,
    procs: Sequence[NodeProcess],
    injector: FaultInjector,
) -> FaultReport:
    """Aggregate transport counters and taint into a :class:`FaultReport`.

    Also copies the transport totals onto ``sim.stats`` so they ride
    along in :class:`~repro.distributed.simulator.SimulationStats` and
    the metrics registry.

    Args:
        sim: The finished :class:`~repro.distributed.simulator.Simulator`.
        procs: The processes that ran (``ReliableNode`` wrappers are
            mined for transport counters; plain nodes contribute none).
        injector: The injector that produced the faults.

    Returns:
        The aggregated :class:`FaultReport`.
    """
    stats = sim.stats
    failed: set[tuple[int, int]] = set()
    retrans = acks = dups = exhausted = 0
    for proc in procs:
        if isinstance(proc, ReliableNode):
            failed |= proc.failed_pairs
            retrans += proc.retransmissions
            acks += proc.acks_sent
            dups += proc.duplicates_suppressed
            exhausted += proc.retry_exhausted
    down_at_end = sorted(injector.crashed_nodes(sim.stats.rounds))
    seeds = {d for _, d in failed} | {s for s, _ in failed} | set(down_at_end)
    tainted = taint_closure(sim.adjacency, seeds) if seeds else set()
    stats.retransmissions = retrans
    stats.acks = acks
    stats.retry_exhausted = exhausted
    clean = stats.converged and not failed and not down_at_end
    return FaultReport(
        plan=injector.plan,
        clean=clean,
        converged=stats.converged,
        failed_pairs=tuple(sorted(failed)),
        down_at_end=tuple(down_at_end),
        tainted=tuple(sorted(tainted)),
        retransmissions=retrans,
        acks=acks,
        duplicates_suppressed=dups,
        retry_exhausted=exhausted,
    )
