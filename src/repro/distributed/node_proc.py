"""Node process interface for the round-based simulator.

**Reliability assumptions.** The callbacks below are written against an
abstract transport: by default the engine delivers every send exactly
once (the paper's reliable network). Under fault injection
(:mod:`repro.distributed.faults`) deliveries may be dropped, delayed or
duplicated and nodes may crash, so three additional hooks exist —
:meth:`NodeProcess.on_recover`, :meth:`NodeProcess.on_delivery_failure`
and :meth:`NodeProcess.pending_work` — all of which default to inert
implementations so that protocols written for the reliable network run
unchanged.
"""

from __future__ import annotations

from typing import Mapping, Protocol, Sequence

__all__ = ["NodeAPI", "NodeProcess"]


class NodeAPI(Protocol):
    """What a node may do during a callback.

    Handed to :meth:`NodeProcess.start` and :meth:`NodeProcess.on_message`
    by the simulator. Sends are buffered and delivered next round.
    """

    @property
    def node_id(self) -> int:
        """This node's identifier."""
        ...

    @property
    def round(self) -> int:
        """Current engine round (virtual time under async delivery)."""
        ...

    @property
    def neighbors(self) -> Sequence[int]:
        """Ids of the nodes that hear this node's broadcasts."""
        ...

    def broadcast(self, payload: Mapping) -> None:
        """Queue ``payload`` for delivery to every neighbour next round.

        A single radio transmission reaches the whole vicinity (the
        paper's omnidirectional-antenna assumption), so a broadcast
        counts as one transmission in the statistics.
        """
        ...

    def send(self, dest: int, payload: Mapping) -> None:
        """Queue a unicast to a (not necessarily adjacent) node.

        Models the "contacts ``v_j`` directly using reliable and secure
        connection" step of Algorithm 2. Non-neighbour sends are counted
        separately in the statistics (they cost a routed exchange in a
        real deployment).
        """
        ...

    def flag(self, suspect: int, reason: str) -> None:
        """Report ``suspect`` to the punishment authority (Section III.D:
        "notifies v_j and other nodes; v_j will then be punished")."""
        ...


class NodeProcess:
    """Base class for protocol participants.

    Subclasses override :meth:`start` (called once, round 0) and
    :meth:`on_message` (called for each delivered message). State lives on
    the instance; the simulator never inspects it — only messages count,
    which is what lets adversarial subclasses misbehave realistically.
    """

    def __init__(self, node_id: int) -> None:
        self.node_id = int(node_id)

    def start(self, api: NodeAPI) -> None:  # pragma: no cover - default no-op
        """One-time initialization before round 0 messages are exchanged."""

    def on_message(self, api: NodeAPI, sender: int, payload: Mapping) -> None:
        """Handle a message delivered this round.

        ``sender`` is supplied by the *engine* (provenance cannot be
        forged — the signature substitute).
        """
        raise NotImplementedError

    def on_round_end(self, api: NodeAPI) -> None:  # pragma: no cover
        """Hook after all of this round's messages were handled."""

    def on_recover(self, api: NodeAPI) -> None:  # pragma: no cover
        """Hook fired when this node recovers from a scheduled crash.

        The node's in-memory state survived the crash (crash-recovery
        with stable storage) but every message addressed to it while it
        was down is gone; implementations typically re-announce their
        current state here. Default: do nothing.
        """

    def on_delivery_failure(
        self, api: NodeAPI, dest: int, payload: Mapping
    ) -> None:  # pragma: no cover
        """Hook fired when the reliable transport gives up on a message.

        Args:
            api: The per-node API (flagging/resending is allowed).
            dest: The receiver that never acknowledged.
            payload: The original (un-enveloped) protocol payload.

        Only fired when the node runs wrapped in a
        :class:`~repro.distributed.faults.ReliableNode`. Default: do
        nothing.
        """

    def pending_work(self) -> bool:
        """True while this node holds timers the engine must wait out.

        The engine only declares quiescence when no messages are in
        flight *and* no live process reports pending work — this is how
        retry/backoff and challenge-patience timers keep a faulty run
        alive between retransmissions. Default: no pending work.
        """
        return False
