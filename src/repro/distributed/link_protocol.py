"""Distributed payment computation in the link-cost model (III.C x III.F).

The paper presents the distributed two-stage algorithm in the node-cost
model and the link-cost model only centrally; combining them is routine
and this module does it:

* **Stage 1** — distance-vector SPT toward the access point over *arc*
  weights: ``D(v_i) = min over out-neighbours j of w(i, j) + D(v_j)``,
  with the full route riding along (path-vector, loop-free).

* **Stage 2** — instead of relaxing payments directly, each node relaxes
  the ``v_k``-avoiding distances ``q_i^k = d_{-k}(i)``:

      ``q_i^k = min over out-neighbours j != k of
                w(i, j) + (q_j^k  if k on j's route else  D(v_j))``

  which is the Bellman recursion for the avoiding distance (using
  ``d_{-k}(j) = D(j)`` when ``k`` is not on ``j``'s route). The payment
  then follows Section III.F's formula locally:

      ``p_i^k = d_{k, next(k)} + q_i^k - D(v_i)``

  where ``next(k)`` and ``d_{k, next(k)}`` are known from the stage-1
  route. Entries decrease monotonically, so convergence mirrors the
  node-model protocol (<= n rounds; diameter in practice).

Broadcast domains follow radio reality: a node's announcements are heard
by its *in*-neighbours (whoever can be reached by it... more precisely,
whoever would route *through* it needs to hear it — i.e. nodes ``i`` with
an arc ``i -> announcer``). The runner therefore wires the simulator with
the **reverse** adjacency.

**Reliability assumptions.** This runner targets the plain reliable
engine only: exactly-once delivery, no loss, no crashes. Fault
injection (:mod:`repro.distributed.faults`) is currently wired through
the node-model runners (``run_distributed_spt`` /
``run_distributed_payments``); the link-model protocol would need its
own taint analysis over the *reverse* adjacency before a degraded
result could be reported honestly, so it refuses the temptation to
half-support ``faults=``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.distributed.node_proc import NodeAPI, NodeProcess
from repro.distributed.simulator import SimulationStats, Simulator
from repro.graph.link_graph import LinkWeightedDigraph
from repro.utils.validation import check_node_index

__all__ = [
    "LinkSptNode",
    "LinkPaymentNode",
    "DistributedLinkPaymentResult",
    "run_distributed_link_payments",
]


class LinkSptNode(NodeProcess):
    """Stage 1 participant: distance + route toward the root, arc weights.

    Args:
        node_id: This node's id.
        out_costs: Out-neighbour -> declared arc cost (this node's
            declared type vector restricted to its links).
        is_root: Whether this node is the access point (distance 0).
    """

    def __init__(
        self,
        node_id: int,
        out_costs: Mapping[int, float],
        is_root: bool = False,
    ) -> None:
        super().__init__(node_id)
        self.out_costs = {int(k): float(v) for k, v in out_costs.items()}
        self.is_root = bool(is_root)
        self.dist = 0.0 if is_root else np.inf
        self.route: tuple[int, ...] = ()  # next hop first, ends at root

    def _announcement(self) -> dict:
        return {
            "type": "link-spt",
            "dist": self.dist,
            "route": (self.node_id,) + self.route if not self.is_root else (),
        }

    def start(self, api: NodeAPI) -> None:
        """One-time initialization before the first round."""
        api.broadcast(self._announcement())

    def on_message(self, api: NodeAPI, sender: int, payload: Mapping) -> None:
        """Handle one delivered message (see NodeProcess)."""
        if payload.get("type") != "link-spt" or self.is_root:
            return
        w = self.out_costs.get(sender)
        if w is None:
            return  # we cannot transmit to the announcer
        route = tuple(payload["route"])
        if self.node_id in route:
            return  # loop guard
        cand = w + float(payload["dist"])
        if cand < self.dist - 1e-12:
            self.dist = cand
            # the payload route already starts at the announcer; the root
            # announces an empty route, in which case it *is* the next hop
            self.route = route if route else (sender,)
            api.broadcast(self._announcement())


class LinkPaymentNode(NodeProcess):
    """Stage 2 participant: relaxes avoiding distances ``q_i^k``.

    ``relays`` are the relays on this node's stage-1 route (everything
    except itself and the root), in route order; the corresponding next
    hops and used-link costs come along so payments can be emitted
    locally once the ``q`` entries settle.

    Args:
        node_id: This node's id.
        out_costs: Out-neighbour -> declared arc cost.
        dist: Stage-1 distance to the root (``inf`` if unreachable).
        route: Stage-1 route, next hop first, ending at the root.
        relay_links: Relay -> cost of the link it uses on this route.
        is_root: Whether this node is the access point.
    """

    def __init__(
        self,
        node_id: int,
        out_costs: Mapping[int, float],
        dist: float,
        route: tuple[int, ...],
        relay_links: Mapping[int, float],
        is_root: bool = False,
    ) -> None:
        super().__init__(node_id)
        self.out_costs = {int(k): float(v) for k, v in out_costs.items()}
        self.dist = float(dist)
        self.route = tuple(int(v) for v in route)
        self.relays = tuple(k for k in self.route[:-1]) if self.route else ()
        self.relay_links = {int(k): float(v) for k, v in relay_links.items()}
        self.is_root = bool(is_root)
        self.q: dict[int, float] = {k: np.inf for k in self.relays}
        self._dirty = True

    def _announcement(self) -> dict:
        return {
            "type": "link-price",
            "dist": self.dist,
            "relays": self.relays,
            "q": dict(self.q),
        }

    def start(self, api: NodeAPI) -> None:
        """One-time initialization before the first round."""
        api.broadcast(self._announcement())
        self._dirty = False

    def on_message(self, api: NodeAPI, sender: int, payload: Mapping) -> None:
        """Handle one delivered message (see NodeProcess)."""
        if payload.get("type") != "link-price":
            return
        if self.is_root or not np.isfinite(self.dist):
            return
        w = self.out_costs.get(sender)
        if w is None:
            return
        d_j = float(payload["dist"])
        if not np.isfinite(d_j):
            return
        j_relays = set(payload["relays"])
        j_q = payload["q"]
        changed = False
        for k in self.relays:
            if sender == k:
                continue
            if k in j_relays:
                tail = float(j_q.get(k, np.inf))
            else:
                tail = d_j
            cand = w + tail
            if cand < self.q[k] - 1e-12:
                self.q[k] = cand
                changed = True
        if changed:
            self._dirty = True

    def on_round_end(self, api: NodeAPI) -> None:
        """Per-round housekeeping hook (see NodeProcess)."""
        if self._dirty:
            api.broadcast(self._announcement())
            self._dirty = False

    def payments(self) -> dict[int, float]:
        """Section III.F payments from the converged ``q`` entries."""
        out = {}
        for k in self.relays:
            q = self.q[k]
            if np.isfinite(q):
                out[k] = self.relay_links[k] + (q - self.dist)
        return out


@dataclass(frozen=True)
class DistributedLinkPaymentResult:
    """Converged two-stage link-model output.

    Attributes:
        root: The access point's node id.
        dist: Per-node stage-1 distance to the root.
        routes: Per-node stage-1 route (starting at the node itself).
        prices: Per source, the finite converged payment entries.
        spt_stats: Stage-1 :class:`SimulationStats`.
        stats: Stage-2 :class:`SimulationStats`.
    """
    root: int
    dist: np.ndarray
    routes: tuple[tuple[int, ...], ...]
    prices: tuple[Mapping[int, float], ...]
    spt_stats: SimulationStats
    stats: SimulationStats

    def payment(self, source: int, relay: int) -> float:
        """Payment to one participant (0 when unpaid)."""
        return float(self.prices[source].get(int(relay), 0.0))

    def total_payment(self, source: int) -> float:
        """Total payment across all relays."""
        return float(sum(self.prices[source].values()))


def run_distributed_link_payments(
    dg: LinkWeightedDigraph, root: int = 0, max_rounds: int = 10_000
) -> DistributedLinkPaymentResult:
    """Run both stages on a link-cost digraph; see the module docstring.

    Announcements travel against the arcs (a node that can transmit *to*
    ``j`` is the one that needs ``j``'s advertisements), so the simulator
    runs on the reverse adjacency.

    Args:
        dg: The link-weighted digraph (declared arc costs).
        root: The access point node id.
        max_rounds: Engine round cap per stage.

    Returns:
        A :class:`DistributedLinkPaymentResult` with distances, routes,
        converged payments and both stages' statistics.
    """
    root = check_node_index(root, dg.n)
    rev_adj = [
        dg.reverse().out_neighbors(i)[0].tolist() for i in range(dg.n)
    ]

    def out_costs(i: int) -> dict[int, float]:
        """Declared outgoing arc costs of one node."""
        heads, wts = dg.out_neighbors(i)
        return {int(h): float(w) for h, w in zip(heads, wts)}

    spt_procs = [
        LinkSptNode(i, out_costs(i), is_root=(i == root)) for i in range(dg.n)
    ]
    spt_stats = Simulator(rev_adj, spt_procs).run(max_rounds=max_rounds)

    pay_procs = []
    for i, sp in enumerate(spt_procs):
        route = sp.route  # next hop first, ends at root (empty for root)
        # relay k's used link is k -> its successor along the route
        relay_links = {}
        chain = (i,) + route
        for a, b in zip(chain[1:], chain[2:]):
            relay_links[int(a)] = dg.arc_weight(a, b)
        pay_procs.append(
            LinkPaymentNode(
                i,
                out_costs(i),
                0.0 if i == root else float(sp.dist),
                route,
                relay_links,
                is_root=(i == root),
            )
        )
    stats = Simulator(rev_adj, pay_procs).run(max_rounds=max_rounds)

    dist = np.array(
        [0.0 if i == root else float(spt_procs[i].dist) for i in range(dg.n)]
    )
    routes = tuple(
        ((i,) + spt_procs[i].route if i != root else (root,))
        for i in range(dg.n)
    )
    prices = tuple(p.payments() for p in pay_procs)
    return DistributedLinkPaymentResult(
        root=root,
        dist=dist,
        routes=routes,
        prices=prices,
        spt_stats=spt_stats,
        stats=stats,
    )
