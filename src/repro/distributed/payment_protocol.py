"""Stage 2: distributed computation of the VCG payments (Section III.C).

After stage 1, every node ``v_i`` knows its distance ``c(i, 0)``, its
first hop, and the relays on its LCP. It must now compute the payment
``p_i^k`` it owes each of those relays. The paper adapts the
Feigenbaum-Papadimitriou-Sami-Shenker iterative scheme: entries start at
infinity and are relaxed through neighbours' entries with the update rule
(the paper's rule 3; rules 1-2 are the tree-adjacent special cases):

    for each relay ``k`` of mine, on hearing neighbour ``j`` (``j != k``):

    * if ``k`` is a relay of ``j``:
      ``p_i^k <- min(p_i^k, p_j^k + c_j + c(j,0) - c(i,0))``
    * else:
      ``p_i^k <- min(p_i^k, c_k + c_j + c(j,0) - c(i,0))``

Why this converges to the VCG payment: writing ``p_i^k = c_k +
d_{-k}(i) - d(i)``, the rule is exactly the Bellman relaxation of the
``k``-avoiding distance ``d_{-k}(i) = min_{j ~ i, j != k} (c_j +
d_{-k}(j))``, using ``d_{-k}(j) = d(j)`` when ``k`` is not on ``j``'s LCP.
Entries decrease monotonically, so the network is quiescent after at most
``n`` rounds (Section III.C).

The honest protocol trusts every announcement; the secure variant that
cross-verifies announcements (Algorithm 2, second stage) lives in
:mod:`repro.distributed.secure`.

**Reliability assumptions.** The update rule is a monotone min-fixed-
point iteration, so it tolerates reordering and duplication natively;
loss and crashes do not corrupt entries but can leave them *too high*
(a missed improvement is silent). :func:`run_distributed_payments`
therefore accepts a ``faults=`` plan: nodes run behind the
:class:`~repro.distributed.faults.ReliableNode` ack/retry transport,
and the result degrades gracefully — entries that cannot be vouched for
are reported in ``unresolved`` instead of being silently wrong, and the
attached :class:`~repro.distributed.faults.FaultReport` says whether
the run converged cleanly (in which case every resolved payment
provably equals the lossless value).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.distributed.node_proc import NodeAPI, NodeProcess
from repro.distributed.simulator import SimulationStats, Simulator
from repro.distributed.spt_protocol import (
    DistributedSptResult,
    run_distributed_spt,
)
from repro.graph.node_graph import NodeWeightedGraph

__all__ = [
    "PaymentNode",
    "DistributedPaymentResult",
    "run_distributed_payments",
]


class PaymentNode(NodeProcess):
    """Honest stage-2 participant.

    Parameters
    ----------
    node_id:
        This node's id.
    declared_cost:
        ``c_j`` as declared in stage 1 (rides along in announcements so
        neighbours can apply the update rule).
    dist:
        ``c(i, 0)`` from stage 1 (``inf`` when unreachable).
    relays:
        The relays of this node's LCP, nearest first (excluding the
        root), with their declared costs aligned in ``relay_costs``.
    is_root:
        The access point owns no entries and only relays information.
    versioned:
        When True, announcements carry a monotonically increasing ``v``
        counter so receivers can discard announcements reordered by
        injected delay. Off by default — the lossless wire format (and
        therefore byte accounting) is unchanged unless faults are in
        play.
    """

    def __init__(
        self,
        node_id: int,
        declared_cost: float,
        dist: float,
        relays: Sequence[int],
        relay_costs: Sequence[float],
        is_root: bool = False,
        versioned: bool = False,
    ) -> None:
        super().__init__(node_id)
        self.declared_cost = float(declared_cost)
        self.dist = float(dist)
        self.is_root = bool(is_root)
        self.relays = tuple(int(k) for k in relays)
        self.relay_cost = {
            int(k): float(c) for k, c in zip(relays, relay_costs)
        }
        self.prices: dict[int, float] = {k: np.inf for k in self.relays}
        # Which neighbour's announcement last lowered each entry — the
        # provenance Algorithm 2's verification consumes.
        self.triggers: dict[int, int] = {}
        self._dirty = True
        self.versioned = bool(versioned)
        self._version = 0

    # -- announcements --------------------------------------------------------

    def _announcement(self) -> dict:
        ann = {
            "type": "price",
            "cost": self.declared_cost,
            "dist": self.dist,
            "relays": self.relays,
            "prices": dict(self.prices),
            "triggers": dict(self.triggers),
        }
        if self.versioned:
            self._version += 1
            ann["v"] = self._version
        return ann

    def start(self, api: NodeAPI) -> None:
        """One-time initialization before the first round."""
        api.broadcast(self._announcement())
        self._dirty = False

    # -- updates --------------------------------------------------------

    def on_message(self, api: NodeAPI, sender: int, payload: Mapping) -> None:
        """Handle one delivered message (see NodeProcess)."""
        if payload.get("type") != "price":
            return
        if self.is_root or not np.isfinite(self.dist):
            return
        changed = self._apply_update(sender, payload)
        if changed:
            self._dirty = True

    def _apply_update(self, sender: int, payload: Mapping) -> bool:
        """The paper's update rule against one neighbour announcement."""
        c_j = float(payload["cost"])
        d_j = float(payload["dist"])
        if not np.isfinite(d_j):
            return False
        j_relays = set(payload["relays"])
        j_prices = payload["prices"]
        changed = False
        base = c_j + d_j - self.dist
        for k in self.relays:
            if sender == k:
                continue  # the k-avoiding path cannot start through k
            if k in j_relays:
                pk = float(j_prices.get(k, np.inf))
                cand = pk + base
            else:
                cand = self.relay_cost[k] + base
            if cand < self.prices[k] - 1e-12:
                self.prices[k] = cand
                self.triggers[k] = sender
                changed = True
        return changed

    def on_round_end(self, api: NodeAPI) -> None:
        """Per-round housekeeping hook (see NodeProcess)."""
        if self._dirty:
            api.broadcast(self._announcement())
            self._dirty = False

    def on_recover(self, api: NodeAPI) -> None:
        """Re-announce the surviving entries after a scheduled crash.

        Args:
            api: The per-node engine API.

        Entries survived in stable storage; marking the node dirty makes
        it rebroadcast at the end of the recovery round, resynchronising
        neighbours that progressed while it was down.
        """
        self._dirty = True


@dataclass(frozen=True)
class DistributedPaymentResult:
    """Converged two-stage output, aligned with the centralized mechanism.

    Attributes:
        root: The access point's node id.
        spt: The stage-1 :class:`DistributedSptResult` this run built on.
        prices: Per source, the finite converged payment entries.
        stats: Stage-2 :class:`SimulationStats`.
        procs: The stage-2 protocol nodes (unwrapped), for inspection.
        fault_report: Stage-2 transport summary under fault injection
            (``None`` for reliable runs).
        unresolved: ``(source, relay)`` payment entries the protocol
            cannot vouch for — still infinite at termination, or owned
            by a tainted/crashed node. Empty for reliable runs.
    """

    root: int
    spt: DistributedSptResult
    prices: tuple[Mapping[int, float], ...]
    stats: SimulationStats
    procs: tuple[NodeProcess, ...] = ()
    fault_report: "object | None" = None
    unresolved: tuple[tuple[int, int], ...] = ()

    def payment(self, source: int, relay: int) -> float:
        """Payment to one participant (0 when unpaid).

        Args:
            source: Paying source node.
            relay: Relay being paid.

        Returns:
            The converged entry, or 0.0 when no finite entry exists.
        """
        return float(self.prices[source].get(int(relay), 0.0))

    def total_payment(self, source: int) -> float:
        """Total payment of ``source`` across all its relays.

        Args:
            source: Paying source node.

        Returns:
            Sum of the source's finite payment entries.
        """
        return float(sum(self.prices[source].values()))

    def is_resolved(self, source: int, relay: int) -> bool:
        """True when the entry converged and the run can vouch for it.

        Args:
            source: Paying source node.
            relay: Relay being paid.

        Returns:
            False for entries listed in :attr:`unresolved`; True
            otherwise. For reliable (fault-free) runs every entry is
            resolved.
        """
        return (int(source), int(relay)) not in set(self.unresolved)

    @property
    def all_flags(self):
        """Flags raised in either stage (stage 1 flags live on the SPT
        stats, stage 2 flags on this run's stats)."""
        return list(self.spt.stats.flags) + list(self.stats.flags)


def _unresolved_entries(spt, prices, tainted, root: int, n: int):
    """List the payment entries the run cannot vouch for.

    Args:
        spt: The stage-1 result the payments were built on.
        prices: Per-source finite price dicts.
        tainted: Node ids whose state may differ from the lossless
            fixed point (union of both stages' taint sets).
        root: The access point id.
        n: Node count.

    Returns:
        Sorted ``(source, relay)`` tuples: every entry of a tainted
        source, plus every entry still infinite although the source is
        reachable.
    """
    out = set()
    for i in range(n):
        if i == root or not np.isfinite(spt.dist[i]):
            continue
        for k in spt.relays(i):
            if i in tainted or k not in prices[i]:
                out.add((i, int(k)))
    return tuple(sorted(out))


def run_distributed_payments(
    g: NodeWeightedGraph,
    root: int = 0,
    declared_costs=None,
    spt_processes: Mapping[int, NodeProcess] | None = None,
    payment_node_factory=None,
    max_rounds: int = 10_000,
    faults=None,
    max_retries: int | None = None,
) -> DistributedPaymentResult:
    """Run both stages to quiescence and collect every node's entries.

    Args:
        g: The node-weighted network.
        root: The access point ``v_0``.
        declared_costs: Per-node declarations; defaults to ``g.costs``.
        spt_processes: Optional adversarial stage-1 overrides.
        payment_node_factory: ``factory(node_id, declared_cost, dist,
            relays, relay_costs, is_root)`` substituting adversarial
            stage-2 nodes (default: honest :class:`PaymentNode`).
        max_rounds: Engine round cap per stage.
        faults: Optional :class:`~repro.distributed.faults.FaultPlan`
            applied to *both* stages (each stage derives its own fault
            RNG from the plan seed; the crash schedule is interpreted in
            each stage's own round numbering). A null plan is
            equivalent to ``faults=None``.
        max_retries: Per-message retransmission budget (fault runs).

    Returns:
        A :class:`DistributedPaymentResult`. Under faults, ``stats``
        carries drop/retransmission counters, ``fault_report`` says
        whether the run was clean, and ``unresolved`` lists the entries
        that must not be trusted — graceful degradation instead of
        silently wrong values.
    """
    from repro.distributed.faults import (
        DEFAULT_MAX_RETRIES,
        FaultInjector,
        ReliableNode,
        build_fault_report,
    )

    if faults is not None and faults.is_null:
        faults = None
    declared = g.costs if declared_costs is None else np.asarray(declared_costs, float)
    spt = run_distributed_spt(
        g, root=root, declared_costs=declared, processes=spt_processes,
        max_rounds=max_rounds, faults=faults, max_retries=max_retries,
    )
    factory = payment_node_factory or PaymentNode
    inner: list[NodeProcess] = []
    for i in range(g.n):
        relays = spt.relays(i)
        relay_costs = spt.route_costs[i][: len(relays)]
        node = factory(
            i,
            float(declared[i]),
            float(spt.dist[i]) if i != root else 0.0,
            relays,
            relay_costs,
            is_root=(i == root),
        )
        if faults is not None and isinstance(node, PaymentNode):
            node.versioned = True
        inner.append(node)
    if faults is None:
        procs = inner
        sim = Simulator.from_graph(g, procs)
        stats = sim.run(max_rounds=max_rounds)
        report = None
        unresolved: tuple[tuple[int, int], ...] = ()
    else:
        retries = (
            DEFAULT_MAX_RETRIES if max_retries is None else int(max_retries)
        )
        injector = FaultInjector(faults.stage("payment"))
        procs = [ReliableNode(p, max_retries=retries) for p in inner]
        sim = Simulator.from_graph(g, procs, faults=injector)
        stats = sim.run(max_rounds=max_rounds)
        report = build_fault_report(sim, procs, injector)
    prices = tuple(
        {
            int(k): float(v)
            for k, v in getattr(p, "prices", {}).items()
            if np.isfinite(v)
        }
        for p in inner
    )
    if faults is not None:
        tainted = set(report.tainted)
        if spt.fault_report is not None:
            tainted |= set(spt.fault_report.tainted)
        starved = not report.converged or (
            spt.fault_report is not None and not spt.fault_report.converged
        )
        if starved:
            # A starved stage has messages still in flight: no entry
            # anywhere can be vouched for.
            tainted |= set(range(g.n))
        unresolved = _unresolved_entries(spt, prices, tainted, root, g.n)
    return DistributedPaymentResult(
        root=root,
        spt=spt,
        prices=prices,
        stats=stats,
        procs=tuple(inner),
        fault_report=report,
        unresolved=unresolved,
    )
