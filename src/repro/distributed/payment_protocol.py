"""Stage 2: distributed computation of the VCG payments (Section III.C).

After stage 1, every node ``v_i`` knows its distance ``c(i, 0)``, its
first hop, and the relays on its LCP. It must now compute the payment
``p_i^k`` it owes each of those relays. The paper adapts the
Feigenbaum-Papadimitriou-Sami-Shenker iterative scheme: entries start at
infinity and are relaxed through neighbours' entries with the update rule
(the paper's rule 3; rules 1-2 are the tree-adjacent special cases):

    for each relay ``k`` of mine, on hearing neighbour ``j`` (``j != k``):

    * if ``k`` is a relay of ``j``:
      ``p_i^k <- min(p_i^k, p_j^k + c_j + c(j,0) - c(i,0))``
    * else:
      ``p_i^k <- min(p_i^k, c_k + c_j + c(j,0) - c(i,0))``

Why this converges to the VCG payment: writing ``p_i^k = c_k +
d_{-k}(i) - d(i)``, the rule is exactly the Bellman relaxation of the
``k``-avoiding distance ``d_{-k}(i) = min_{j ~ i, j != k} (c_j +
d_{-k}(j))``, using ``d_{-k}(j) = d(j)`` when ``k`` is not on ``j``'s LCP.
Entries decrease monotonically, so the network is quiescent after at most
``n`` rounds (Section III.C).

The honest protocol trusts every announcement; the secure variant that
cross-verifies announcements (Algorithm 2, second stage) lives in
:mod:`repro.distributed.secure`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.distributed.node_proc import NodeAPI, NodeProcess
from repro.distributed.simulator import SimulationStats, Simulator
from repro.distributed.spt_protocol import (
    DistributedSptResult,
    run_distributed_spt,
)
from repro.graph.node_graph import NodeWeightedGraph

__all__ = [
    "PaymentNode",
    "DistributedPaymentResult",
    "run_distributed_payments",
]


class PaymentNode(NodeProcess):
    """Honest stage-2 participant.

    Parameters
    ----------
    node_id:
        This node's id.
    declared_cost:
        ``c_j`` as declared in stage 1 (rides along in announcements so
        neighbours can apply the update rule).
    dist:
        ``c(i, 0)`` from stage 1 (``inf`` when unreachable).
    relays:
        The relays of this node's LCP, nearest first (excluding the
        root), with their declared costs aligned in ``relay_costs``.
    is_root:
        The access point owns no entries and only relays information.
    """

    def __init__(
        self,
        node_id: int,
        declared_cost: float,
        dist: float,
        relays: Sequence[int],
        relay_costs: Sequence[float],
        is_root: bool = False,
    ) -> None:
        super().__init__(node_id)
        self.declared_cost = float(declared_cost)
        self.dist = float(dist)
        self.is_root = bool(is_root)
        self.relays = tuple(int(k) for k in relays)
        self.relay_cost = {
            int(k): float(c) for k, c in zip(relays, relay_costs)
        }
        self.prices: dict[int, float] = {k: np.inf for k in self.relays}
        # Which neighbour's announcement last lowered each entry — the
        # provenance Algorithm 2's verification consumes.
        self.triggers: dict[int, int] = {}
        self._dirty = True

    # -- announcements --------------------------------------------------------

    def _announcement(self) -> dict:
        return {
            "type": "price",
            "cost": self.declared_cost,
            "dist": self.dist,
            "relays": self.relays,
            "prices": dict(self.prices),
            "triggers": dict(self.triggers),
        }

    def start(self, api: NodeAPI) -> None:
        """One-time initialization before the first round."""
        api.broadcast(self._announcement())
        self._dirty = False

    # -- updates --------------------------------------------------------

    def on_message(self, api: NodeAPI, sender: int, payload: Mapping) -> None:
        """Handle one delivered message (see NodeProcess)."""
        if payload.get("type") != "price":
            return
        if self.is_root or not np.isfinite(self.dist):
            return
        changed = self._apply_update(sender, payload)
        if changed:
            self._dirty = True

    def _apply_update(self, sender: int, payload: Mapping) -> bool:
        """The paper's update rule against one neighbour announcement."""
        c_j = float(payload["cost"])
        d_j = float(payload["dist"])
        if not np.isfinite(d_j):
            return False
        j_relays = set(payload["relays"])
        j_prices = payload["prices"]
        changed = False
        base = c_j + d_j - self.dist
        for k in self.relays:
            if sender == k:
                continue  # the k-avoiding path cannot start through k
            if k in j_relays:
                pk = float(j_prices.get(k, np.inf))
                cand = pk + base
            else:
                cand = self.relay_cost[k] + base
            if cand < self.prices[k] - 1e-12:
                self.prices[k] = cand
                self.triggers[k] = sender
                changed = True
        return changed

    def on_round_end(self, api: NodeAPI) -> None:
        """Per-round housekeeping hook (see NodeProcess)."""
        if self._dirty:
            api.broadcast(self._announcement())
            self._dirty = False


@dataclass(frozen=True)
class DistributedPaymentResult:
    """Converged two-stage output, aligned with the centralized mechanism."""

    root: int
    spt: DistributedSptResult
    prices: tuple[Mapping[int, float], ...]
    stats: SimulationStats
    procs: tuple[NodeProcess, ...] = ()

    def payment(self, source: int, relay: int) -> float:
        """Payment to one participant (0 when unpaid)."""
        return float(self.prices[source].get(int(relay), 0.0))

    def total_payment(self, source: int) -> float:
        """Total payment across all relays."""
        return float(sum(self.prices[source].values()))

    @property
    def all_flags(self):
        """Flags raised in either stage (stage 1 flags live on the SPT
        stats, stage 2 flags on this run's stats)."""
        return list(self.spt.stats.flags) + list(self.stats.flags)


def run_distributed_payments(
    g: NodeWeightedGraph,
    root: int = 0,
    declared_costs=None,
    spt_processes: Mapping[int, NodeProcess] | None = None,
    payment_node_factory=None,
    max_rounds: int = 10_000,
) -> DistributedPaymentResult:
    """Run both stages to quiescence and collect every node's entries.

    ``payment_node_factory(node_id, declared_cost, dist, relays,
    relay_costs, is_root)`` may substitute adversarial stage-2 nodes
    (default: honest :class:`PaymentNode`). Stage-1 substitution goes
    through ``spt_processes``.
    """
    declared = g.costs if declared_costs is None else np.asarray(declared_costs, float)
    spt = run_distributed_spt(
        g, root=root, declared_costs=declared, processes=spt_processes,
        max_rounds=max_rounds,
    )
    factory = payment_node_factory or PaymentNode
    procs: list[NodeProcess] = []
    for i in range(g.n):
        relays = spt.relays(i)
        relay_costs = spt.route_costs[i][: len(relays)]
        procs.append(
            factory(
                i,
                float(declared[i]),
                float(spt.dist[i]) if i != root else 0.0,
                relays,
                relay_costs,
                is_root=(i == root),
            )
        )
    sim = Simulator.from_graph(g, procs)
    stats = sim.run(max_rounds=max_rounds)
    prices = tuple(
        {
            int(k): float(v)
            for k, v in getattr(p, "prices", {}).items()
            if np.isfinite(v)
        }
        for p in procs
    )
    return DistributedPaymentResult(
        root=root, spt=spt, prices=prices, stats=stats, procs=tuple(procs)
    )
