"""Distributed substrate and the paper's distributed payment protocols.

Wireless ad hoc networks lack a centralized authority (Section III.C), so
the mechanism must be computed *by the selfish nodes themselves*. This
package provides:

* :mod:`~repro.distributed.simulator` — a deterministic synchronous
  round-based message-passing engine. Each node is a
  :class:`~repro.distributed.node_proc.NodeProcess`; a broadcast sent in
  round ``r`` is delivered to all neighbours at round ``r + 1``. The
  engine records message provenance itself — a node cannot forge *who* a
  message came from, which is exactly the guarantee the paper obtains
  from digital signatures (Section III.D).

* :mod:`~repro.distributed.spt_protocol` — stage 1: the distributed
  shortest-path-tree computation (``D``/``FH`` entries of Algorithm 2's
  first stage, including the contact-and-correct rule).

* :mod:`~repro.distributed.payment_protocol` — stage 2: the iterative
  price computation of Section III.C (the three min-update rules; the
  entries decrease monotonically and converge in at most ``n`` rounds).

* :mod:`~repro.distributed.secure` — Algorithm 2's cross-verification:
  every announcement names the neighbour that triggered it, the trigger
  re-derives the announcement, and mismatches are flagged for punishment.

* :mod:`~repro.distributed.adversary` — misbehaving node implementations
  (payment inflation, link hiding, update suppression) used by the
  failure-injection tests.

* :mod:`~repro.distributed.faults` — seeded fault injection (message
  loss, bounded delay, duplication, scheduled crashes) plus the
  :class:`~repro.distributed.faults.ReliableNode` ack/retry transport
  that lets the protocols above survive a lossy network. With
  ``faults=None`` (or a null plan) every protocol entry point is
  bit-identical to the reliable-network code path.
"""

from repro.distributed.simulator import Simulator, SimulationStats, Message
from repro.distributed.node_proc import NodeProcess, NodeAPI
from repro.distributed.spt_protocol import SptNode, run_distributed_spt
from repro.distributed.payment_protocol import (
    PaymentNode,
    run_distributed_payments,
    DistributedPaymentResult,
)
from repro.distributed.secure import SecurePaymentNode, CheatingReport
from repro.distributed.adversary import (
    PaymentInflatorNode,
    LinkHiderSptNode,
    SilentNode,
)
from repro.distributed.async_sim import AsyncSimulator
from repro.distributed.link_protocol import (
    run_distributed_link_payments,
    DistributedLinkPaymentResult,
)
from repro.distributed.faults import (
    CrashWindow,
    FaultInjector,
    FaultPlan,
    FaultReport,
    ReliableNode,
    build_fault_report,
    taint_closure,
)

__all__ = [
    "Simulator",
    "SimulationStats",
    "Message",
    "NodeProcess",
    "NodeAPI",
    "SptNode",
    "run_distributed_spt",
    "PaymentNode",
    "run_distributed_payments",
    "DistributedPaymentResult",
    "SecurePaymentNode",
    "CheatingReport",
    "PaymentInflatorNode",
    "LinkHiderSptNode",
    "SilentNode",
    "AsyncSimulator",
    "run_distributed_link_payments",
    "DistributedLinkPaymentResult",
    "FaultPlan",
    "FaultInjector",
    "FaultReport",
    "CrashWindow",
    "ReliableNode",
    "build_fault_report",
    "taint_closure",
]
