"""Stage 1: distributed shortest-path-tree construction (Algorithm 2).

Every node maintains two entries (paper notation): ``D(v_i)`` — the cost
of its current best path to the access point ``v_0``, counting the
declared costs of the *relays* strictly between ``v_i`` and ``v_0`` — and
``FH(v_i)`` — the first hop of that path. Nodes broadcast
``(declared cost, D, route)`` whenever their state improves; receiving a
neighbour's announcement triggers the relaxation
``D(v_i) = min(D(v_i), D(v_j) + c_j)``.

The route (relay ids + declared costs) rides along with the announcement
— stage 2 needs each source to know exactly which relays it must price.

**Algorithm 2's correction rule.** A selfish node may ignore profitable
links (Figure 2: hiding an edge can lower the source's total payment).
The countermeasure: when ``v_i`` hears ``v_j`` announce a distance worse
than what ``v_i`` offers (``D_j > D_i + c_i``), it *challenges* ``v_j``
over the reliable direct channel; an honest ``v_j`` must adopt the offer
(or prove it already has something at least as good) and rebroadcast.
A node that ignores challenges is flagged for punishment. Link-hiding is
thereby detectable — the protocol no longer relies on nodes volunteering
their neighbourhood truthfully.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.distributed.node_proc import NodeAPI, NodeProcess
from repro.distributed.simulator import SimulationStats, Simulator
from repro.graph.node_graph import NodeWeightedGraph

__all__ = ["SptNode", "run_distributed_spt", "DistributedSptResult"]

#: Rounds a challenged node gets to comply before it is flagged.
CHALLENGE_PATIENCE = 3


class SptNode(NodeProcess):
    """Honest stage-1 participant.

    Parameters
    ----------
    node_id:
        This node's id.
    declared_cost:
        The relaying cost this node *declares* (``d_i``; a rational node
        declares its true cost — that is the mechanism's whole point —
        but the protocol does not assume it).
    is_root:
        True for the access point ``v_0``, which anchors ``D = 0`` and
        never relays for itself.
    """

    def __init__(
        self,
        node_id: int,
        declared_cost: float,
        is_root: bool = False,
        challenge_patience: int = CHALLENGE_PATIENCE,
    ) -> None:
        super().__init__(node_id)
        self.declared_cost = float(declared_cost)
        self.is_root = bool(is_root)
        if challenge_patience < 1:
            raise ValueError(
                f"challenge_patience must be >= 1, got {challenge_patience}"
            )
        # How long (in engine time units) a challenged neighbour gets to
        # answer. The synchronous engine needs a full round trip (~3
        # rounds); asynchronous runners must scale this with their
        # maximum delivery latency.
        self.challenge_patience = int(challenge_patience)
        self.dist = 0.0 if is_root else np.inf
        self.first_hop = -1
        # route = relay ids between self and the root, nearest first,
        # ending with the root; parallel tuple of their declared costs.
        self.route: tuple[int, ...] = () if not is_root else ()
        self.route_costs: tuple[float, ...] = ()
        # neighbour id -> last announced state (via_cost, route, costs, dist)
        self._offers: dict[int, dict] = {}
        # suspect -> (offered via_cost, round of challenge, nonce). The
        # nonce correlates acks with the challenge they answer: under
        # asynchronous delivery a stale ack from an older challenge may
        # arrive after a newer, tighter offer was issued and must not be
        # judged against it.
        self._challenges: dict[int, tuple[float, int, int]] = {}
        self._challenge_seq = 0
        # suspects already flagged — never challenged again (so the
        # network can go quiescent around a stonewalling node)
        self._flagged: set[int] = set()

    # -- announcements --------------------------------------------------------

    def _announcement(self) -> dict:
        """What the node tells its vicinity.

        ``via_cost`` is the distance a *neighbour* would obtain by routing
        through this node (``D + c`` for ordinary nodes, 0 for the root —
        the root is never a paid relay). ``route`` is the relay chain the
        neighbour would inherit (this node first).
        """
        if self.is_root:
            return {
                "type": "spt",
                "via_cost": 0.0,
                "dist": 0.0,
                "route": (),
                "route_costs": (),
                "cost": self.declared_cost,
            }
        return {
            "type": "spt",
            "via_cost": self.dist + self.declared_cost,
            "dist": self.dist,
            "route": (self.node_id,) + self.route,
            "route_costs": (self.declared_cost,) + self.route_costs,
            "cost": self.declared_cost,
        }

    def start(self, api: NodeAPI) -> None:
        """One-time initialization before the first round."""
        api.broadcast(self._announcement())

    # -- message handling --------------------------------------------------------

    def on_message(self, api: NodeAPI, sender: int, payload: Mapping) -> None:
        """Handle one delivered message (see NodeProcess)."""
        kind = payload.get("type")
        if kind == "spt":
            self._handle_announcement(api, sender, payload)
        elif kind == "spt-challenge":
            self._handle_challenge(api, sender, payload)
        elif kind == "spt-challenge-ack":
            self._handle_ack(api, sender, payload)

    def _handle_announcement(self, api: NodeAPI, sender: int, payload: Mapping) -> None:
        self._offers[sender] = {
            "via": float(payload["via_cost"]),
            "route": tuple(payload["route"]),
            "route_costs": tuple(payload["route_costs"]),
            "dist": float(payload["dist"]),
        }
        changed = self._consider(
            sender,
            self._offers[sender]["via"],
            self._offers[sender]["route"],
            self._offers[sender]["route_costs"],
        )
        if changed:
            api.broadcast(self._announcement())
        self._maybe_challenge(api, sender)

    def _my_offer(self) -> float:
        """The via-cost a neighbour obtains routing through us (0 for the
        root: it *is* the destination)."""
        return 0.0 if self.is_root else self.dist + self.declared_cost

    def _challenge_payload(self, offer: float, nonce: int) -> dict:
        return {
            "type": "spt-challenge",
            "via_cost": offer,
            "nonce": nonce,
            "route": () if self.is_root else (self.node_id,) + self.route,
            "route_costs": ()
            if self.is_root
            else (self.declared_cost,) + self.route_costs,
        }

    def _maybe_challenge(self, api: NodeAPI, neighbor: int) -> None:
        """Algorithm 2, first stage: challenge a neighbour whose last
        announced distance is strictly worse than our offer."""
        if neighbor in self._challenges or neighbor in self._flagged:
            return
        offer = self._my_offer()
        if not np.isfinite(offer):
            return
        info = self._offers.get(neighbor)
        if info is not None and info["dist"] > offer + 1e-12:
            self._challenge_seq += 1
            nonce = self._challenge_seq
            self._challenges[neighbor] = (offer, api.round, nonce)
            api.send(neighbor, self._challenge_payload(offer, nonce))

    def _handle_challenge(self, api: NodeAPI, sender: int, payload: Mapping) -> None:
        via = float(payload["via_cost"])
        route = tuple(payload["route"])
        route_costs = tuple(payload["route_costs"])
        changed = self._consider(sender, via, route, route_costs)
        if changed:
            api.broadcast(self._announcement())
        api.send(
            sender,
            {
                "type": "spt-challenge-ack",
                "dist": self.dist,
                "nonce": payload.get("nonce"),
            },
        )

    def _handle_ack(self, api: NodeAPI, sender: int, payload: Mapping) -> None:
        acked_dist = float(payload["dist"])
        if sender in self._offers:
            # distances only ever improve; never let a stale ack raise the
            # cached view (it would just trigger pointless re-challenges)
            if acked_dist < self._offers[sender]["dist"]:
                self._offers[sender]["dist"] = acked_dist
        if sender not in self._challenges:
            return
        offer, _, nonce = self._challenges[sender]
        if payload.get("nonce") != nonce:
            return  # stale ack answering an older challenge
        del self._challenges[sender]
        if acked_dist > offer + 1e-12:
            self._flagged.add(sender)
            api.flag(sender, "rejected a strictly better route offer")

    def on_round_end(self, api: NodeAPI) -> None:
        # Outstanding challenges are re-sent every round (which also keeps
        # the network from going quiescent around a stonewalling node);
        # nodes that never answer get flagged once patience runs out.
        """Per-round housekeeping hook (see NodeProcess)."""
        expired = []
        for suspect, (offer, when, nonce) in self._challenges.items():
            if api.round - when >= self.challenge_patience:
                expired.append(suspect)
            else:
                api.send(suspect, self._challenge_payload(offer, nonce))
        for suspect in expired:
            del self._challenges[suspect]
            self._flagged.add(suspect)
            api.flag(suspect, "ignored a route-correction challenge")
        # Our own distance may have improved after a neighbour's last
        # announcement — re-examine the cached announcements.
        for neighbor in list(self._offers):
            self._maybe_challenge(api, neighbor)

    # -- relaxation --------------------------------------------------------

    def _consider(
        self,
        sender: int,
        via: float,
        route: tuple,
        route_costs: tuple,
    ) -> bool:
        """Relax toward ``sender``'s offer; True if our state improved."""
        if self.is_root:
            return False
        if self.node_id in route:
            return False  # loop guard: never route through ourselves
        if via < self.dist - 1e-12:
            self.dist = via
            self.first_hop = sender
            self.route = route
            self.route_costs = route_costs
            return True
        return False


@dataclass(frozen=True)
class DistributedSptResult:
    """Converged stage-1 state, aligned with the centralized SPT."""

    root: int
    dist: np.ndarray
    first_hop: np.ndarray
    routes: tuple[tuple[int, ...], ...]
    route_costs: tuple[tuple[float, ...], ...]
    stats: SimulationStats

    def relays(self, i: int) -> tuple[int, ...]:
        """Relays source ``i`` must pay: its route minus the root."""
        return tuple(v for v in self.routes[i] if v != self.root)


def run_distributed_spt(
    g: NodeWeightedGraph,
    root: int = 0,
    declared_costs=None,
    processes: Mapping[int, NodeProcess] | None = None,
    max_rounds: int = 10_000,
) -> DistributedSptResult:
    """Run stage 1 to quiescence on graph ``g``.

    ``declared_costs`` defaults to ``g.costs`` (truthful declarations).
    ``processes`` may override individual node implementations with
    adversarial ones (keyed by node id).
    """
    declared = g.costs if declared_costs is None else np.asarray(declared_costs, float)
    procs: list[NodeProcess] = []
    for i in range(g.n):
        if processes is not None and i in processes:
            procs.append(processes[i])
        else:
            procs.append(SptNode(i, float(declared[i]), is_root=(i == root)))
    sim = Simulator.from_graph(g, procs)
    stats = sim.run(max_rounds=max_rounds)
    dist = np.full(g.n, np.inf)
    first_hop = np.full(g.n, -1, dtype=np.int64)
    routes: list[tuple[int, ...]] = []
    route_costs: list[tuple[float, ...]] = []
    for i, proc in enumerate(procs):
        d = getattr(proc, "dist", np.inf)
        dist[i] = 0.0 if i == root else d
        first_hop[i] = getattr(proc, "first_hop", -1)
        r = tuple(getattr(proc, "route", ()))
        routes.append(r + ((root,) if (i != root and np.isfinite(dist[i])) else ()))
        route_costs.append(tuple(getattr(proc, "route_costs", ())))
    return DistributedSptResult(
        root=root,
        dist=dist,
        first_hop=first_hop,
        routes=tuple(routes),
        route_costs=tuple(route_costs),
        stats=stats,
    )
