"""Stage 1: distributed shortest-path-tree construction (Algorithm 2).

Every node maintains two entries (paper notation): ``D(v_i)`` — the cost
of its current best path to the access point ``v_0``, counting the
declared costs of the *relays* strictly between ``v_i`` and ``v_0`` — and
``FH(v_i)`` — the first hop of that path. Nodes broadcast
``(declared cost, D, route)`` whenever their state improves; receiving a
neighbour's announcement triggers the relaxation
``D(v_i) = min(D(v_i), D(v_j) + c_j)``.

The route (relay ids + declared costs) rides along with the announcement
— stage 2 needs each source to know exactly which relays it must price.

**Algorithm 2's correction rule.** A selfish node may ignore profitable
links (Figure 2: hiding an edge can lower the source's total payment).
The countermeasure: when ``v_i`` hears ``v_j`` announce a distance worse
than what ``v_i`` offers (``D_j > D_i + c_i``), it *challenges* ``v_j``
over the reliable direct channel; an honest ``v_j`` must adopt the offer
(or prove it already has something at least as good) and rebroadcast.
A node that ignores challenges is flagged for punishment. Link-hiding is
thereby detectable — the protocol no longer relies on nodes volunteering
their neighbourhood truthfully.

**Reliability assumptions.** By default the protocol assumes the
engine's reliable exactly-once delivery (the paper's setting). Passing
``faults=`` to :func:`run_distributed_spt` runs every node behind a
:class:`~repro.distributed.faults.ReliableNode` ack/retry transport and
relaxes the punishment rule so honest-but-unlucky nodes are never
flagged: timeout flags are withdrawn when the challenge (or its answer)
is known to have been lost, when the suspect was crashed, or when a late
answer eventually arrives (*exoneration*).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.distributed.node_proc import NodeAPI, NodeProcess
from repro.distributed.simulator import SimulationStats, Simulator
from repro.graph.node_graph import NodeWeightedGraph

__all__ = ["SptNode", "run_distributed_spt", "DistributedSptResult"]

#: Rounds a challenged node gets to comply before it is flagged.
CHALLENGE_PATIENCE = 3


class SptNode(NodeProcess):
    """Honest stage-1 participant.

    Parameters
    ----------
    node_id:
        This node's id.
    declared_cost:
        The relaying cost this node *declares* (``d_i``; a rational node
        declares its true cost — that is the mechanism's whole point —
        but the protocol does not assume it).
    is_root:
        True for the access point ``v_0``, which anchors ``D = 0`` and
        never relays for itself.
    challenge_patience:
        Rounds a challenged node gets to answer before it is flagged.
    resend_challenges:
        When True (default, the lossless setting) outstanding challenges
        are re-sent every round, which keeps the network from going
        quiescent around a stonewalling node. Under a reliable transport
        the re-send is redundant (the transport retransmits) and the
        :meth:`pending_work` hook keeps the engine alive instead, so the
        fault-aware runner disables it.
    """

    def __init__(
        self,
        node_id: int,
        declared_cost: float,
        is_root: bool = False,
        challenge_patience: int = CHALLENGE_PATIENCE,
        resend_challenges: bool = True,
    ) -> None:
        super().__init__(node_id)
        self.declared_cost = float(declared_cost)
        self.is_root = bool(is_root)
        if challenge_patience < 1:
            raise ValueError(
                f"challenge_patience must be >= 1, got {challenge_patience}"
            )
        # How long (in engine time units) a challenged neighbour gets to
        # answer. The synchronous engine needs a full round trip (~3
        # rounds); asynchronous runners must scale this with their
        # maximum delivery latency.
        self.challenge_patience = int(challenge_patience)
        self.dist = 0.0 if is_root else np.inf
        self.first_hop = -1
        # route = relay ids between self and the root, nearest first,
        # ending with the root; parallel tuple of their declared costs.
        self.route: tuple[int, ...] = () if not is_root else ()
        self.route_costs: tuple[float, ...] = ()
        # neighbour id -> last announced state (via_cost, route, costs, dist)
        self._offers: dict[int, dict] = {}
        # suspect -> (offered via_cost, round of challenge, nonce). The
        # nonce correlates acks with the challenge they answer: under
        # asynchronous delivery a stale ack from an older challenge may
        # arrive after a newer, tighter offer was issued and must not be
        # judged against it.
        self._challenges: dict[int, tuple[float, int, int]] = {}
        self._challenge_seq = 0
        # suspects already flagged — never challenged again (so the
        # network can go quiescent around a stonewalling node)
        self._flagged: set[int] = set()
        self.resend_challenges = bool(resend_challenges)
        # nonce -> (suspect, offer) for challenges that timed out; a late
        # answer exonerates the suspect (fault-aware runs only).
        self._expired: dict[int, tuple[int, float]] = {}
        #: (suspect, nonce) pairs whose timeout flag was answered late —
        #: the runner withdraws the corresponding flag.
        self.exonerations: list[tuple[int, int]] = []

    # -- announcements --------------------------------------------------------

    def _announcement(self) -> dict:
        """What the node tells its vicinity.

        ``via_cost`` is the distance a *neighbour* would obtain by routing
        through this node (``D + c`` for ordinary nodes, 0 for the root —
        the root is never a paid relay). ``route`` is the relay chain the
        neighbour would inherit (this node first).
        """
        if self.is_root:
            return {
                "type": "spt",
                "via_cost": 0.0,
                "dist": 0.0,
                "route": (),
                "route_costs": (),
                "cost": self.declared_cost,
            }
        return {
            "type": "spt",
            "via_cost": self.dist + self.declared_cost,
            "dist": self.dist,
            "route": (self.node_id,) + self.route,
            "route_costs": (self.declared_cost,) + self.route_costs,
            "cost": self.declared_cost,
        }

    def start(self, api: NodeAPI) -> None:
        """One-time initialization before the first round."""
        api.broadcast(self._announcement())

    # -- message handling --------------------------------------------------------

    def on_message(self, api: NodeAPI, sender: int, payload: Mapping) -> None:
        """Handle one delivered message (see NodeProcess)."""
        kind = payload.get("type")
        if kind == "spt":
            self._handle_announcement(api, sender, payload)
        elif kind == "spt-challenge":
            self._handle_challenge(api, sender, payload)
        elif kind == "spt-challenge-ack":
            self._handle_ack(api, sender, payload)

    def _handle_announcement(self, api: NodeAPI, sender: int, payload: Mapping) -> None:
        self._offers[sender] = {
            "via": float(payload["via_cost"]),
            "route": tuple(payload["route"]),
            "route_costs": tuple(payload["route_costs"]),
            "dist": float(payload["dist"]),
        }
        changed = self._consider(
            sender,
            self._offers[sender]["via"],
            self._offers[sender]["route"],
            self._offers[sender]["route_costs"],
        )
        if changed:
            api.broadcast(self._announcement())
        self._maybe_challenge(api, sender)

    def _my_offer(self) -> float:
        """The via-cost a neighbour obtains routing through us (0 for the
        root: it *is* the destination)."""
        return 0.0 if self.is_root else self.dist + self.declared_cost

    def _challenge_payload(self, offer: float, nonce: int) -> dict:
        return {
            "type": "spt-challenge",
            "via_cost": offer,
            "nonce": nonce,
            "route": () if self.is_root else (self.node_id,) + self.route,
            "route_costs": ()
            if self.is_root
            else (self.declared_cost,) + self.route_costs,
        }

    def _maybe_challenge(self, api: NodeAPI, neighbor: int) -> None:
        """Algorithm 2, first stage: challenge a neighbour whose last
        announced distance is strictly worse than our offer."""
        if neighbor in self._challenges or neighbor in self._flagged:
            return
        offer = self._my_offer()
        if not np.isfinite(offer):
            return
        info = self._offers.get(neighbor)
        if info is not None and info["dist"] > offer + 1e-12:
            self._challenge_seq += 1
            nonce = self._challenge_seq
            self._challenges[neighbor] = (offer, api.round, nonce)
            api.send(neighbor, self._challenge_payload(offer, nonce))

    def _handle_challenge(self, api: NodeAPI, sender: int, payload: Mapping) -> None:
        via = float(payload["via_cost"])
        route = tuple(payload["route"])
        route_costs = tuple(payload["route_costs"])
        changed = self._consider(sender, via, route, route_costs)
        if changed:
            api.broadcast(self._announcement())
        api.send(
            sender,
            {
                "type": "spt-challenge-ack",
                "dist": self.dist,
                "nonce": payload.get("nonce"),
            },
        )

    def _handle_ack(self, api: NodeAPI, sender: int, payload: Mapping) -> None:
        acked_dist = float(payload["dist"])
        if sender in self._offers:
            # distances only ever improve; never let a stale ack raise the
            # cached view (it would just trigger pointless re-challenges)
            if acked_dist < self._offers[sender]["dist"]:
                self._offers[sender]["dist"] = acked_dist
        nonce = payload.get("nonce")
        if sender not in self._challenges:
            # A late answer to a challenge that already timed out: the
            # suspect did comply, the network was just slow/lossy.
            expired = self._expired.pop(nonce, None)
            if expired is not None:
                suspect, offer = expired
                if suspect == sender and acked_dist <= offer + 1e-12:
                    self.exonerations.append((sender, int(nonce)))
                    self._flagged.discard(sender)
            return
        offer, _, expected_nonce = self._challenges[sender]
        if nonce != expected_nonce:
            return  # stale ack answering an older challenge
        del self._challenges[sender]
        if acked_dist > offer + 1e-12:
            self._flagged.add(sender)
            api.flag(sender, "rejected a strictly better route offer")

    def on_round_end(self, api: NodeAPI) -> None:
        # Outstanding challenges are re-sent every round (which also keeps
        # the network from going quiescent around a stonewalling node);
        # nodes that never answer get flagged once patience runs out.
        """Per-round housekeeping hook (see NodeProcess)."""
        expired = []
        for suspect, (offer, when, nonce) in self._challenges.items():
            if api.round - when >= self.challenge_patience:
                expired.append(suspect)
            elif self.resend_challenges:
                api.send(suspect, self._challenge_payload(offer, nonce))
        for suspect in expired:
            offer, _, nonce = self._challenges.pop(suspect)
            self._flagged.add(suspect)
            self._expired[nonce] = (suspect, offer)
            api.flag(suspect, "ignored a route-correction challenge")
        # Our own distance may have improved after a neighbour's last
        # announcement — re-examine the cached announcements.
        for neighbor in list(self._offers):
            self._maybe_challenge(api, neighbor)

    def on_recover(self, api: NodeAPI) -> None:
        """Re-announce the surviving state after a scheduled crash.

        Args:
            api: The per-node engine API.

        The node's ``D``/``FH`` entries survived the crash; neighbours
        may have moved on while it was down, so it re-broadcasts its
        announcement to resynchronise (and to let neighbours re-offer).
        """
        api.broadcast(self._announcement())

    def on_delivery_failure(
        self, api: NodeAPI, dest: int, payload: Mapping
    ) -> None:
        """Withdraw a challenge whose delivery permanently failed.

        Args:
            api: The per-node engine API.
            dest: The unreachable neighbour.
            payload: The protocol payload the transport gave up on.

        A challenge that never reached the suspect must not end in a
        punishment flag (the suspect is unlucky, not selfish); the
        suspect is also excluded from future challenges — the channel is
        demonstrably broken, so re-challenging would loop forever.
        """
        if payload.get("type") != "spt-challenge":
            return
        pending = self._challenges.get(dest)
        if pending is not None and pending[2] == payload.get("nonce"):
            del self._challenges[dest]
            self._flagged.add(dest)  # do not re-challenge; no flag raised

    def pending_work(self) -> bool:
        """True while challenge-patience timers must keep the engine live.

        Only reported when per-round re-sending is disabled (fault-aware
        runs); with re-sending on, the re-sent challenges themselves
        keep the network busy, preserving the pre-fault behaviour.
        """
        return not self.resend_challenges and bool(self._challenges)

    # -- relaxation --------------------------------------------------------

    def _consider(
        self,
        sender: int,
        via: float,
        route: tuple,
        route_costs: tuple,
    ) -> bool:
        """Relax toward ``sender``'s offer; True if our state improved."""
        if self.is_root:
            return False
        if self.node_id in route:
            return False  # loop guard: never route through ourselves
        if via < self.dist - 1e-12:
            self.dist = via
            self.first_hop = sender
            self.route = route
            self.route_costs = route_costs
            return True
        return False


@dataclass(frozen=True)
class DistributedSptResult:
    """Converged stage-1 state, aligned with the centralized SPT.

    Attributes:
        root: The access point's node id.
        dist: ``dist[i]`` = converged ``D(v_i)`` (``inf`` when
            unreachable or permanently starved).
        first_hop: ``first_hop[i]`` = converged ``FH(v_i)`` (-1 unset).
        routes: Per node, the relay chain to the root (ending with it).
        route_costs: Declared costs aligned with each route's relays.
        stats: The engine's :class:`SimulationStats`.
        fault_report: Transport summary when the run was fault-injected
            (``None`` for reliable runs).
    """

    root: int
    dist: np.ndarray
    first_hop: np.ndarray
    routes: tuple[tuple[int, ...], ...]
    route_costs: tuple[tuple[float, ...], ...]
    stats: SimulationStats
    fault_report: "object | None" = None

    def relays(self, i: int) -> tuple[int, ...]:
        """Relays source ``i`` must pay: its route minus the root.

        Args:
            i: Source node id.

        Returns:
            Relay ids nearest-first, excluding the root.
        """
        return tuple(v for v in self.routes[i] if v != self.root)


def _withdraw_unlucky_flags(stats, inner_procs, report) -> None:
    """Drop timeout flags that fault injection — not selfishness — caused.

    Args:
        stats: The run's :class:`SimulationStats` (flags edited in place).
        inner_procs: The unwrapped protocol nodes (exoneration records).
        report: The run's :class:`~repro.distributed.faults.FaultReport`.

    A flag for "ignored a route-correction challenge" is withdrawn when
    the challenge or its answer is known lost (a permanently failed pair
    between witness and suspect in either direction), when the suspect
    was still crashed at the end of the run, or when the suspect's late
    answer exonerated it.
    """
    exonerated = set()
    for proc in inner_procs:
        for suspect, _nonce in getattr(proc, "exonerations", ()):
            exonerated.add((proc.node_id, suspect))
    bad = set(report.failed_pairs)
    bad |= {(b, a) for a, b in report.failed_pairs}
    down = set(report.down_at_end)
    stats.flags[:] = [
        f
        for f in stats.flags
        if not (
            f.reason == "ignored a route-correction challenge"
            and (
                (f.witness, f.suspect) in exonerated
                or (f.witness, f.suspect) in bad
                or f.suspect in down
            )
        )
    ]


def run_distributed_spt(
    g: NodeWeightedGraph,
    root: int = 0,
    declared_costs=None,
    processes: Mapping[int, NodeProcess] | None = None,
    max_rounds: int = 10_000,
    faults=None,
    max_retries: int | None = None,
) -> DistributedSptResult:
    """Run stage 1 to quiescence on graph ``g``.

    Args:
        g: The node-weighted network (undirected).
        root: The access point ``v_0``.
        declared_costs: Per-node declared costs; defaults to ``g.costs``
            (truthful declarations).
        processes: Optional per-node overrides with adversarial
            implementations (keyed by node id).
        max_rounds: Engine round cap.
        faults: Optional :class:`~repro.distributed.faults.FaultPlan`.
            When given (and not null), every node runs behind a
            :class:`~repro.distributed.faults.ReliableNode` ack/retry
            transport, the fault RNG is derived from the plan seed via
            ``plan.stage("spt")``, and the result carries a
            :class:`~repro.distributed.faults.FaultReport`. A null plan
            is equivalent to ``faults=None`` (the bit-identical
            reliable path).
        max_retries: Retransmission budget per message (fault runs
            only); defaults to
            :data:`~repro.distributed.faults.DEFAULT_MAX_RETRIES`.

    Returns:
        The converged :class:`DistributedSptResult`.
    """
    from repro.distributed.faults import (
        DEFAULT_MAX_RETRIES,
        FaultInjector,
        ReliableNode,
        build_fault_report,
    )

    if faults is not None and faults.is_null:
        faults = None
    declared = g.costs if declared_costs is None else np.asarray(declared_costs, float)
    retries = DEFAULT_MAX_RETRIES if max_retries is None else int(max_retries)
    inner: list[NodeProcess] = []
    for i in range(g.n):
        if processes is not None and i in processes:
            inner.append(processes[i])
        elif faults is None:
            inner.append(SptNode(i, float(declared[i]), is_root=(i == root)))
        else:
            # Under faults the transport retransmits, so per-round
            # challenge re-sends are off and patience is stretched to
            # cover retry backoff and injected delay.
            patience = CHALLENGE_PATIENCE + 2 * faults.max_delay + 8
            inner.append(
                SptNode(
                    i,
                    float(declared[i]),
                    is_root=(i == root),
                    challenge_patience=patience,
                    resend_challenges=False,
                )
            )
    if faults is None:
        procs = inner
        sim = Simulator.from_graph(g, procs)
        stats = sim.run(max_rounds=max_rounds)
        report = None
    else:
        injector = FaultInjector(faults.stage("spt"))
        procs = [ReliableNode(p, max_retries=retries) for p in inner]
        sim = Simulator.from_graph(g, procs, faults=injector)
        stats = sim.run(max_rounds=max_rounds)
        report = build_fault_report(sim, procs, injector)
        _withdraw_unlucky_flags(stats, inner, report)
    dist = np.full(g.n, np.inf)
    first_hop = np.full(g.n, -1, dtype=np.int64)
    routes: list[tuple[int, ...]] = []
    route_costs: list[tuple[float, ...]] = []
    for i, proc in enumerate(inner):
        d = getattr(proc, "dist", np.inf)
        dist[i] = 0.0 if i == root else d
        first_hop[i] = getattr(proc, "first_hop", -1)
        r = tuple(getattr(proc, "route", ()))
        routes.append(r + ((root,) if (i != root and np.isfinite(dist[i])) else ()))
        route_costs.append(tuple(getattr(proc, "route_costs", ())))
    return DistributedSptResult(
        root=root,
        dist=dist,
        first_hop=first_hop,
        routes=tuple(routes),
        route_costs=tuple(route_costs),
        stats=stats,
        fault_report=report,
    )
