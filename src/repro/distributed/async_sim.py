"""Asynchronous delivery: the protocols under arbitrary message orderings.

The round-based :class:`~repro.distributed.simulator.Simulator` delivers
every in-flight message simultaneously — a convenient abstraction, but
real radios interleave arbitrarily. The paper's stage-1/stage-2
computations are *min-based fixed-point iterations*, which converge under
any fair schedule; :class:`AsyncSimulator` checks exactly that by
delivering one message at a time in a seeded-random order with random
per-message latency.

The same :class:`~repro.distributed.node_proc.NodeProcess` objects run
unmodified (the API exposes a ``round`` that here means "virtual time"),
so every protocol and adversary in the package can be exercised under
both schedulers. ``tests/test_async_sim.py`` asserts that the converged
stage-1/stage-2 state is identical to the synchronous result for many
random schedules — the distributed-systems analogue of a property test.

**Reliability assumptions.** This scheduler reorders and delays, but
still delivers every message exactly once — it probes the *ordering*
half of the asynchrony spectrum. Message loss, duplication and crashes
(the *failure* half) are a round-engine feature: use
:class:`~repro.distributed.simulator.Simulator` with a
:class:`~repro.distributed.faults.FaultPlan`; the event-queue engine
does not consult :meth:`~repro.distributed.node_proc.NodeProcess.
pending_work` and therefore cannot host the ack/retry transport's
backoff timers.
"""

from __future__ import annotations

import heapq
from typing import Mapping, Sequence

from repro.distributed.node_proc import NodeProcess
from repro.distributed.simulator import Flag, Message, SimulationStats
from repro.errors import ProtocolError
from repro.utils.rng import as_rng

__all__ = ["AsyncSimulator"]

BROADCAST = -1


class _AsyncApi:
    """Per-node API; identical surface to the synchronous one."""

    __slots__ = ("_sim", "node_id")

    def __init__(self, sim: "AsyncSimulator", node_id: int) -> None:
        self._sim = sim
        self.node_id = node_id

    @property
    def round(self) -> int:
        """Current engine round (virtual time under async delivery)."""
        return int(self._sim._now)

    @property
    def neighbors(self) -> Sequence[int]:
        """Ids of the nodes that hear this node's broadcasts."""
        return self._sim.adjacency[self.node_id]

    def broadcast(self, payload: Mapping) -> None:
        # One radio transmission, but per-receiver latencies differ — the
        # medium is shared, processing times are not.
        """Queue a payload for delivery to every neighbour."""
        self._sim.stats.broadcasts += 1
        for nbr in self._sim.adjacency[self.node_id]:
            self._sim._enqueue(self.node_id, nbr, payload)

    def send(self, dest: int, payload: Mapping) -> None:
        """Queue a unicast payload for one recipient."""
        dest = int(dest)
        if dest == self.node_id:
            raise ProtocolError(f"node {self.node_id} sent a message to itself")
        self._sim.stats.unicasts += 1
        if dest not in self._sim.adjacency[self.node_id]:
            self._sim.stats.remote_unicasts += 1
        self._sim._enqueue(self.node_id, dest, payload)

    def flag(self, suspect: int, reason: str) -> None:
        """Report a suspect to the punishment authority."""
        self._sim.stats.flags.append(
            Flag(self.node_id, int(suspect), str(reason), int(self._sim._now))
        )


class AsyncSimulator:
    """Event-queue scheduler with seeded-random per-message latency.

    Latencies are uniform integers in ``[1, max_latency]`` virtual time
    units; delivery order among equal times is randomized (seeded), so
    two runs with the same seed are identical and two seeds give genuinely
    different interleavings.

    ``on_round_end`` hooks fire whenever virtual time advances past a
    node's last activity — approximating the synchronous hook closely
    enough for the challenge timers (which only need *eventual* firing).

    Args:
        adjacency: ``adjacency[i]`` = neighbour ids of node ``i``.
        processes: One :class:`~repro.distributed.node_proc.NodeProcess`
            per node, indexed by node id.
        seed: RNG seed for latencies and tie-breaking (anything
            :func:`repro.utils.rng.as_rng` accepts).
        max_latency: Upper bound (inclusive) on per-message latency in
            virtual time units; must be >= 1.
    """

    def __init__(
        self,
        adjacency: Sequence[Sequence[int]],
        processes: Sequence[NodeProcess],
        seed=None,
        max_latency: int = 3,
    ) -> None:
        if len(adjacency) != len(processes):
            raise ProtocolError(
                f"{len(processes)} processes for {len(adjacency)} nodes"
            )
        if max_latency < 1:
            raise ValueError(f"max_latency must be >= 1, got {max_latency}")
        self.adjacency = [tuple(int(v) for v in row) for row in adjacency]
        self.n = len(self.adjacency)
        for i, proc in enumerate(processes):
            if proc.node_id != i:
                raise ProtocolError(
                    f"process at index {i} has node_id {proc.node_id}"
                )
        self.processes = list(processes)
        self.rng = as_rng(seed)
        self.max_latency = int(max_latency)
        self.stats = SimulationStats()
        self._queue: list[tuple[int, float, int, Message]] = []
        self._seq = 0
        self._now = 0
        self._apis = [_AsyncApi(self, i) for i in range(self.n)]

    @classmethod
    def from_graph(
        cls, graph, processes: Sequence[NodeProcess], seed=None, max_latency: int = 3
    ) -> "AsyncSimulator":
        """Build the adjacency from a library graph (either model).

        Args:
            graph: A :class:`~repro.graph.node_graph.NodeWeightedGraph`
                or :class:`~repro.graph.link_graph.LinkWeightedDigraph`.
            processes: One process per node, indexed by node id.
            seed: RNG seed (see the class docstring).
            max_latency: Per-message latency bound, >= 1.

        Returns:
            A ready-to-run :class:`AsyncSimulator`.
        """
        from repro.graph.link_graph import LinkWeightedDigraph
        from repro.graph.node_graph import NodeWeightedGraph

        if isinstance(graph, NodeWeightedGraph):
            adjacency = [graph.neighbors(i).tolist() for i in range(graph.n)]
        elif isinstance(graph, LinkWeightedDigraph):
            adjacency = [graph.out_neighbors(i)[0].tolist() for i in range(graph.n)]
        else:
            raise TypeError(f"unsupported graph type {type(graph)!r}")
        return cls(adjacency, processes, seed=seed, max_latency=max_latency)

    def _enqueue(self, sender: int, dest: int, payload: Mapping) -> None:
        latency = int(self.rng.integers(1, self.max_latency + 1))
        tiebreak = float(self.rng.random())
        self._seq += 1
        msg = Message(sender, dest, payload, self._now)
        heapq.heappush(
            self._queue, (self._now + latency, tiebreak, self._seq, msg)
        )

    def run(self, max_events: int = 1_000_000) -> SimulationStats:
        """Deliver events until true quiescence (or the event cap).

        Quiescence requires both an empty event queue *and* a full pass
        of ``on_round_end`` hooks that produces no new messages — the
        hooks are where buffered ("dirty") state is flushed and where
        challenge timers live.

        Args:
            max_events: Cap on delivered messages (guards against
                non-quiescent protocols).

        Returns:
            The run's :class:`~repro.distributed.simulator.
            SimulationStats` (``converged`` is False when the cap hit).
        """
        if max_events < 1:
            raise ValueError(f"max_events must be positive, got {max_events}")
        for i in range(self.n):
            self.processes[i].start(self._apis[i])
        events = 0
        last_hook_time = -1
        while events < max_events:
            while self._queue and events < max_events:
                time, _, _, msg = heapq.heappop(self._queue)
                if time > self._now:
                    self._now = time
                # periodic hooks whenever virtual time advances
                if self._now > last_hook_time:
                    last_hook_time = self._now
                    for i in range(self.n):
                        self.processes[i].on_round_end(self._apis[i])
                self.processes[msg.dest].on_message(
                    self._apis[msg.dest], msg.sender, msg.payload
                )
                self.stats.deliveries += 1
                events += 1
            # queue empty: advance time one tick and flush the hooks; if
            # they generate nothing, the network is quiescent.
            self._now += 1
            last_hook_time = self._now
            for i in range(self.n):
                self.processes[i].on_round_end(self._apis[i])
            if not self._queue:
                break
        self.stats.rounds = int(self._now)
        self.stats.converged = not self._queue
        return self.stats
