"""Deterministic synchronous round-based message-passing simulator.

Semantics:

* Round 0: every process's :meth:`start` runs (in node-id order); sends
  are buffered.
* Round ``r >= 1``: messages buffered during round ``r - 1`` are
  delivered (grouped per recipient, ordered by sender id), each triggering
  :meth:`on_message`; then every process's :meth:`on_round_end` runs.
* The run stops at *quiescence* (no messages in flight — buffered or
  fault-delayed — and no live process reporting
  :meth:`~repro.distributed.node_proc.NodeProcess.pending_work`) or
  after ``max_rounds``.

**Reliability assumptions.** Without a fault plan the engine is the
reliable network of Section III.C: every send is delivered exactly once,
one round later. Passing ``faults=`` (a :class:`~repro.distributed.
faults.FaultPlan` or :class:`~repro.distributed.faults.FaultInjector`)
degrades it to a lossy one — per-delivery drop, bounded random delay,
duplication, and scheduled crash/recovery, all drawn from a seeded RNG
so the fault trace is reproducible. With a *null* plan the engine is
bit-identical to no plan at all (regression-tested).

Determinism matters: the protocol tests assert exact convergence-round
counts, and reproducibility of adversarial scenarios requires a fixed
delivery order.

The engine also acts as the trusted layer the paper gets from signatures:
the ``sender`` of every delivered message is stamped by the engine, and
``flag()`` reports land in :attr:`SimulationStats.flags` for the
punishment authority (tests assert who got flagged and why).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.distributed.node_proc import NodeProcess
from repro.errors import ProtocolError
from repro.obs.metrics import REGISTRY as _metrics

__all__ = ["Message", "SimulationStats", "Simulator", "payload_nbytes"]

BROADCAST = -1


def payload_nbytes(obj) -> int:
    """Deterministic wire-size estimate of a message payload.

    Numbers cost 8 bytes, booleans/None 1, strings/bytes their length,
    containers the sum of their items (plus 2 bytes of framing per
    mapping entry). The absolute scale is nominal — what matters is that
    the estimate is stable across runs so byte totals are comparable
    between protocol variants.
    """
    if obj is None or isinstance(obj, bool):
        return 1
    if isinstance(obj, (int, float)):
        return 8
    if isinstance(obj, str):
        return len(obj)
    if isinstance(obj, (bytes, bytearray)):
        return len(obj)
    if isinstance(obj, Mapping):
        return sum(
            payload_nbytes(k) + payload_nbytes(v) + 2 for k, v in obj.items()
        )
    if isinstance(obj, (list, tuple, set, frozenset)):
        return sum(payload_nbytes(v) for v in obj)
    return len(repr(obj))


@dataclass(frozen=True)
class Message:
    """One in-flight message (``dest == -1`` means broadcast)."""

    sender: int
    dest: int
    payload: Mapping
    round_sent: int


@dataclass(frozen=True)
class Flag:
    """A misbehaviour report raised by ``witness`` against ``suspect``."""

    witness: int
    suspect: int
    reason: str
    round: int


@dataclass
class SimulationStats:
    """Counters exposed after a run."""

    rounds: int = 0
    broadcasts: int = 0
    unicasts: int = 0
    remote_unicasts: int = 0  # sends to non-neighbours (routed exchanges)
    deliveries: int = 0
    converged: bool = False
    flags: list[Flag] = field(default_factory=list)
    #: Messages *sent* during each engine round: index 0 is the start
    #: round, so after a run ``len(messages_per_round) == rounds + 1``
    #: and the list sums to :attr:`transmissions`. The counter records
    #: *attempted sends* (radio transmissions): a delivery later dropped
    #: or delayed by fault injection still counts here, and an injected
    #: duplicate does **not** (only :attr:`deliveries` sees the copy).
    messages_per_round: list[int] = field(default_factory=list)
    #: Estimated payload bytes over all sends (see :func:`payload_nbytes`).
    #: Same attempted-send semantics as :attr:`messages_per_round`.
    bytes_total: int = 0
    #: Delivery attempts dropped by injected message loss.
    drops: int = 0
    #: Delivery attempts dropped because the receiver was crashed.
    crash_drops: int = 0
    #: Extra delivery copies scheduled by injected duplication.
    duplicates: int = 0
    #: Deliveries that arrived late due to injected delay.
    delayed_deliveries: int = 0
    #: Sum over rounds of the number of crashed nodes.
    crashed_rounds: int = 0
    #: Retransmitted copies sent by reliable transports (runner-filled).
    retransmissions: int = 0
    #: Transport acknowledgements sent (runner-filled).
    acks: int = 0
    #: Messages abandoned after the retry budget (runner-filled).
    retry_exhausted: int = 0

    @property
    def transmissions(self) -> int:
        """Radio transmissions: one per broadcast or unicast send."""
        return self.broadcasts + self.unicasts


class _Api:
    """Per-node view handed to callbacks (see :class:`NodeAPI`)."""

    __slots__ = ("_sim", "node_id")

    def __init__(self, sim: "Simulator", node_id: int) -> None:
        self._sim = sim
        self.node_id = node_id

    @property
    def round(self) -> int:
        """Current engine round (virtual time under async delivery)."""
        return self._sim._round

    @property
    def neighbors(self) -> Sequence[int]:
        """Ids of the nodes that hear this node's broadcasts."""
        return self._sim.adjacency[self.node_id]

    def broadcast(self, payload: Mapping) -> None:
        """Queue a payload for delivery to every neighbour."""
        self._sim._outbox.append(
            Message(self.node_id, BROADCAST, payload, self._sim._round)
        )
        self._sim.stats.broadcasts += 1
        self._sim.stats.bytes_total += payload_nbytes(payload)

    def send(self, dest: int, payload: Mapping) -> None:
        """Queue a unicast payload for one recipient."""
        dest = int(dest)
        if dest == self.node_id:
            raise ProtocolError(f"node {self.node_id} sent a message to itself")
        self._sim._outbox.append(
            Message(self.node_id, dest, payload, self._sim._round)
        )
        self._sim.stats.unicasts += 1
        self._sim.stats.bytes_total += payload_nbytes(payload)
        if dest not in self._sim.adjacency[self.node_id]:
            self._sim.stats.remote_unicasts += 1

    def flag(self, suspect: int, reason: str) -> None:
        """Report a suspect to the punishment authority."""
        self._sim.stats.flags.append(
            Flag(self.node_id, int(suspect), str(reason), self._sim._round)
        )


class Simulator:
    """Run a set of :class:`NodeProcess` instances over a fixed topology.

    Parameters
    ----------
    adjacency:
        ``adjacency[i]`` is the list of nodes that *hear* ``i``'s
        broadcasts. For undirected topologies pass symmetric lists; for
        the link model pass out-neighbour lists.
    processes:
        One process per node, index-aligned.
    record_trace:
        When True, record every delivered message in :attr:`trace`.
    faults:
        Optional :class:`~repro.distributed.faults.FaultPlan` or
        :class:`~repro.distributed.faults.FaultInjector`. ``None`` (the
        default) keeps the reliable exactly-once engine and skips every
        fault code path, so lossless runs stay bit-identical to the
        pre-fault-injection engine.
    """

    def __init__(
        self,
        adjacency: Sequence[Sequence[int]],
        processes: Sequence[NodeProcess],
        record_trace: bool = False,
        faults=None,
    ) -> None:
        if len(adjacency) != len(processes):
            raise ProtocolError(
                f"{len(processes)} processes for {len(adjacency)} nodes"
            )
        self.adjacency = [tuple(int(v) for v in row) for row in adjacency]
        self.n = len(self.adjacency)
        for i, proc in enumerate(processes):
            if proc.node_id != i:
                raise ProtocolError(
                    f"process at index {i} has node_id {proc.node_id}"
                )
        self.processes = list(processes)
        self.stats = SimulationStats()
        self._outbox: list[Message] = []
        self._round = 0
        self._apis = [_Api(self, i) for i in range(self.n)]
        self.injector = self._coerce_injector(faults)
        #: Fault-delayed deliveries: due round -> [(dest, message), ...].
        self._delayed: dict[int, list[tuple[int, Message]]] = {}
        self._crashed_now: set[int] = set()
        self._started = [False] * self.n
        #: When enabled, every *delivered* (sender, recipient, round,
        #: payload-type) event is appended here — the audit trail the
        #: paper's signed-message record would provide. Payload bodies are
        #: referenced, not copied.
        self.record_trace = bool(record_trace)
        self.trace: list[tuple[int, int, int, Mapping]] = []

    @staticmethod
    def _coerce_injector(faults):
        if faults is None:
            return None
        from repro.distributed.faults import FaultInjector, FaultPlan

        if isinstance(faults, FaultInjector):
            return faults
        if isinstance(faults, FaultPlan):
            return FaultInjector(faults)
        raise TypeError(
            f"faults must be a FaultPlan or FaultInjector, got {type(faults)!r}"
        )

    @classmethod
    def from_graph(
        cls, graph, processes: Sequence[NodeProcess], faults=None
    ) -> "Simulator":
        """Build the adjacency from a library graph (either model).

        Args:
            graph: A :class:`~repro.graph.node_graph.NodeWeightedGraph`
                or :class:`~repro.graph.link_graph.LinkWeightedDigraph`.
            processes: One :class:`NodeProcess` per node, index-aligned.
            faults: Optional fault plan/injector (see class docs).

        Returns:
            A ready-to-run :class:`Simulator`.
        """
        from repro.graph.link_graph import LinkWeightedDigraph
        from repro.graph.node_graph import NodeWeightedGraph

        if isinstance(graph, NodeWeightedGraph):
            adjacency = [graph.neighbors(i).tolist() for i in range(graph.n)]
        elif isinstance(graph, LinkWeightedDigraph):
            adjacency = [
                graph.out_neighbors(i)[0].tolist() for i in range(graph.n)
            ]
        else:
            raise TypeError(f"unsupported graph type {type(graph)!r}")
        return cls(adjacency, processes, faults=faults)

    def run(self, max_rounds: int = 10_000) -> SimulationStats:
        """Execute until quiescence or ``max_rounds``.

        Args:
            max_rounds: Hard cap on engine rounds (must be positive).

        Returns:
            The run's :class:`SimulationStats`. ``converged`` is True
            only at real quiescence: nothing buffered, nothing delayed
            in flight, and no live process reporting pending work — a
            run stopped by the cap instead is "partitioned/starved".
        """
        if max_rounds < 1:
            raise ValueError(f"max_rounds must be positive, got {max_rounds}")
        self._round = 0
        inj = self.injector
        if inj is not None:
            self._crashed_now = inj.crashed_nodes(0)
            self.stats.crashed_rounds += len(self._crashed_now)
        for i in range(self.n):
            if inj is not None and i in self._crashed_now:
                continue
            self.processes[i].start(self._apis[i])
            self._started[i] = True
        pending = self._collect_outbox()
        self.stats.messages_per_round.append(len(pending))
        while (
            pending or self._delayed or self._any_pending_work()
        ) and self._round < max_rounds:
            self._round += 1
            if inj is not None:
                self._update_crashes()
            self._deliver(pending)
            for i in range(self.n):
                if inj is not None and i in self._crashed_now:
                    continue
                self.processes[i].on_round_end(self._apis[i])
            pending = self._collect_outbox()
            self.stats.messages_per_round.append(len(pending))
        self.stats.rounds = self._round
        self.stats.converged = (
            not pending and not self._delayed and not self._any_pending_work()
        )
        if inj is not None:
            self.stats.drops = inj.drops
            self.stats.duplicates = inj.duplicates
            self.stats.delayed_deliveries = inj.delayed
        self._flush_metrics()
        return self.stats

    def _flush_metrics(self) -> None:
        """Record the run's totals into the process-wide registry."""
        if not _metrics.enabled:
            return
        stats = self.stats
        _metrics.add("simulator.runs", 1)
        _metrics.add("simulator.rounds", stats.rounds)
        _metrics.add("simulator.messages", stats.transmissions)
        _metrics.add("simulator.broadcasts", stats.broadcasts)
        _metrics.add("simulator.unicasts", stats.unicasts)
        _metrics.add("simulator.deliveries", stats.deliveries)
        _metrics.add("simulator.bytes", stats.bytes_total)
        _metrics.add("simulator.flags", len(stats.flags))
        if stats.converged:
            _metrics.add("simulator.quiescent_runs", 1)
        if self.injector is not None:
            _metrics.add("simulator.faulty_runs", 1)
            _metrics.add("simulator.drops", stats.drops)
            _metrics.add("simulator.crash_drops", stats.crash_drops)
            _metrics.add("simulator.duplicates", stats.duplicates)
            _metrics.add("simulator.delayed_deliveries",
                         stats.delayed_deliveries)
            _metrics.add("simulator.crashed_rounds", stats.crashed_rounds)

    # -- internals ----------------------------------------------------------

    def _collect_outbox(self) -> list[Message]:
        out, self._outbox = self._outbox, []
        return out

    def _any_pending_work(self) -> bool:
        """True while any live process holds retry/patience timers."""
        crashed = self._crashed_now
        return any(
            proc.pending_work()
            for i, proc in enumerate(self.processes)
            if i not in crashed
        )

    def _update_crashes(self) -> None:
        """Apply the crash schedule at the start of engine round ``_round``.

        Nodes whose window just ended are restarted: a node that was
        down from round 0 runs its (late) :meth:`NodeProcess.start`,
        anyone else gets :meth:`NodeProcess.on_recover`.
        """
        now = self.injector.crashed_nodes(self._round)
        recovered = self._crashed_now - now
        self._crashed_now = now
        self.stats.crashed_rounds += len(now)
        for i in sorted(recovered):
            if not self._started[i]:
                self.processes[i].start(self._apis[i])
                self._started[i] = True
            else:
                self.processes[i].on_recover(self._apis[i])

    def _admit(
        self, inboxes: dict[int, list[Message]], dest: int, msg: Message
    ) -> None:
        """Admit one delivery attempt, dropping it if ``dest`` is down."""
        if dest in self._crashed_now:
            self.stats.crash_drops += 1
            return
        inboxes.setdefault(dest, []).append(msg)

    def _deliver(self, messages: list[Message]) -> None:
        # Group per recipient; deliver ordered by (sender, arrival index)
        # for determinism.
        inboxes: dict[int, list[Message]] = {}
        inj = self.injector
        if inj is None:
            for msg in messages:
                if msg.dest == BROADCAST:
                    for nbr in self.adjacency[msg.sender]:
                        inboxes.setdefault(nbr, []).append(msg)
                else:
                    inboxes.setdefault(msg.dest, []).append(msg)
        else:
            # Fault-delayed deliveries due this round come first, then
            # fresh messages in send order; the per-attempt RNG draws
            # therefore happen in a deterministic order.
            for dest, msg in self._delayed.pop(self._round, ()):
                self._admit(inboxes, dest, msg)
            for msg in messages:
                if msg.dest == BROADCAST:
                    receivers: Sequence[int] = self.adjacency[msg.sender]
                else:
                    receivers = (msg.dest,)
                for recv in receivers:
                    for extra in inj.fate(self._round, msg.sender, recv):
                        if extra == 0:
                            self._admit(inboxes, recv, msg)
                        else:
                            self._delayed.setdefault(
                                self._round + extra, []
                            ).append((recv, msg))
        for dest in sorted(inboxes):
            batch = sorted(
                inboxes[dest], key=lambda m: (m.sender, m.round_sent)
            )
            proc = self.processes[dest]
            api = self._apis[dest]
            for msg in batch:
                if self.record_trace:
                    self.trace.append(
                        (msg.sender, dest, self._round, msg.payload)
                    )
                proc.on_message(api, msg.sender, msg.payload)
                self.stats.deliveries += 1
