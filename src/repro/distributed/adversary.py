"""Misbehaving node implementations for failure-injection tests.

Each adversary deviates from the protocol in a way the paper discusses:

* :class:`PaymentInflatorNode` — runs the stage-2 update rule honestly
  but *announces* manipulated price entries (scaling its own payments
  down to underpay, or up to distort downstream sources). Algorithm 2's
  audit flags it: the claimed trigger re-derives a different value.
* :class:`LinkHiderSptNode` — pretends a configured neighbour does not
  exist in stage 1 (the Figure-2 manipulation: hiding a cheap branch can
  lower the liar's total payment). The hidden neighbour's challenge goes
  unanswered and the node is flagged.
* :class:`SilentNode` — crashes/never participates. Not malicious; used
  to check the protocols converge around dead nodes.

A node *lying about its cost* is deliberately **not** an adversary class:
cost declarations are strategy, not protocol violation — the mechanism's
strategyproofness (not detection) handles them, which the truthfulness
tests demonstrate.

**Reliability assumptions.** Detection guarantees are stated for the
reliable network. Under fault injection (:mod:`repro.distributed.
faults`) the audit deliberately *narrows* rather than guesses: it skips
witness/suspect pairs whose channel permanently failed and skips
crashed nodes, so a cheater can escape detection by genuinely losing
its channel — but an honest node is never flagged. On clean faulty runs
(no permanent failures) detection is as sharp as on the reliable
network.
"""

from __future__ import annotations

from typing import Mapping

from repro.distributed.node_proc import NodeAPI, NodeProcess
from repro.distributed.secure import SecurePaymentNode
from repro.distributed.spt_protocol import SptNode

__all__ = ["PaymentInflatorNode", "LinkHiderSptNode", "SilentNode"]


class PaymentInflatorNode(SecurePaymentNode):
    """Announces its own payment entries scaled by ``scale`` (!= 1).

    ``scale < 1`` is the self-serving direction (the source under-reports
    what it owes its relays); ``scale > 1`` pollutes downstream entries.
    Internal state stays honest so the node keeps participating
    plausibly — only the wire messages lie, exactly the cheating model of
    Section III.D.

    Args:
        *args: Forwarded to :class:`~repro.distributed.secure.
            SecurePaymentNode` (node id, declared cost, dist, relays, ...).
        scale: Manipulation factor (must differ from 1); overrides the
            class attribute per instance.
        **kwargs: Forwarded to the base class.
    """

    #: Per-class manipulation factor; tests subclass or set per instance.
    scale: float = 0.5

    def __init__(self, *args, scale: float | None = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if scale is not None:
            self.scale = float(scale)
        if self.scale == 1.0:
            raise ValueError("scale must differ from 1 for an inflator")

    def _announcement(self) -> dict:
        ann = super()._announcement()
        cheating = {
            k: (v * self.scale if v != float("inf") else v)
            for k, v in ann["prices"].items()
        }
        ann = dict(ann)
        ann["prices"] = cheating
        self.sent = ann  # what it actually said, for symmetric bookkeeping
        return ann


class LinkHiderSptNode(SptNode):
    """Stage-1 node that ignores everything from ``hidden_neighbor``.

    It cannot stop the radio medium from delivering its broadcasts to the
    hidden neighbour (omnidirectional antenna), so the neighbour sees the
    liar announce suboptimal distances, challenges it over the direct
    channel, gets no answer, and flags it.

    Args:
        node_id: This node's id.
        declared_cost: The cost it declares in stage 1.
        hidden_neighbor: Neighbour id whose messages it pretends never
            to receive.
        is_root: Whether this node is the access point.
        **kwargs: Forwarded to :class:`~repro.distributed.spt_protocol.
            SptNode`.
    """

    def __init__(self, node_id: int, declared_cost: float, hidden_neighbor: int,
                 is_root: bool = False, **kwargs) -> None:
        super().__init__(node_id, declared_cost, is_root=is_root, **kwargs)
        self.hidden_neighbor = int(hidden_neighbor)

    def on_message(self, api: NodeAPI, sender: int, payload: Mapping) -> None:
        """Handle one delivered message (see NodeProcess)."""
        if sender == self.hidden_neighbor:
            return  # pretend the link does not exist
        super().on_message(api, sender, payload)


class SilentNode(NodeProcess):
    """Never sends, never reacts (a crashed or depleted node)."""

    def __init__(self, node_id: int, *args, **kwargs) -> None:
        super().__init__(node_id)

    def start(self, api: NodeAPI) -> None:
        """One-time initialization before the first round."""
        pass

    def on_message(self, api: NodeAPI, sender: int, payload: Mapping) -> None:
        """Handle one delivered message (see NodeProcess)."""
        pass

    def on_round_end(self, api: NodeAPI) -> None:
        """Per-round housekeeping hook (see NodeProcess)."""
        pass
