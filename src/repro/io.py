"""Serialization: save/load instances and results as plain JSON.

A reproduction is only useful if the exact instances behind a number can
be shipped around; this module provides stable, versioned JSON encodings
for the library's core objects:

* :class:`~repro.graph.node_graph.NodeWeightedGraph`
* :class:`~repro.graph.link_graph.LinkWeightedDigraph`
* :class:`~repro.wireless.deployment.Deployment`
* :class:`~repro.core.mechanism.UnicastPayment`
* :class:`~repro.core.fast_payment.FastPaymentResult`
* :class:`~repro.core.link_vcg.LinkPaymentTable`

``save_json`` / ``load_json`` wrap any of them with a format tag, so one
loader round-trips everything. Infinities are encoded as the string
``"inf"`` (JSON has no inf literal); all arrays become lists.

Every payload carries ``{"format": tag, "version": N}``. When an
on-disk layout changes, bump the writer's version and register a
migration (:func:`register_migration`) that upgrades one version step
of one tag; loaders (:func:`from_dict`, and the engine's durable store
in :mod:`repro.engine.persist`) chain registered steps through
:func:`apply_migrations`, so old files keep loading instead of
erroring. An unregistered gap still fails loudly.

Wire envelopes
--------------

The HTTP pricing service (:mod:`repro.service`) speaks the same
machinery rather than hand-rolled handler dicts. Its request/response
shapes are small frozen dataclasses defined here —
:class:`PriceRequest`, :class:`PriceManyRequest`, :class:`UpdateRequest`,
:class:`PriceResponse`, :class:`PriceManyResponse`,
:class:`UpdateResponse`, :class:`GraphResponse`, :class:`ErrorResponse`
— registered in the same encoder/decoder tables, so one
:func:`to_wire` / :func:`from_wire` pair round-trips every message.
On the wire the version key is spelled ``schema_version``
(``{"format": tag, "schema_version": N, "data": {...}}``); decoding
normalizes it and runs the exact same :func:`apply_migrations` chain,
so evolving an endpoint's schema means bumping the version and
registering a migration — identical to evolving an on-disk format.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.fast_payment import FastPaymentResult
from repro.core.link_vcg import LinkPaymentTable
from repro.core.mechanism import UnicastPayment
from repro.errors import (
    InvalidRequestError,
    ReproError,
    SerializationError,
)
from repro.graph.link_graph import LinkWeightedDigraph
from repro.graph.node_graph import NodeWeightedGraph
from repro.wireless.deployment import Deployment
from repro.wireless.energy import PowerModel

__all__ = [
    "to_dict",
    "from_dict",
    "decode_as",
    "save_json",
    "load_json",
    "register_migration",
    "apply_migrations",
    "SerializationError",
    "to_wire",
    "from_wire",
    "PriceRequest",
    "PriceManyRequest",
    "UpdateRequest",
    "PriceResponse",
    "PriceManyResponse",
    "UpdateResponse",
    "GraphResponse",
    "ErrorResponse",
]

FORMAT_VERSION = 1

# SerializationError itself lives in repro.errors (code
# "io.serialization") so the service's status table covers it; it is
# re-exported here because this module is its historical home.


# (tag, from_version) -> data-dict transformer producing from_version + 1.
_MIGRATIONS: dict[tuple[str, int], Any] = {}


def register_migration(tag: str, from_version: int, migrate) -> None:
    """Register a one-step schema upgrade for ``tag`` payloads.

    ``migrate(data)`` receives the ``data`` dict of a version
    ``from_version`` payload and must return the ``from_version + 1``
    shape. Steps chain: loading a version 1 payload at schema 3 runs
    the (tag, 1) step then the (tag, 2) step. Registering the same step
    twice replaces the previous hook (tests rely on this).
    """
    _MIGRATIONS[(tag, int(from_version))] = migrate


def apply_migrations(
    tag: str, version: int, target_version: int, data: dict
) -> dict:
    """Upgrade ``data`` from ``version`` to ``target_version`` via the
    registered per-step migrations.

    Raises :class:`SerializationError` when a step is missing or the
    payload is *newer* than this build understands (downgrades are
    never attempted).
    """
    if version > target_version:
        raise SerializationError(
            f"{tag} payload has version {version}, newer than the "
            f"supported {target_version} — upgrade the library"
        )
    while version < target_version:
        step = _MIGRATIONS.get((tag, version))
        if step is None:
            raise SerializationError(
                f"no migration registered for {tag} version "
                f"{version} -> {version + 1}"
            )
        data = step(data)
        version += 1
    return data


def _enc_float(x: float) -> float | str:
    if np.isposinf(x):
        return "inf"
    if np.isneginf(x):  # pragma: no cover - no negative costs exist
        return "-inf"
    return float(x)


def _dec_float(x) -> float:
    if x == "inf":
        return float("inf")
    if x == "-inf":  # pragma: no cover
        return float("-inf")
    return float(x)


# ---------------------------------------------------------------------------
# per-type encoders
# ---------------------------------------------------------------------------


def _node_graph_to_dict(g: NodeWeightedGraph) -> dict:
    return {
        "n": g.n,
        "costs": [float(c) for c in g.costs],
        "edges": [[int(u), int(v)] for u, v in g.edge_iter()],
    }


def _node_graph_from_dict(d: dict) -> NodeWeightedGraph:
    return NodeWeightedGraph(
        int(d["n"]), [tuple(e) for e in d["edges"]], d["costs"]
    )


def _digraph_to_dict(dg: LinkWeightedDigraph) -> dict:
    return {
        "n": dg.n,
        "arcs": [[int(u), int(v), float(w)] for u, v, w in dg.arc_iter()],
    }


def _digraph_from_dict(d: dict) -> LinkWeightedDigraph:
    return LinkWeightedDigraph(
        int(d["n"]), [(int(u), int(v), float(w)) for u, v, w in d["arcs"]]
    )


def _deployment_to_dict(dep: Deployment) -> dict:
    return {
        "kind": dep.kind,
        "points": dep.points.tolist(),
        "ranges": dep.ranges.tolist(),
        "model": {
            "alpha": np.asarray(dep.model.alpha).tolist(),
            "beta": np.asarray(dep.model.beta).tolist(),
            "kappa": float(dep.model.kappa),
        },
        "digraph": _digraph_to_dict(dep.digraph),
        "resamples": int(dep.resamples),
        "dropped": int(dep.dropped),
    }


def _deployment_from_dict(d: dict) -> Deployment:
    model_d = d["model"]
    alpha = model_d["alpha"]
    beta = model_d["beta"]
    model = PowerModel(
        alpha=np.asarray(alpha) if isinstance(alpha, list) else float(alpha),
        beta=np.asarray(beta) if isinstance(beta, list) else float(beta),
        kappa=float(model_d["kappa"]),
    )
    return Deployment(
        points=np.asarray(d["points"], dtype=np.float64),
        ranges=np.asarray(d["ranges"], dtype=np.float64),
        model=model,
        digraph=_digraph_from_dict(d["digraph"]),
        resamples=int(d["resamples"]),
        kind=str(d["kind"]),
        dropped=int(d["dropped"]),
    )


def _payment_to_dict(p: UnicastPayment) -> dict:
    return {
        "source": p.source,
        "target": p.target,
        "path": list(p.path),
        "lcp_cost": _enc_float(p.lcp_cost),
        "payments": {str(k): _enc_float(v) for k, v in p.payments.items()},
        "scheme": p.scheme,
    }


def _payment_from_dict(d: dict) -> UnicastPayment:
    return UnicastPayment(
        source=int(d["source"]),
        target=int(d["target"]),
        path=tuple(int(v) for v in d["path"]),
        lcp_cost=_dec_float(d["lcp_cost"]),
        payments={int(k): _dec_float(v) for k, v in d["payments"].items()},
        scheme=str(d.get("scheme", "vcg")),
    )


def _fast_result_to_dict(r: FastPaymentResult) -> dict:
    return {
        "source": r.source,
        "target": r.target,
        "path": list(r.path),
        "lcp_cost": _enc_float(r.lcp_cost),
        "avoiding_costs": {
            str(k): _enc_float(v) for k, v in r.avoiding_costs.items()
        },
        "payments": {str(k): _enc_float(v) for k, v in r.payments.items()},
        "levels": [int(x) for x in r.levels],
        "stats": {str(k): int(v) for k, v in r.stats.items()},
    }


def _fast_result_from_dict(d: dict) -> FastPaymentResult:
    return FastPaymentResult(
        source=int(d["source"]),
        target=int(d["target"]),
        path=tuple(int(v) for v in d["path"]),
        lcp_cost=_dec_float(d["lcp_cost"]),
        avoiding_costs={
            int(k): _dec_float(v) for k, v in d["avoiding_costs"].items()
        },
        payments={int(k): _dec_float(v) for k, v in d["payments"].items()},
        levels=np.asarray(d["levels"], dtype=np.int64),
        stats={str(k): int(v) for k, v in d["stats"].items()},
    )


def _link_table_to_dict(t: LinkPaymentTable) -> dict:
    return {
        "root": t.root,
        "dist": [_enc_float(x) for x in t.dist],
        "first_hop_cost": [_enc_float(x) for x in t.first_hop_cost],
        "payments": [
            {str(k): _enc_float(v) for k, v in row.items()} for row in t.payments
        ],
        "parent": [int(x) for x in t.parent],
    }


def _link_table_from_dict(d: dict) -> LinkPaymentTable:
    return LinkPaymentTable(
        root=int(d["root"]),
        dist=np.asarray([_dec_float(x) for x in d["dist"]], dtype=np.float64),
        first_hop_cost=np.asarray(
            [_dec_float(x) for x in d["first_hop_cost"]], dtype=np.float64
        ),
        payments=tuple(
            {int(k): _dec_float(v) for k, v in row.items()}
            for row in d["payments"]
        ),
        parent=np.asarray(d["parent"], dtype=np.int64),
    )


# ---------------------------------------------------------------------------
# service wire envelopes (requests/responses of repro.service)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PriceRequest:
    """``POST /v1/price`` body: one ``(source, target)`` query.

    ``deadline_s`` overrides the service's default per-request deadline
    (must be positive when given).
    """

    source: int
    target: int
    deadline_s: float | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "source", int(self.source))
        object.__setattr__(self, "target", int(self.target))
        if self.deadline_s is not None:
            object.__setattr__(self, "deadline_s", float(self.deadline_s))
            if self.deadline_s <= 0:
                raise InvalidRequestError(
                    f"deadline_s must be positive, got {self.deadline_s}"
                )


@dataclass(frozen=True)
class PriceManyRequest:
    """``POST /v1/price_many`` body: a batch of ordered pairs."""

    pairs: tuple[tuple[int, int], ...]
    deadline_s: float | None = None

    def __post_init__(self) -> None:
        pairs = tuple(
            (int(s), int(t)) for s, t in self.pairs
        )
        if not pairs:
            raise InvalidRequestError("pairs must be non-empty")
        object.__setattr__(self, "pairs", pairs)
        if self.deadline_s is not None:
            object.__setattr__(self, "deadline_s", float(self.deadline_s))
            if self.deadline_s <= 0:
                raise InvalidRequestError(
                    f"deadline_s must be positive, got {self.deadline_s}"
                )


#: The mutations ``POST /v1/update`` accepts (engine method per op).
UPDATE_OPS = ("cost", "add_node", "remove_node")


@dataclass(frozen=True)
class UpdateRequest:
    """``POST /v1/update`` body: one topology/cost mutation.

    ``op="cost"`` re-declares a cost — ``node`` + ``value`` in the node
    model, ``edge=[u, v]`` + ``value`` in the link model (exactly one of
    ``node``/``edge`` given). ``op="remove_node"`` takes ``node``;
    ``op="add_node"`` takes ``cost`` + ``neighbors`` (node model) or
    ``arcs`` (link model), mirroring
    :meth:`repro.engine.PricingEngine.add_node`.
    """

    op: str
    node: int | None = None
    value: float | None = None
    edge: tuple[int, int] | None = None
    cost: float = 0.0
    neighbors: tuple[int, ...] = ()
    arcs: tuple[tuple[int, int, float], ...] = ()

    def __post_init__(self) -> None:
        if self.op not in UPDATE_OPS:
            raise InvalidRequestError(
                f"op must be one of {UPDATE_OPS}, got {self.op!r}"
            )
        if self.node is not None:
            object.__setattr__(self, "node", int(self.node))
        if self.edge is not None:
            u, v = self.edge
            object.__setattr__(self, "edge", (int(u), int(v)))
        object.__setattr__(
            self, "neighbors", tuple(int(v) for v in self.neighbors)
        )
        object.__setattr__(
            self,
            "arcs",
            tuple((int(u), int(v), float(w)) for u, v, w in self.arcs),
        )
        if self.op == "cost":
            if self.value is None:
                raise InvalidRequestError("op='cost' requires value")
            object.__setattr__(self, "value", _dec_float(self.value))
            if (self.node is None) == (self.edge is None):
                raise InvalidRequestError(
                    "op='cost' takes exactly one of node= (node model) "
                    "or edge= (link model)"
                )
        elif self.op == "remove_node" and self.node is None:
            raise InvalidRequestError("op='remove_node' requires node")


@dataclass(frozen=True)
class PriceResponse:
    """One priced request: the payment plus the snapshot version it was
    computed at (the serial-oracle handle) and the serving request id."""

    payment: UnicastPayment
    graph_version: int
    request_id: str
    coalesced: bool = False
    #: True when the answer was served from the degraded-mode cache of
    #: last-committed answers (queue saturated / engine recovering)
    #: instead of a fresh snapshot read; ``graph_version`` then names
    #: the possibly-stale snapshot the payment was computed at.
    degraded: bool = False


@dataclass(frozen=True)
class PriceManyResponse:
    """A priced batch; every payment was computed at ``graph_version``
    (each :class:`~repro.core.mechanism.UnicastPayment` carries its own
    ``source``/``target``)."""

    payments: tuple[UnicastPayment, ...]
    graph_version: int
    request_id: str


@dataclass(frozen=True)
class UpdateResponse:
    """An applied mutation: the published version (and, for
    ``add_node``, the new node's id)."""

    graph_version: int
    request_id: str
    node: int | None = None


@dataclass(frozen=True)
class GraphResponse:
    """``GET /v1/graph``: the current snapshot, version, and model."""

    graph: NodeWeightedGraph | LinkWeightedDigraph
    graph_version: int
    model: str
    request_id: str


@dataclass(frozen=True)
class ErrorResponse:
    """Error envelope: the taxonomy code (:mod:`repro.errors`), the
    HTTP status it mapped to, and a human-readable message."""

    code: str
    message: str
    request_id: str
    status: int


def _price_request_to_dict(r: PriceRequest) -> dict:
    return {
        "source": r.source,
        "target": r.target,
        "deadline_s": r.deadline_s,
    }


def _price_request_from_dict(d: dict) -> PriceRequest:
    return PriceRequest(
        source=d["source"],
        target=d["target"],
        deadline_s=d.get("deadline_s"),
    )


def _price_many_request_to_dict(r: PriceManyRequest) -> dict:
    return {
        "pairs": [[s, t] for s, t in r.pairs],
        "deadline_s": r.deadline_s,
    }


def _price_many_request_from_dict(d: dict) -> PriceManyRequest:
    return PriceManyRequest(
        pairs=tuple(tuple(p) for p in d["pairs"]),
        deadline_s=d.get("deadline_s"),
    )


def _update_request_to_dict(r: UpdateRequest) -> dict:
    return {
        "op": r.op,
        "node": r.node,
        "value": None if r.value is None else _enc_float(r.value),
        "edge": None if r.edge is None else list(r.edge),
        "cost": float(r.cost),
        "neighbors": list(r.neighbors),
        "arcs": [[u, v, w] for u, v, w in r.arcs],
    }


def _update_request_from_dict(d: dict) -> UpdateRequest:
    edge = d.get("edge")
    return UpdateRequest(
        op=d["op"],
        node=d.get("node"),
        value=d.get("value"),
        edge=None if edge is None else tuple(edge),
        cost=float(d.get("cost", 0.0)),
        neighbors=tuple(d.get("neighbors", ())),
        arcs=tuple(tuple(a) for a in d.get("arcs", ())),
    )


def _price_response_to_dict(r: PriceResponse) -> dict:
    out = {
        "payment": _payment_to_dict(r.payment),
        "graph_version": int(r.graph_version),
        "request_id": r.request_id,
        "coalesced": bool(r.coalesced),
    }
    # Emitted only when set: fresh answers keep the exact pre-degraded
    # wire bytes (the serving layer's byte-identity contract).
    if r.degraded:
        out["degraded"] = True
    return out


def _price_response_from_dict(d: dict) -> PriceResponse:
    return PriceResponse(
        payment=_payment_from_dict(d["payment"]),
        graph_version=int(d["graph_version"]),
        request_id=str(d["request_id"]),
        coalesced=bool(d.get("coalesced", False)),
        degraded=bool(d.get("degraded", False)),
    )


def _price_many_response_to_dict(r: PriceManyResponse) -> dict:
    return {
        "payments": [_payment_to_dict(p) for p in r.payments],
        "graph_version": int(r.graph_version),
        "request_id": r.request_id,
    }


def _price_many_response_from_dict(d: dict) -> PriceManyResponse:
    return PriceManyResponse(
        payments=tuple(_payment_from_dict(p) for p in d["payments"]),
        graph_version=int(d["graph_version"]),
        request_id=str(d["request_id"]),
    )


def _update_response_to_dict(r: UpdateResponse) -> dict:
    return {
        "graph_version": int(r.graph_version),
        "request_id": r.request_id,
        "node": r.node,
    }


def _update_response_from_dict(d: dict) -> UpdateResponse:
    node = d.get("node")
    return UpdateResponse(
        graph_version=int(d["graph_version"]),
        request_id=str(d["request_id"]),
        node=None if node is None else int(node),
    )


def _graph_response_to_dict(r: GraphResponse) -> dict:
    # The graph rides as a nested tagged envelope, so graph-format
    # migrations apply inside service responses too.
    return {
        "graph": to_dict(r.graph),
        "graph_version": int(r.graph_version),
        "model": r.model,
        "request_id": r.request_id,
    }


def _graph_response_from_dict(d: dict) -> GraphResponse:
    return GraphResponse(
        graph=from_dict(d["graph"]),
        graph_version=int(d["graph_version"]),
        model=str(d["model"]),
        request_id=str(d["request_id"]),
    )


def _error_response_to_dict(r: ErrorResponse) -> dict:
    return {
        "code": r.code,
        "message": r.message,
        "request_id": r.request_id,
        "status": int(r.status),
    }


def _error_response_from_dict(d: dict) -> ErrorResponse:
    return ErrorResponse(
        code=str(d["code"]),
        message=str(d["message"]),
        request_id=str(d["request_id"]),
        status=int(d["status"]),
    )


_ENCODERS = {
    NodeWeightedGraph: ("node-graph", _node_graph_to_dict),
    LinkWeightedDigraph: ("link-digraph", _digraph_to_dict),
    Deployment: ("deployment", _deployment_to_dict),
    UnicastPayment: ("unicast-payment", _payment_to_dict),
    FastPaymentResult: ("fast-payment-result", _fast_result_to_dict),
    LinkPaymentTable: ("link-payment-table", _link_table_to_dict),
    PriceRequest: ("price-request", _price_request_to_dict),
    PriceManyRequest: ("price-many-request", _price_many_request_to_dict),
    UpdateRequest: ("update-request", _update_request_to_dict),
    PriceResponse: ("price-response", _price_response_to_dict),
    PriceManyResponse: ("price-many-response", _price_many_response_to_dict),
    UpdateResponse: ("update-response", _update_response_to_dict),
    GraphResponse: ("graph-response", _graph_response_to_dict),
    ErrorResponse: ("error-response", _error_response_to_dict),
}

_DECODERS = {
    "node-graph": _node_graph_from_dict,
    "link-digraph": _digraph_from_dict,
    "deployment": _deployment_from_dict,
    "unicast-payment": _payment_from_dict,
    "fast-payment-result": _fast_result_from_dict,
    "link-payment-table": _link_table_from_dict,
    "price-request": _price_request_from_dict,
    "price-many-request": _price_many_request_from_dict,
    "update-request": _update_request_from_dict,
    "price-response": _price_response_from_dict,
    "price-many-response": _price_many_response_from_dict,
    "update-response": _update_response_from_dict,
    "graph-response": _graph_response_from_dict,
    "error-response": _error_response_from_dict,
}


# ---------------------------------------------------------------------------
# public API
# ---------------------------------------------------------------------------


def to_dict(obj: Any) -> dict:
    """Encode a supported object as a tagged, versioned dictionary."""
    for cls, (tag, encoder) in _ENCODERS.items():
        if isinstance(obj, cls):
            return {
                "format": tag,
                "version": FORMAT_VERSION,
                "data": encoder(obj),
            }
    raise SerializationError(
        f"cannot serialize objects of type {type(obj).__name__}"
    )


def from_dict(payload: dict) -> Any:
    """Decode a dictionary produced by :func:`to_dict`."""
    try:
        tag = payload["format"]
        version = payload["version"]
        data = payload["data"]
    except (TypeError, KeyError) as exc:
        raise SerializationError(f"malformed payload: {exc}") from exc
    if version != FORMAT_VERSION:
        data = apply_migrations(tag, int(version), FORMAT_VERSION, data)
    decoder = _DECODERS.get(tag)
    if decoder is None:
        raise SerializationError(f"unknown format tag {tag!r}")
    try:
        return decoder(data)
    except (KeyError, TypeError, ValueError) as exc:
        if isinstance(exc, ReproError):
            # Already typed (e.g. InvalidRequestError from an envelope's
            # own validation) — keep the precise code, don't relabel it
            # a serialization failure.
            raise
        raise SerializationError(f"malformed {tag} payload: {exc}") from exc


def decode_as(cls: type, payload: dict) -> Any:
    """Decode a payload and require the result to be a ``cls`` instance.

    Backs each result type's ``from_dict`` classmethod: decoding a
    payload of a *different* tagged type raises
    :class:`SerializationError` instead of silently returning a foreign
    object.
    """
    obj = from_dict(payload)
    if not isinstance(obj, cls):
        raise SerializationError(
            f"payload decodes to {type(obj).__name__}, not {cls.__name__}"
        )
    return obj


def to_wire(obj: Any) -> dict:
    """Encode a supported object as a service wire message.

    Identical to :func:`to_dict` except the version key is spelled
    ``schema_version`` — the explicit name the HTTP contract promises
    (``docs/service.md``). The envelope types above and every
    :func:`to_dict`-supported object encode alike, so a graph can ride
    the wire directly.
    """
    d = to_dict(obj)
    return {
        "format": d["format"],
        "schema_version": d["version"],
        "data": d["data"],
    }


def from_wire(payload: Any) -> Any:
    """Decode a wire message produced by :func:`to_wire`.

    Accepts ``schema_version`` (canonical on the wire) or ``version``
    (the on-disk spelling) and routes through :func:`from_dict`, so the
    :func:`register_migration` chain upgrades old clients' payloads
    exactly like old files.
    """
    if not isinstance(payload, dict):
        raise SerializationError(
            f"wire payload must be a JSON object, got "
            f"{type(payload).__name__}"
        )
    if "schema_version" in payload:
        payload = {
            "format": payload.get("format"),
            "version": payload["schema_version"],
            "data": payload.get("data"),
        }
    return from_dict(payload)


def save_json(obj: Any, path) -> None:
    """Serialize ``obj`` to a JSON file."""
    path = Path(path)
    path.write_text(json.dumps(to_dict(obj), indent=1))


def load_json(path) -> Any:
    """Load any object saved by :func:`save_json`."""
    path = Path(path)
    return from_dict(json.loads(path.read_text()))
