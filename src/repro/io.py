"""Serialization: save/load instances and results as plain JSON.

A reproduction is only useful if the exact instances behind a number can
be shipped around; this module provides stable, versioned JSON encodings
for the library's core objects:

* :class:`~repro.graph.node_graph.NodeWeightedGraph`
* :class:`~repro.graph.link_graph.LinkWeightedDigraph`
* :class:`~repro.wireless.deployment.Deployment`
* :class:`~repro.core.mechanism.UnicastPayment`
* :class:`~repro.core.fast_payment.FastPaymentResult`
* :class:`~repro.core.link_vcg.LinkPaymentTable`

``save_json`` / ``load_json`` wrap any of them with a format tag, so one
loader round-trips everything. Infinities are encoded as the string
``"inf"`` (JSON has no inf literal); all arrays become lists.

Every payload carries ``{"format": tag, "version": N}``. When an
on-disk layout changes, bump the writer's version and register a
migration (:func:`register_migration`) that upgrades one version step
of one tag; loaders (:func:`from_dict`, and the engine's durable store
in :mod:`repro.engine.persist`) chain registered steps through
:func:`apply_migrations`, so old files keep loading instead of
erroring. An unregistered gap still fails loudly.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.fast_payment import FastPaymentResult
from repro.core.link_vcg import LinkPaymentTable
from repro.core.mechanism import UnicastPayment
from repro.errors import ReproError
from repro.graph.link_graph import LinkWeightedDigraph
from repro.graph.node_graph import NodeWeightedGraph
from repro.wireless.deployment import Deployment
from repro.wireless.energy import PowerModel

__all__ = [
    "to_dict",
    "from_dict",
    "decode_as",
    "save_json",
    "load_json",
    "register_migration",
    "apply_migrations",
    "SerializationError",
]

FORMAT_VERSION = 1


class SerializationError(ReproError):
    """Unknown format tag, bad version, or malformed payload."""


# (tag, from_version) -> data-dict transformer producing from_version + 1.
_MIGRATIONS: dict[tuple[str, int], Any] = {}


def register_migration(tag: str, from_version: int, migrate) -> None:
    """Register a one-step schema upgrade for ``tag`` payloads.

    ``migrate(data)`` receives the ``data`` dict of a version
    ``from_version`` payload and must return the ``from_version + 1``
    shape. Steps chain: loading a version 1 payload at schema 3 runs
    the (tag, 1) step then the (tag, 2) step. Registering the same step
    twice replaces the previous hook (tests rely on this).
    """
    _MIGRATIONS[(tag, int(from_version))] = migrate


def apply_migrations(
    tag: str, version: int, target_version: int, data: dict
) -> dict:
    """Upgrade ``data`` from ``version`` to ``target_version`` via the
    registered per-step migrations.

    Raises :class:`SerializationError` when a step is missing or the
    payload is *newer* than this build understands (downgrades are
    never attempted).
    """
    if version > target_version:
        raise SerializationError(
            f"{tag} payload has version {version}, newer than the "
            f"supported {target_version} — upgrade the library"
        )
    while version < target_version:
        step = _MIGRATIONS.get((tag, version))
        if step is None:
            raise SerializationError(
                f"no migration registered for {tag} version "
                f"{version} -> {version + 1}"
            )
        data = step(data)
        version += 1
    return data


def _enc_float(x: float) -> float | str:
    if np.isposinf(x):
        return "inf"
    if np.isneginf(x):  # pragma: no cover - no negative costs exist
        return "-inf"
    return float(x)


def _dec_float(x) -> float:
    if x == "inf":
        return float("inf")
    if x == "-inf":  # pragma: no cover
        return float("-inf")
    return float(x)


# ---------------------------------------------------------------------------
# per-type encoders
# ---------------------------------------------------------------------------


def _node_graph_to_dict(g: NodeWeightedGraph) -> dict:
    return {
        "n": g.n,
        "costs": [float(c) for c in g.costs],
        "edges": [[int(u), int(v)] for u, v in g.edge_iter()],
    }


def _node_graph_from_dict(d: dict) -> NodeWeightedGraph:
    return NodeWeightedGraph(
        int(d["n"]), [tuple(e) for e in d["edges"]], d["costs"]
    )


def _digraph_to_dict(dg: LinkWeightedDigraph) -> dict:
    return {
        "n": dg.n,
        "arcs": [[int(u), int(v), float(w)] for u, v, w in dg.arc_iter()],
    }


def _digraph_from_dict(d: dict) -> LinkWeightedDigraph:
    return LinkWeightedDigraph(
        int(d["n"]), [(int(u), int(v), float(w)) for u, v, w in d["arcs"]]
    )


def _deployment_to_dict(dep: Deployment) -> dict:
    return {
        "kind": dep.kind,
        "points": dep.points.tolist(),
        "ranges": dep.ranges.tolist(),
        "model": {
            "alpha": np.asarray(dep.model.alpha).tolist(),
            "beta": np.asarray(dep.model.beta).tolist(),
            "kappa": float(dep.model.kappa),
        },
        "digraph": _digraph_to_dict(dep.digraph),
        "resamples": int(dep.resamples),
        "dropped": int(dep.dropped),
    }


def _deployment_from_dict(d: dict) -> Deployment:
    model_d = d["model"]
    alpha = model_d["alpha"]
    beta = model_d["beta"]
    model = PowerModel(
        alpha=np.asarray(alpha) if isinstance(alpha, list) else float(alpha),
        beta=np.asarray(beta) if isinstance(beta, list) else float(beta),
        kappa=float(model_d["kappa"]),
    )
    return Deployment(
        points=np.asarray(d["points"], dtype=np.float64),
        ranges=np.asarray(d["ranges"], dtype=np.float64),
        model=model,
        digraph=_digraph_from_dict(d["digraph"]),
        resamples=int(d["resamples"]),
        kind=str(d["kind"]),
        dropped=int(d["dropped"]),
    )


def _payment_to_dict(p: UnicastPayment) -> dict:
    return {
        "source": p.source,
        "target": p.target,
        "path": list(p.path),
        "lcp_cost": _enc_float(p.lcp_cost),
        "payments": {str(k): _enc_float(v) for k, v in p.payments.items()},
        "scheme": p.scheme,
    }


def _payment_from_dict(d: dict) -> UnicastPayment:
    return UnicastPayment(
        source=int(d["source"]),
        target=int(d["target"]),
        path=tuple(int(v) for v in d["path"]),
        lcp_cost=_dec_float(d["lcp_cost"]),
        payments={int(k): _dec_float(v) for k, v in d["payments"].items()},
        scheme=str(d.get("scheme", "vcg")),
    )


def _fast_result_to_dict(r: FastPaymentResult) -> dict:
    return {
        "source": r.source,
        "target": r.target,
        "path": list(r.path),
        "lcp_cost": _enc_float(r.lcp_cost),
        "avoiding_costs": {
            str(k): _enc_float(v) for k, v in r.avoiding_costs.items()
        },
        "payments": {str(k): _enc_float(v) for k, v in r.payments.items()},
        "levels": [int(x) for x in r.levels],
        "stats": {str(k): int(v) for k, v in r.stats.items()},
    }


def _fast_result_from_dict(d: dict) -> FastPaymentResult:
    return FastPaymentResult(
        source=int(d["source"]),
        target=int(d["target"]),
        path=tuple(int(v) for v in d["path"]),
        lcp_cost=_dec_float(d["lcp_cost"]),
        avoiding_costs={
            int(k): _dec_float(v) for k, v in d["avoiding_costs"].items()
        },
        payments={int(k): _dec_float(v) for k, v in d["payments"].items()},
        levels=np.asarray(d["levels"], dtype=np.int64),
        stats={str(k): int(v) for k, v in d["stats"].items()},
    )


def _link_table_to_dict(t: LinkPaymentTable) -> dict:
    return {
        "root": t.root,
        "dist": [_enc_float(x) for x in t.dist],
        "first_hop_cost": [_enc_float(x) for x in t.first_hop_cost],
        "payments": [
            {str(k): _enc_float(v) for k, v in row.items()} for row in t.payments
        ],
        "parent": [int(x) for x in t.parent],
    }


def _link_table_from_dict(d: dict) -> LinkPaymentTable:
    return LinkPaymentTable(
        root=int(d["root"]),
        dist=np.asarray([_dec_float(x) for x in d["dist"]], dtype=np.float64),
        first_hop_cost=np.asarray(
            [_dec_float(x) for x in d["first_hop_cost"]], dtype=np.float64
        ),
        payments=tuple(
            {int(k): _dec_float(v) for k, v in row.items()}
            for row in d["payments"]
        ),
        parent=np.asarray(d["parent"], dtype=np.int64),
    )


_ENCODERS = {
    NodeWeightedGraph: ("node-graph", _node_graph_to_dict),
    LinkWeightedDigraph: ("link-digraph", _digraph_to_dict),
    Deployment: ("deployment", _deployment_to_dict),
    UnicastPayment: ("unicast-payment", _payment_to_dict),
    FastPaymentResult: ("fast-payment-result", _fast_result_to_dict),
    LinkPaymentTable: ("link-payment-table", _link_table_to_dict),
}

_DECODERS = {
    "node-graph": _node_graph_from_dict,
    "link-digraph": _digraph_from_dict,
    "deployment": _deployment_from_dict,
    "unicast-payment": _payment_from_dict,
    "fast-payment-result": _fast_result_from_dict,
    "link-payment-table": _link_table_from_dict,
}


# ---------------------------------------------------------------------------
# public API
# ---------------------------------------------------------------------------


def to_dict(obj: Any) -> dict:
    """Encode a supported object as a tagged, versioned dictionary."""
    for cls, (tag, encoder) in _ENCODERS.items():
        if isinstance(obj, cls):
            return {
                "format": tag,
                "version": FORMAT_VERSION,
                "data": encoder(obj),
            }
    raise SerializationError(
        f"cannot serialize objects of type {type(obj).__name__}"
    )


def from_dict(payload: dict) -> Any:
    """Decode a dictionary produced by :func:`to_dict`."""
    try:
        tag = payload["format"]
        version = payload["version"]
        data = payload["data"]
    except (TypeError, KeyError) as exc:
        raise SerializationError(f"malformed payload: {exc}") from exc
    if version != FORMAT_VERSION:
        data = apply_migrations(tag, int(version), FORMAT_VERSION, data)
    decoder = _DECODERS.get(tag)
    if decoder is None:
        raise SerializationError(f"unknown format tag {tag!r}")
    try:
        return decoder(data)
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed {tag} payload: {exc}") from exc


def decode_as(cls: type, payload: dict) -> Any:
    """Decode a payload and require the result to be a ``cls`` instance.

    Backs each result type's ``from_dict`` classmethod: decoding a
    payload of a *different* tagged type raises
    :class:`SerializationError` instead of silently returning a foreign
    object.
    """
    obj = from_dict(payload)
    if not isinstance(obj, cls):
        raise SerializationError(
            f"payload decodes to {type(obj).__name__}, not {cls.__name__}"
        )
    return obj


def save_json(obj: Any, path) -> None:
    """Serialize ``obj`` to a JSON file."""
    path = Path(path)
    path.write_text(json.dumps(to_dict(obj), indent=1))


def load_json(path) -> Any:
    """Load any object saved by :func:`save_json`."""
    path = Path(path)
    return from_dict(json.loads(path.read_text()))
