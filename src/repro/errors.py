"""Exception hierarchy for :mod:`repro`.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing the common failure families (bad input graphs,
monopolies that make VCG payments undefined, protocol violations detected
by the secure distributed algorithm, an overloaded serving layer, ...).

Stable machine-readable codes
-----------------------------

Every class carries a ``code`` attribute — a stable, dotted,
machine-readable identifier (``"graph.disconnected"``,
``"service.overloaded"``, ...). Codes are the *wire contract*: the HTTP
service (:mod:`repro.service`) puts them in error envelopes, the CLI
prints them, and :data:`HTTP_STATUS` maps each code to exactly one HTTP
status so every surface agrees on what a failure means. Renaming a
class is invisible to clients as long as its code survives; codes are
append-only.

:func:`error_code` and :func:`http_status` resolve an *instance*
(walking the MRO, so subclasses inherit their family's code unless they
override it); non-:class:`ReproError` exceptions map to
``"internal"`` / 500.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphError",
    "InvalidGraphError",
    "NodeNotFoundError",
    "DisconnectedError",
    "MonopolyError",
    "MechanismError",
    "InvalidRequestError",
    "SerializationError",
    "ProtocolError",
    "CheatingDetectedError",
    "ExperimentError",
    "EngineError",
    "EngineClosedError",
    "PersistError",
    "RecoveryError",
    "ServiceError",
    "ServiceOverloadedError",
    "ServiceClosedError",
    "DeadlineExceededError",
    "HTTP_STATUS",
    "error_code",
    "http_status",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""

    #: Stable machine-readable identifier (see the module docstring).
    code = "repro.error"


class GraphError(ReproError):
    """Base class for errors related to graph construction or queries."""

    code = "graph.error"


class InvalidGraphError(GraphError, ValueError):
    """A graph was constructed from inconsistent or invalid data.

    Examples: negative node costs, edge endpoints out of range, CSR arrays
    of mismatched lengths, duplicate edges where they are forbidden.
    """

    code = "graph.invalid"


class NodeNotFoundError(GraphError, KeyError):
    """A node index was out of range for the graph it was used with."""

    code = "graph.node_not_found"

    def __init__(self, node: int, n: int) -> None:
        super().__init__(f"node {node} out of range for graph with {n} nodes")
        self.node = int(node)
        self.n = int(n)


class DisconnectedError(GraphError):
    """No path exists between the requested endpoints.

    Raised by shortest-path queries that require a finite answer, and by
    experiment drivers when a generated topology fails the reachability
    requirements of the mechanism.
    """

    code = "graph.disconnected"

    def __init__(self, source: int, target: int, context: str = "") -> None:
        detail = f" ({context})" if context else ""
        super().__init__(f"no path from node {source} to node {target}{detail}")
        self.source = int(source)
        self.target = int(target)


class MonopolyError(DisconnectedError):
    """Removing an agent (or its collusion set) disconnects the endpoints.

    The VCG payment to such an agent is unbounded (the agent holds a
    monopoly), which the paper excludes by requiring the communication
    graph to be biconnected (Section II.B) — or ``G \\ Q(v_k)`` connected
    for the collusion-resistant schemes of Section III.E.
    """

    code = "mechanism.monopoly"

    def __init__(self, source: int, target: int, removed: object) -> None:
        DisconnectedError.__init__(
            self, source, target, context=f"after removing {removed!r}"
        )
        self.removed = removed


class MechanismError(ReproError):
    """A pricing-mechanism computation could not be carried out."""

    code = "mechanism.error"


class InvalidRequestError(ReproError, ValueError):
    """A request carried an invalid option or malformed parameters.

    The typed replacement for the bare ``ValueError`` the entry points
    used to raise on a bad ``method=``/``backend=``/``on_monopoly=``
    value — still a ``ValueError`` subclass, so pre-taxonomy ``except``
    clauses keep working.
    """

    code = "request.invalid"


class SerializationError(ReproError):
    """Unknown format tag, bad schema version, or malformed payload.

    Raised by :mod:`repro.io` (and therefore by everything layered on
    it: the engine's durable store, the service's wire envelopes).
    """

    code = "io.serialization"


class ProtocolError(ReproError):
    """A distributed protocol reached an invalid state."""

    code = "protocol.error"


class CheatingDetectedError(ProtocolError):
    """The secure distributed algorithm (Algorithm 2) flagged a node.

    Carries the identity of the flagged node and of the witness that
    detected the inconsistency, mirroring the paper's "notifies v_j and
    other nodes; v_j will then be punished accordingly".
    """

    code = "protocol.cheating"

    def __init__(self, cheater: int, witness: int, reason: str) -> None:
        super().__init__(
            f"node {cheater} flagged by witness {witness}: {reason}"
        )
        self.cheater = int(cheater)
        self.witness = int(witness)
        self.reason = reason


class ExperimentError(ReproError):
    """An experiment specification was invalid or a run failed."""

    code = "experiment.error"


class EngineError(ReproError):
    """Base class for :class:`~repro.engine.PricingEngine` failures."""

    code = "engine.error"


class EngineClosedError(EngineError):
    """The engine was closed; no further queries or mutations apply."""

    code = "engine.closed"


class PersistError(EngineError):
    """Unusable checkpoint directory or bad durability configuration."""

    code = "engine.persist"


class RecoveryError(PersistError):
    """Recovery found no usable state (e.g. no checkpoint validates)."""

    code = "engine.recovery"


class ServiceError(ReproError):
    """Base class for :mod:`repro.service` serving-layer failures."""

    code = "service.error"


class ServiceOverloadedError(ServiceError):
    """The admission queue is full; the request was rejected (HTTP 429)."""

    code = "service.overloaded"


class ServiceClosedError(ServiceError):
    """The service is draining or closed; no new requests are admitted."""

    code = "service.closed"


class DeadlineExceededError(ServiceError):
    """The request's deadline expired before an answer was served."""

    code = "service.deadline"


#: The one shared code → HTTP status table (the service's handlers and
#: the CLI both resolve through it — see :func:`http_status`). 4xx are
#: the caller's fault (bad envelope, unknown node, domain refusals),
#: 429/503/504 are serving-layer pushback, 5xx are our bugs.
HTTP_STATUS: dict[str, int] = {
    "repro.error": 500,
    "graph.error": 400,
    "graph.invalid": 400,
    "graph.node_not_found": 404,
    "graph.disconnected": 422,
    "mechanism.monopoly": 422,
    "mechanism.error": 422,
    "request.invalid": 400,
    "io.serialization": 400,
    "protocol.error": 500,
    "protocol.cheating": 500,
    "experiment.error": 500,
    "engine.error": 500,
    "engine.closed": 503,
    "engine.persist": 500,
    "engine.recovery": 500,
    "service.error": 500,
    "service.overloaded": 429,
    "service.closed": 503,
    "service.deadline": 504,
    "internal": 500,
}


def error_code(exc: BaseException) -> str:
    """The stable code for an exception instance.

    :class:`ReproError` subclasses report their own (or their nearest
    ancestor's) ``code``; anything else is ``"internal"``.
    """
    code = getattr(exc, "code", None)
    return code if isinstance(code, str) else "internal"


def http_status(exc: BaseException) -> int:
    """The HTTP status an exception maps to (via :data:`HTTP_STATUS`).

    Unknown codes fall back up the exception's MRO so a subclass added
    without a table entry inherits its family's status, and ultimately
    to 500.
    """
    status = HTTP_STATUS.get(error_code(exc))
    if status is not None:
        return status
    for base in type(exc).__mro__:
        code = base.__dict__.get("code")
        if isinstance(code, str) and code in HTTP_STATUS:
            return HTTP_STATUS[code]
    return 500
