"""Exception hierarchy for :mod:`repro`.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing the common failure families (bad input graphs,
monopolies that make VCG payments undefined, protocol violations detected
by the secure distributed algorithm, an overloaded serving layer, ...).

Stable machine-readable codes
-----------------------------

Every class carries a ``code`` attribute — a stable, dotted,
machine-readable identifier (``"graph.disconnected"``,
``"service.overloaded"``, ...). Codes are the *wire contract*: the HTTP
service (:mod:`repro.service`) puts them in error envelopes, the CLI
prints them, and :data:`HTTP_STATUS` maps each code to exactly one HTTP
status so every surface agrees on what a failure means. Renaming a
class is invisible to clients as long as its code survives; codes are
append-only.

:func:`error_code` and :func:`http_status` resolve an *instance*
(walking the MRO, so subclasses inherit their family's code unless they
override it); non-:class:`ReproError` exceptions map to
``"internal"`` / 500.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphError",
    "InvalidGraphError",
    "NodeNotFoundError",
    "DisconnectedError",
    "MonopolyError",
    "MechanismError",
    "InvalidRequestError",
    "SerializationError",
    "ProtocolError",
    "CheatingDetectedError",
    "ExperimentError",
    "EngineError",
    "EngineClosedError",
    "PersistError",
    "RecoveryError",
    "ServiceError",
    "ServiceOverloadedError",
    "ServiceClosedError",
    "DeadlineExceededError",
    "ClientError",
    "CircuitOpenError",
    "RetryExhaustedError",
    "SupervisorError",
    "HTTP_STATUS",
    "RETRY_AFTER_S",
    "error_code",
    "http_status",
    "retry_after_s",
    "error_for_code",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""

    #: Stable machine-readable identifier (see the module docstring).
    code = "repro.error"


class GraphError(ReproError):
    """Base class for errors related to graph construction or queries."""

    code = "graph.error"


class InvalidGraphError(GraphError, ValueError):
    """A graph was constructed from inconsistent or invalid data.

    Examples: negative node costs, edge endpoints out of range, CSR arrays
    of mismatched lengths, duplicate edges where they are forbidden.
    """

    code = "graph.invalid"


class NodeNotFoundError(GraphError, KeyError):
    """A node index was out of range for the graph it was used with."""

    code = "graph.node_not_found"

    def __init__(self, node: int, n: int) -> None:
        super().__init__(f"node {node} out of range for graph with {n} nodes")
        self.node = int(node)
        self.n = int(n)


class DisconnectedError(GraphError):
    """No path exists between the requested endpoints.

    Raised by shortest-path queries that require a finite answer, and by
    experiment drivers when a generated topology fails the reachability
    requirements of the mechanism.
    """

    code = "graph.disconnected"

    def __init__(self, source: int, target: int, context: str = "") -> None:
        detail = f" ({context})" if context else ""
        super().__init__(f"no path from node {source} to node {target}{detail}")
        self.source = int(source)
        self.target = int(target)


class MonopolyError(DisconnectedError):
    """Removing an agent (or its collusion set) disconnects the endpoints.

    The VCG payment to such an agent is unbounded (the agent holds a
    monopoly), which the paper excludes by requiring the communication
    graph to be biconnected (Section II.B) — or ``G \\ Q(v_k)`` connected
    for the collusion-resistant schemes of Section III.E.
    """

    code = "mechanism.monopoly"

    def __init__(self, source: int, target: int, removed: object) -> None:
        DisconnectedError.__init__(
            self, source, target, context=f"after removing {removed!r}"
        )
        self.removed = removed


class MechanismError(ReproError):
    """A pricing-mechanism computation could not be carried out."""

    code = "mechanism.error"


class InvalidRequestError(ReproError, ValueError):
    """A request carried an invalid option or malformed parameters.

    The typed replacement for the bare ``ValueError`` the entry points
    used to raise on a bad ``method=``/``backend=``/``on_monopoly=``
    value — still a ``ValueError`` subclass, so pre-taxonomy ``except``
    clauses keep working.
    """

    code = "request.invalid"


class SerializationError(ReproError):
    """Unknown format tag, bad schema version, or malformed payload.

    Raised by :mod:`repro.io` (and therefore by everything layered on
    it: the engine's durable store, the service's wire envelopes).
    """

    code = "io.serialization"


class ProtocolError(ReproError):
    """A distributed protocol reached an invalid state."""

    code = "protocol.error"


class CheatingDetectedError(ProtocolError):
    """The secure distributed algorithm (Algorithm 2) flagged a node.

    Carries the identity of the flagged node and of the witness that
    detected the inconsistency, mirroring the paper's "notifies v_j and
    other nodes; v_j will then be punished accordingly".
    """

    code = "protocol.cheating"

    def __init__(self, cheater: int, witness: int, reason: str) -> None:
        super().__init__(
            f"node {cheater} flagged by witness {witness}: {reason}"
        )
        self.cheater = int(cheater)
        self.witness = int(witness)
        self.reason = reason


class ExperimentError(ReproError):
    """An experiment specification was invalid or a run failed."""

    code = "experiment.error"


class EngineError(ReproError):
    """Base class for :class:`~repro.engine.PricingEngine` failures."""

    code = "engine.error"


class EngineClosedError(EngineError):
    """The engine was closed; no further queries or mutations apply."""

    code = "engine.closed"


class PersistError(EngineError):
    """Unusable checkpoint directory or bad durability configuration."""

    code = "engine.persist"


class RecoveryError(PersistError):
    """Recovery found no usable state (e.g. no checkpoint validates)."""

    code = "engine.recovery"


class ServiceError(ReproError):
    """Base class for :mod:`repro.service` serving-layer failures."""

    code = "service.error"


class ServiceOverloadedError(ServiceError):
    """The admission queue is full; the request was rejected (HTTP 429)."""

    code = "service.overloaded"


class ServiceClosedError(ServiceError):
    """The service is draining or closed; no new requests are admitted."""

    code = "service.closed"


class DeadlineExceededError(ServiceError):
    """The request's deadline expired before an answer was served."""

    code = "service.deadline"


class ClientError(ReproError):
    """Base class for :class:`~repro.service.PricingClient` failures.

    Raised on the *caller's* side of the wire: the request never
    produced a usable answer (every retry failed, the breaker refused
    to try, ...). Server-side failures decoded from error envelopes are
    re-raised as their original taxonomy class instead (see
    :func:`error_for_code`).
    """

    code = "client.error"


class CircuitOpenError(ClientError):
    """The client's circuit breaker is open; the call was not attempted.

    Fail-fast pushback: the recent failure rate against this host
    crossed the breaker's threshold, so the client refuses to add load
    until the cooldown elapses and a half-open probe succeeds.
    """

    code = "client.circuit_open"


class RetryExhaustedError(ClientError):
    """Every retry attempt failed; carries the last failure as cause.

    ``__cause__`` (and the ``last`` attribute) hold the final
    attempt's exception so callers can still dispatch on the
    underlying failure family.
    """

    code = "client.retry_exhausted"

    def __init__(self, message: str, last: BaseException | None = None) -> None:
        super().__init__(message)
        self.last = last


class SupervisorError(ReproError):
    """The supervised server child could not be started or restarted."""

    code = "supervisor.error"


#: The one shared code → HTTP status table (the service's handlers and
#: the CLI both resolve through it — see :func:`http_status`). 4xx are
#: the caller's fault (bad envelope, unknown node, domain refusals),
#: 429/503/504 are serving-layer pushback, 5xx are our bugs.
HTTP_STATUS: dict[str, int] = {
    "repro.error": 500,
    "graph.error": 400,
    "graph.invalid": 400,
    "graph.node_not_found": 404,
    "graph.disconnected": 422,
    "mechanism.monopoly": 422,
    "mechanism.error": 422,
    "request.invalid": 400,
    "io.serialization": 400,
    "protocol.error": 500,
    "protocol.cheating": 500,
    "experiment.error": 500,
    "engine.error": 500,
    "engine.closed": 503,
    "engine.persist": 500,
    "engine.recovery": 500,
    "service.error": 500,
    "service.overloaded": 429,
    "service.closed": 503,
    "service.deadline": 504,
    "client.error": 500,
    "client.circuit_open": 503,
    "client.retry_exhausted": 503,
    "supervisor.error": 500,
    "internal": 500,
}

#: Default ``Retry-After`` hint (seconds) per retryable HTTP status.
#: 429 means "the queue is momentarily full" — retry almost
#: immediately; 503 means "draining or recovering" — back off longer.
RETRY_AFTER_S: dict[int, float] = {429: 0.05, 503: 1.0}


def error_code(exc: BaseException) -> str:
    """The stable code for an exception instance.

    :class:`ReproError` subclasses report their own (or their nearest
    ancestor's) ``code``; anything else is ``"internal"``.
    """
    code = getattr(exc, "code", None)
    return code if isinstance(code, str) else "internal"


def http_status(exc: BaseException) -> int:
    """The HTTP status an exception maps to (via :data:`HTTP_STATUS`).

    Unknown codes fall back up the exception's MRO so a subclass added
    without a table entry inherits its family's status, and ultimately
    to 500.
    """
    status = HTTP_STATUS.get(error_code(exc))
    if status is not None:
        return status
    for base in type(exc).__mro__:
        code = base.__dict__.get("code")
        if isinstance(code, str) and code in HTTP_STATUS:
            return HTTP_STATUS[code]
    return 500


def retry_after_s(exc: BaseException) -> float | None:
    """The ``Retry-After`` hint (seconds) for an exception, if any.

    An instance may carry an explicit ``retry_after_s`` attribute;
    otherwise the default for its HTTP status applies
    (:data:`RETRY_AFTER_S`). ``None`` means the status is not a
    back-off-and-retry condition.
    """
    explicit = getattr(exc, "retry_after_s", None)
    if isinstance(explicit, (int, float)):
        return float(explicit)
    return RETRY_AFTER_S.get(http_status(exc))


def _code_registry() -> dict[str, type[ReproError]]:
    """Map every taxonomy code to the class that *declares* it."""
    registry: dict[str, type[ReproError]] = {}
    stack: list[type[ReproError]] = [ReproError]
    while stack:
        cls = stack.pop()
        code = cls.__dict__.get("code")
        if isinstance(code, str) and code not in registry:
            registry[code] = cls
        stack.extend(cls.__subclasses__())
    return registry


def error_for_code(code: str, message: str) -> ReproError:
    """Rebuild a typed exception from a wire error envelope.

    The client uses this to re-raise server-side failures as the same
    taxonomy class the server raised, so ``except DisconnectedError:``
    works identically in-process and over HTTP. Classes with structured
    constructors (``NodeNotFoundError(node, n)``, ...) cannot be
    rebuilt from a message alone; those — and unknown codes — fall back
    to a generic :class:`ReproError` (or :class:`ClientError` for
    ``client.*`` codes) carrying the original ``code`` on the instance.
    """
    cls = _code_registry().get(code)
    if cls is not None:
        try:
            exc = cls(message)
        except (TypeError, ValueError):
            exc = None
        else:
            # A constructor that swallows the message (or mangles it)
            # is not a faithful rebuild; fall back to the generic path.
            if error_code(exc) == code:
                return exc
    fallback: ReproError = (
        ClientError(message) if code.startswith("client.") else ReproError(message)
    )
    fallback.code = code  # type: ignore[misc]  # shadow class attr per-instance
    return fallback
