"""Exception hierarchy for :mod:`repro`.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing the common failure families (bad input graphs,
monopolies that make VCG payments undefined, protocol violations detected
by the secure distributed algorithm, ...).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphError",
    "InvalidGraphError",
    "NodeNotFoundError",
    "DisconnectedError",
    "MonopolyError",
    "MechanismError",
    "ProtocolError",
    "CheatingDetectedError",
    "ExperimentError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class GraphError(ReproError):
    """Base class for errors related to graph construction or queries."""


class InvalidGraphError(GraphError, ValueError):
    """A graph was constructed from inconsistent or invalid data.

    Examples: negative node costs, edge endpoints out of range, CSR arrays
    of mismatched lengths, duplicate edges where they are forbidden.
    """


class NodeNotFoundError(GraphError, KeyError):
    """A node index was out of range for the graph it was used with."""

    def __init__(self, node: int, n: int) -> None:
        super().__init__(f"node {node} out of range for graph with {n} nodes")
        self.node = int(node)
        self.n = int(n)


class DisconnectedError(GraphError):
    """No path exists between the requested endpoints.

    Raised by shortest-path queries that require a finite answer, and by
    experiment drivers when a generated topology fails the reachability
    requirements of the mechanism.
    """

    def __init__(self, source: int, target: int, context: str = "") -> None:
        detail = f" ({context})" if context else ""
        super().__init__(f"no path from node {source} to node {target}{detail}")
        self.source = int(source)
        self.target = int(target)


class MonopolyError(DisconnectedError):
    """Removing an agent (or its collusion set) disconnects the endpoints.

    The VCG payment to such an agent is unbounded (the agent holds a
    monopoly), which the paper excludes by requiring the communication
    graph to be biconnected (Section II.B) — or ``G \\ Q(v_k)`` connected
    for the collusion-resistant schemes of Section III.E.
    """

    def __init__(self, source: int, target: int, removed: object) -> None:
        DisconnectedError.__init__(
            self, source, target, context=f"after removing {removed!r}"
        )
        self.removed = removed


class MechanismError(ReproError):
    """A pricing-mechanism computation could not be carried out."""


class ProtocolError(ReproError):
    """A distributed protocol reached an invalid state."""


class CheatingDetectedError(ProtocolError):
    """The secure distributed algorithm (Algorithm 2) flagged a node.

    Carries the identity of the flagged node and of the witness that
    detected the inconsistency, mirroring the paper's "notifies v_j and
    other nodes; v_j will then be punished accordingly".
    """

    def __init__(self, cheater: int, witness: int, reason: str) -> None:
        super().__init__(
            f"node {cheater} flagged by witness {witness}: {reason}"
        )
        self.cheater = int(cheater)
        self.witness = int(witness)
        self.reason = reason


class ExperimentError(ReproError):
    """An experiment specification was invalid or a run failed."""
