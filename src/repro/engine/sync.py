"""Reader–writer synchronization for the snapshot-isolated engine.

:class:`RWLock` implements the discipline :class:`~repro.engine.PricingEngine`
serves concurrent traffic under:

* any number of **readers** share the lock — queries never block each
  other;
* one **writer** at a time holds it exclusively — mutations observe a
  quiescent engine and publish the next version atomically (no reader
  can see a half-applied update);
* **writer preference** — once a writer is waiting, new readers queue
  behind it, so a steady query stream cannot starve updates;
* the write side is **reentrant** for its owning thread. The engine
  needs this: ``update_cost`` holds the write lock when an automatic
  checkpoint fires, and :meth:`PricingEngine.checkpoint` takes the
  write lock itself. A write holder may also take the read side (it is
  treated as a nested write acquisition), so a mutation can call
  query paths without deadlocking itself.

Lock *upgrades* (read → write while still holding read) deadlock by
construction in any reader–writer scheme — two upgraders would wait on
each other forever — so :meth:`RWLock.acquire_write` raises
``RuntimeError`` instead of hanging when the caller already holds the
read side.

The implementation is a single :class:`threading.Condition` over four
counters — deliberately boring; the engine's correctness argument
(docs/service.md) leans on this lock being obviously right, not fast.
Under CPython the pricing hot path spends its time in NumPy/SciPy
kernels anyway, so a fancier lock would buy nothing.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

__all__ = ["RWLock"]


class RWLock:
    """A writer-preferring, write-reentrant reader–writer lock."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0  # threads currently holding the read side
        self._writer: int | None = None  # ident of the write holder
        self._write_depth = 0  # reentrant write acquisitions
        self._waiting_writers = 0  # writers parked on the condition
        self._local = threading.local()  # per-thread read-hold depth

    # -- introspection (tests and assertions) -------------------------------

    @property
    def read_held(self) -> bool:
        """True when the calling thread holds the read side."""
        return getattr(self._local, "read_depth", 0) > 0

    @property
    def write_held(self) -> bool:
        """True when the calling thread holds the write side."""
        return self._writer == threading.get_ident()

    # -- read side -----------------------------------------------------------

    def acquire_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                # A write holder taking the read side: count it as a
                # nested write acquisition — it already excludes
                # everyone, and pairing with release_read keeps the
                # caller's with-blocks balanced.
                self._write_depth += 1
                return
            depth = getattr(self._local, "read_depth", 0)
            if depth == 0:
                # New readers queue behind waiting writers (preference);
                # nested re-reads by a thread already inside sail
                # through, or a writer waiting in between would
                # deadlock it against itself.
                while self._writer is not None or self._waiting_writers:
                    self._cond.wait()
                self._readers += 1
            self._local.read_depth = depth + 1

    def release_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._release_write_locked()
                return
            depth = getattr(self._local, "read_depth", 0)
            if depth <= 0:
                raise RuntimeError("release_read without acquire_read")
            self._local.read_depth = depth - 1
            if depth == 1:
                self._readers -= 1
                if self._readers == 0:
                    self._cond.notify_all()

    # -- write side ----------------------------------------------------------

    def acquire_write(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._write_depth += 1
                return
            if getattr(self._local, "read_depth", 0) > 0:
                raise RuntimeError(
                    "cannot upgrade a read lock to a write lock; release "
                    "the read side first"
                )
            self._waiting_writers += 1
            try:
                while self._writer is not None or self._readers:
                    self._cond.wait()
            finally:
                self._waiting_writers -= 1
            self._writer = me
            self._write_depth = 1

    def release_write(self) -> None:
        with self._cond:
            if self._writer != threading.get_ident():
                raise RuntimeError("release_write by a non-owner thread")
            self._release_write_locked()

    def _release_write_locked(self) -> None:
        self._write_depth -= 1
        if self._write_depth == 0:
            self._writer = None
            self._cond.notify_all()

    # -- context managers ----------------------------------------------------

    @contextmanager
    def read_locked(self):
        """``with lock.read_locked():`` — shared (query) critical section."""
        self.acquire_read()
        try:
            yield self
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self):
        """``with lock.write_locked():`` — exclusive (mutation) section."""
        self.acquire_write()
        try:
            yield self
        finally:
            self.release_write()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RWLock(readers={self._readers}, writer={self._writer}, "
            f"depth={self._write_depth}, waiting={self._waiting_writers})"
        )
