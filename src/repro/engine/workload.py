"""Seeded request/update traces and their replay harness.

A pricing service is exercised by a *workload*: an ordered mix of
``price`` queries and ``update`` cost changes (the paper's setting —
Section III.G prices everyone toward the access point while declared
costs are whatever the selfish nodes last announced). This module:

* generates seeded workloads (:func:`generate_workload`) with a
  configurable query/update mix — the benchmark default is the 90/10
  steady-state mix of ``benchmarks/bench_engine.py``;
* saves/loads them as JSON-lines traces (:func:`save_trace` /
  :func:`load_trace`), the format the ``repro-unicast engine`` CLI
  command replays;
* replays a trace against a :class:`~repro.engine.engine.PricingEngine`
  (:func:`replay`), optionally shadow-checking every answer against
  from-scratch pricing on the current snapshot and timing both sides.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from repro.core.mechanism import UnicastPayment
from repro.engine.engine import EngineStats, PricingEngine
from repro.graph.node_graph import NodeWeightedGraph
from repro.utils.rng import derive_seed

__all__ = [
    "WorkloadOp",
    "ReplayReport",
    "generate_workload",
    "save_trace",
    "load_trace",
    "replay",
]


@dataclass(frozen=True)
class WorkloadOp:
    """One trace entry: a ``price`` query or an ``update`` cost change."""

    kind: str  # "price" | "update"
    source: int = -1
    target: int = -1
    node: int = -1
    value: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in ("price", "update"):
            raise ValueError(f"unknown op kind {self.kind!r}")

    @classmethod
    def price(cls, source: int, target: int) -> "WorkloadOp":
        return cls(kind="price", source=int(source), target=int(target))

    @classmethod
    def update(cls, node: int, value: float) -> "WorkloadOp":
        return cls(kind="update", node=int(node), value=float(value))


def generate_workload(
    g: NodeWeightedGraph,
    n_ops: int = 1000,
    update_frac: float = 0.1,
    seed: int = 0,
    target: int | None = 0,
    hot_sources: int | None = None,
) -> list[WorkloadOp]:
    """A seeded stream of ``n_ops`` operations on a node-weighted graph.

    Each op is an update with probability ``update_frac`` (a uniformly
    chosen node re-declares a cost drawn from the initial cost range),
    else a query. Queries draw the source from a pool of ``hot_sources``
    distinct nodes (default ``max(n // 5, 10)`` — steady-state traffic
    repeats sources, which is what makes caching worth having) toward
    ``target`` (default: the access point 0; ``None`` draws a random
    target per query, the all-pairs generalization).

    Deterministic in ``(g, n_ops, update_frac, seed, ...)`` — streams
    are derived with :func:`repro.utils.rng.derive_seed` so traces are
    reproducible across sessions and processes.
    """
    if not isinstance(g, NodeWeightedGraph):
        raise TypeError("generate_workload expects a NodeWeightedGraph")
    if not 0.0 <= update_frac <= 1.0:
        raise ValueError(f"update_frac must be in [0, 1], got {update_frac}")
    rng = np.random.default_rng(derive_seed(seed, "engine-workload"))
    n = g.n
    lo = float(g.costs.min()) if n else 0.0
    hi = float(g.costs.max()) if n else 1.0
    if hi <= lo:
        hi = lo + 1.0
    if hot_sources is None:
        hot_sources = max(n // 5, min(10, n))
    candidates = [v for v in range(n) if target is None or v != target]
    pool = rng.choice(
        np.asarray(candidates, dtype=np.int64),
        size=min(int(hot_sources), len(candidates)),
        replace=False,
    )
    ops: list[WorkloadOp] = []
    for _ in range(int(n_ops)):
        if rng.random() < update_frac:
            node = int(rng.integers(n))
            value = float(rng.uniform(lo, hi))
            ops.append(WorkloadOp.update(node, value))
        else:
            src = int(pool[rng.integers(pool.shape[0])])
            if target is None:
                dst = int(rng.integers(n))
                while dst == src:
                    dst = int(rng.integers(n))
            else:
                dst = int(target)
            ops.append(WorkloadOp.price(src, dst))
    return ops


def save_trace(ops: Iterable[WorkloadOp], path) -> None:
    """Write a workload as JSON lines (one op per line)."""
    path = Path(path)
    with path.open("w") as fh:
        for op in ops:
            fh.write(json.dumps(asdict(op)) + "\n")


def load_trace(path) -> list[WorkloadOp]:
    """Read a workload written by :func:`save_trace`."""
    path = Path(path)
    ops = []
    for line in path.read_text().splitlines():
        if line.strip():
            ops.append(WorkloadOp(**json.loads(line)))
    return ops


@dataclass(frozen=True)
class ReplayReport:
    """Outcome of replaying a trace through an engine.

    ``naive_elapsed`` and ``mismatches`` are populated only when the
    replay shadow-checked against from-scratch pricing
    (``compare=True``); ``mismatches`` counts queries whose engine
    answer differed *at all* (payments, path or cost) from the fresh
    computation — the acceptance criterion demands zero.
    """

    n_queries: int
    n_updates: int
    elapsed: float
    final_version: int
    stats: EngineStats
    naive_elapsed: float | None = None
    mismatches: int = 0
    mismatch_keys: tuple[tuple[int, int], ...] = field(default=())

    @property
    def speedup(self) -> float:
        """Naive-over-engine wall-clock ratio (``nan`` without compare)."""
        if self.naive_elapsed is None or self.elapsed <= 0:
            return float("nan")
        return self.naive_elapsed / self.elapsed

    def describe(self) -> str:
        """One-paragraph human-readable summary."""
        lines = [
            f"replayed {self.n_queries} queries + {self.n_updates} updates "
            f"in {self.elapsed:.3f}s (engine version {self.final_version})",
            f"pair cache: {self.stats.cache_hits} hits / "
            f"{self.stats.cache_misses} misses "
            f"(hit rate {self.stats.hit_rate:.1%}); "
            f"SPT cache: {self.stats.spt_cache_hits} hits / "
            f"{self.stats.spt_cache_misses} misses",
            f"invalidations {self.stats.invalidations}, retained "
            f"{self.stats.retained}, stale evictions "
            f"{self.stats.stale_evictions}",
        ]
        if self.naive_elapsed is not None:
            lines.append(
                f"naive recompute: {self.naive_elapsed:.3f}s -> "
                f"speedup {self.speedup:.1f}x; mismatches {self.mismatches}"
            )
        return "\n".join(lines)


def _same_payment(a: UnicastPayment, b: UnicastPayment) -> bool:
    return (
        a.path == b.path
        and a.lcp_cost == b.lcp_cost
        and dict(a.payments) == dict(b.payments)
    )


def replay(
    engine: PricingEngine,
    ops: Sequence[WorkloadOp],
    compare: bool = False,
) -> ReplayReport:
    """Run every op through ``engine``; optionally shadow-check and time
    the naive per-request recompute on the same op stream.

    With ``compare=True`` a second pass replays the trace with *no*
    caching — every query is priced from scratch on the then-current
    graph via the stateless entry point — and every engine answer is
    required to match bit-for-bit. The two passes are timed separately
    so the report's ``speedup`` is engine-vs-naive on identical work.
    """
    g0 = engine.graph  # pre-replay snapshot, for the shadow pass
    answers: list[UnicastPayment] = []
    n_queries = n_updates = 0
    t0 = time.perf_counter()
    for op in ops:
        if op.kind == "price":
            answers.append(engine.price(op.source, op.target))
            n_queries += 1
        else:
            engine.update_cost(op.node, op.value)
            n_updates += 1
    elapsed = time.perf_counter() - t0

    naive_elapsed = None
    mismatches: list[tuple[int, int]] = []
    if compare:
        from repro.core.vcg_unicast import vcg_unicast_payments

        if engine.model != "node":
            raise NotImplementedError(
                "compare=True replay is node-model only"
            )
        # Rebuild the graph sequence from scratch, stateless pricing only.
        g = g0
        idx = 0
        t0 = time.perf_counter()
        for op in ops:
            if op.kind == "price":
                fresh = vcg_unicast_payments(
                    g,
                    op.source,
                    op.target,
                    method="fast",
                    backend=engine.backend,
                    on_monopoly=engine.on_monopoly,
                )
                if not _same_payment(fresh, answers[idx]):
                    mismatches.append((op.source, op.target))
                idx += 1
            else:
                g = g.with_declaration(op.node, op.value)
        naive_elapsed = time.perf_counter() - t0

    return ReplayReport(
        n_queries=n_queries,
        n_updates=n_updates,
        elapsed=elapsed,
        final_version=engine.version,
        stats=engine.stats,
        naive_elapsed=naive_elapsed,
        mismatches=len(mismatches),
        mismatch_keys=tuple(mismatches[:10]),
    )
