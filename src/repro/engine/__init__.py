"""The long-lived pricing service layer.

The paper's Algorithm 1 prices one static request; a deployed access
point serves a *stream* of requests while declared costs drift and nodes
churn. :class:`PricingEngine` is that service: it owns a versioned
topology snapshot, answers ``price()`` through an SPT/payment cache, and
applies ``update_cost`` / ``remove_node`` / ``add_node`` with
dirty-region invalidation so that steady-state traffic mostly hits
caches instead of recomputing Dijkstras from scratch.

:mod:`repro.engine.workload` generates, saves and replays seeded
request/update traces (the ``repro-unicast engine`` CLI command and
``benchmarks/bench_engine.py`` are thin wrappers over it).

:mod:`repro.engine.persist` makes the service durable: a write-ahead
log of every mutation plus periodic checkpoints, so
:meth:`PricingEngine.open` rebuilds a bit-identical engine after a
crash (see ``docs/engine.md`` for the operations guide).

:mod:`repro.engine.sync` supplies the writer-preferring reader–writer
lock behind the engine's snapshot isolation: concurrent ``price()``
calls share the lock while mutations serialize and publish new
versions atomically (``docs/service.md``).
"""

from repro.engine.engine import EngineStats, PricingEngine
from repro.engine.persist import (
    EnginePersistence,
    PersistError,
    RecoveryError,
    RecoveryReport,
)
from repro.engine.sync import RWLock
from repro.engine.workload import (
    ReplayReport,
    WorkloadOp,
    generate_workload,
    load_trace,
    replay,
    save_trace,
)

__all__ = [
    "PricingEngine",
    "EngineStats",
    "EnginePersistence",
    "PersistError",
    "RecoveryError",
    "RecoveryReport",
    "RWLock",
    "WorkloadOp",
    "ReplayReport",
    "generate_workload",
    "save_trace",
    "load_trace",
    "replay",
]
