"""A long-lived, update-aware VCG pricing service.

Why a service layer
-------------------

Every entry point in :mod:`repro.core` prices one request on one
immutable graph. A deployed access point instead sees a *stream*:
mostly repeated ``price(source, target)`` queries, occasionally a node
re-declaring its cost or joining/leaving. Recomputing two Dijkstras and
an Algorithm-1 pass per request throws away almost all of the work —
the shortest-path structure barely changes between updates. Ad hoc-VCG
(PAPERS.md) runs the mechanism continuously over exactly such a drifting
network; this module supplies the machinery.

Versioned snapshots and dirty-region invalidation
-------------------------------------------------

The engine owns the current graph plus a monotonically increasing
``version``. Two caches are stamped with the version they were computed
at:

* an **SPT cache** ``root -> ShortestPathTree`` (Algorithm 1 consumes
  one tree per endpoint; trees are shared across every pair touching the
  endpoint, exactly like :func:`repro.core.allpairs.pairwise_vcg_payments`);
* a **pair cache** ``(source, target) -> FastPaymentResult`` holding the
  full Algorithm-1 output (the intermediates are what make retention
  decidable, see below).

A stamp that does not match the current version marks the entry stale.
A *node cost update* itself does almost no work: it swaps the graph
snapshot, bumps the version and appends a ``(node, old, new)`` record
to a bounded **update log**. Whether a stale entry is still usable is
decided lazily, at lookup, by *fast-forwarding* it through the logged
updates one at a time — entries nobody asks for again never cost
anything. A fast-forwarded entry is re-stamped (counted per logged step
as ``retained`` or ``repairs``); one that fails is evicted (counted as
``stale_evictions``). Per logged update ``k: c_old -> c_new``:

* **SPT survival and repair.** A cached tree ``T`` with distance array
  ``d`` survives unchanged (node-weighted convention: ``d[x]`` counts
  internal nodes only, so ``d`` never includes ``c_k`` on paths *to*
  ``k`` — in particular ``d[k]`` itself is exact on both graphs) iff
  ``k`` is the root, unreachable, or — for a **decrease** — no
  neighbour can be improved through it: ``d[k] + c_new >= d[w]`` for
  every neighbour ``w`` (the standard Dijkstra optimality certificate —
  only relaxations *through* ``k`` changed); for an **increase** —
  ``k`` has no tree children, so no witnessed shortest path uses ``k``
  internally and alternatives through ``k`` only got worse.

  A tree that fails its certificate is **repaired** in place of a full
  rebuild, Ramalingam–Reps style. After a *decrease*, only paths
  through ``k`` improved, so a partial Dijkstra seeded with ``k``'s
  relaxations (``d[k] + c_new`` into each neighbour) settles exactly
  the improved region. After an *increase*, only ``k``'s strict tree
  descendants can change: their distances are cleared, each is seeded
  from its best settled (non-descendant) neighbour, and a Dijkstra
  restricted to the region finishes the job. Both repairs perform the
  same left-to-right float additions along each node's new tree path
  that a from-scratch Dijkstra would, and untouched nodes keep their
  old floats — so repaired trees are **bit-identical** to fresh ones
  (``tests/test_engine.py`` asserts exactly this).

* **Pair survival.** A cached result for ``(s, t)`` survives trivially
  when ``k`` is an endpoint (endpoint costs never enter path costs or
  payments, Section II.C). Otherwise let ``B`` be the largest quantity
  the result witnessed — ``max(lcp_cost, max(avoiding_costs))``. Path
  costs in the node model are *symmetric* (reversing a path keeps its
  internal nodes), so one **witness tree** rooted at ``k`` — built
  once per logged update, shared by every cached pair — supplies
  ``d_s[k] = d_k[s]`` and ``d_t[k] = d_k[t]`` for all endpoints at
  once. These distances never include ``c_k`` (root cost) nor the
  endpoint's own cost, so they are valid on both the old and the new
  graph. Any simple ``s``–``t`` path with ``k`` internal costs at
  least ``d_s[k] + c_k + d_t[k]``; if
  ``d_k[s] + min(c_old, c_new) + d_k[t] > B`` (strictly), no such path
  can affect the LCP or any avoiding path on either graph, so every
  number in the result is unchanged. Infinite ``B`` (a monopolized
  relay priced with ``on_monopoly="inf"``) never passes — conservative.

Topology changes (``remove_node``/``add_node``) and link-model arc
updates clear the log instead: the version bump lazily invalidates
everything, which is always sound. The log is capped
(``_LOG_CAP`` updates); entries older than the cap fall back to a
plain rebuild at next use.

Exactness caveat: retention is value-exact; the returned *path* is
additionally identical whenever the least cost path is unique (generic
float costs — the property tests in ``tests/test_engine.py`` draw
seeded uniform costs, which are tie-free almost surely).

Batching
--------

``price_many`` funnels cache misses into
:func:`~repro.core.allpairs.pairwise_vcg_payments`, sharing the
engine's SPT cache, and optionally fans independent chunks out over
worker processes via :func:`repro.analysis.parallel.run_tasks`
(``jobs=``) — bit-identical to the serial path. Living in the engine
package keeps the layering rule intact: ``core`` never imports
``analysis``.

Concurrency and snapshot isolation
----------------------------------

The engine is safe to share across threads. A writer-preferring
reader–writer lock (:class:`repro.engine.sync.RWLock`) enforces
snapshot isolation: :meth:`PricingEngine.price` /
:meth:`PricingEngine.price_many` hold the read side, so any number of
queries run concurrently against one frozen ``(graph, version)``
snapshot, while :meth:`PricingEngine.update_cost` /
:meth:`PricingEngine.add_node` / :meth:`PricingEngine.remove_node` /
:meth:`PricingEngine.checkpoint` serialize through the write side and
publish the next version atomically. No query ever observes a
half-applied mutation, so every answer is bit-identical to what a
serial execution at that answer's ``graph_version`` would produce —
:meth:`PricingEngine.price_versioned` returns the pinned version
alongside the payment precisely so callers (the service layer, the
stress tests) can replay the serial oracle and check.

Two sharp edges follow from the design and are worth knowing:

* Cache *bookkeeping* (hit/miss counters, concurrent same-key inserts)
  is benign-racy under concurrent readers: both racers compute the
  same bit-identical value from the same snapshot and the last insert
  wins, so responses are exact even when counters are approximate.
* Once closed (:meth:`PricingEngine.close`), queries and mutations
  raise :class:`~repro.errors.EngineClosedError`; introspection
  properties stay readable.

Durability
----------

With ``checkpoint_dir=`` set, every applied mutation is appended to a
checksummed write-ahead log and :meth:`PricingEngine.checkpoint`
(manual, or automatic every ``checkpoint_every`` mutations) persists
the full state — graph, version, warm caches — atomically.
:meth:`PricingEngine.open` recovers a crashed engine bit-identically
by loading the newest valid checkpoint and replaying the WAL tail
through the very same mutation methods. The formats, fsync policies
and corruption-fallback rules live in :mod:`repro.engine.persist`
(and the operations guide, ``docs/engine.md``).
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from repro.core.allpairs import pairwise_vcg_payments
from repro.core.fast_payment import FastPaymentResult, fast_vcg_payments
from repro.core.link_vcg import link_vcg_payments
from repro.core.mechanism import (
    UnicastPayment,
    resolve_backend,
    resolve_monopoly_policy,
    spt_backend_for,
)
from repro.engine import persist as _persist_mod
from repro.engine.sync import RWLock
from repro.errors import EngineClosedError, ReproError
from repro.graph.dijkstra import node_weighted_spt
from repro.graph.link_graph import LinkWeightedDigraph
from repro.graph.node_graph import NodeWeightedGraph
from repro.graph.spt import ShortestPathTree
from repro.obs import logging as obs_logging
from repro.obs.context import request_scope
from repro.obs.flight import FLIGHT as _flight
from repro.obs.metrics import REGISTRY as _metrics
from repro.obs.tracing import TRACER as _tracer
from repro.utils.heap import IndexedMinHeap
from repro.utils.validation import check_node_index

__all__ = ["PricingEngine", "EngineStats"]

_log = obs_logging.get_logger("engine")


@dataclass
class EngineStats:
    """Always-on local counters (the :mod:`repro.obs` registry mirrors
    them under ``engine.*`` when enabled).

    ``cache_hits``/``cache_misses`` count pair-cache outcomes per priced
    pair; ``spt_cache_*`` the endpoint-tree cache; ``invalidations``
    entries dropped at lookup because a logged update provably dirtied
    them; ``stale_evictions`` entries dropped because they aged out of
    the update log (topology change, log cap, or an explicit
    :meth:`PricingEngine.purge_stale`); ``retained`` fast-forward steps
    that carried an entry through a logged update unchanged;
    ``repairs`` cached trees incrementally patched through one.

    ``wal_records``/``checkpoint_writes``/``recoveries`` count the
    durability layer (:mod:`repro.engine.persist`): mutations appended
    to the write-ahead log, checkpoint files written, and recoveries
    this engine was built from (0 or 1 — it mirrors into the cumulative
    ``engine.recoveries`` obs counter).
    """

    queries: int = 0
    batches: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    spt_cache_hits: int = 0
    spt_cache_misses: int = 0
    invalidations: int = 0
    stale_evictions: int = 0
    retained: int = 0
    repairs: int = 0
    updates: int = 0
    wal_records: int = 0
    checkpoint_writes: int = 0
    recoveries: int = 0

    def as_dict(self) -> dict:
        """Plain-dict view (for reports and ``--metrics`` output)."""
        return asdict(self)

    @property
    def hit_rate(self) -> float:
        """Pair-cache hit rate over all priced pairs (``nan`` when idle)."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else float("nan")


def _empty_payment(source: int, target: int, scheme: str) -> UnicastPayment:
    return UnicastPayment(source, target, (), 0.0, {}, scheme=scheme)


#: Cost updates remembered for lazy fast-forwarding; entries older than
#: this fall back to a plain rebuild at next use (memory bound: one cost
#: vector plus one lazily built witness tree per remembered update).
_LOG_CAP = 128

#: Trees more than this many updates behind are rebuilt instead of
#: fast-forwarded: each step costs a survival cert plus an occasional
#: repair, and past roughly this many steps one compiled-backend
#: Dijkstra is cheaper than the chain. Pairs have no such cap — their
#: per-step bound test is two array reads against an already-built
#: witness tree, orders of magnitude below a recompute.
_SPT_FF_CAP = 10


@dataclass
class _CostUpdate:
    """One logged node-cost update, with everything fast-forward needs:
    the snapshot it produced (repairs must replay relaxations against
    *that* graph's costs) and a lazily built witness tree rooted at the
    updated node (see the module docstring's pair-survival test)."""

    node: int
    old: float
    new: float
    graph: NodeWeightedGraph
    witness: ShortestPathTree | None = None


def _price_node_chunk(graph, pairs, on_monopoly, backend):
    """Worker task: price one chunk of pairs (node model).

    Module-level so it pickles into :func:`repro.analysis.parallel`
    worker processes. ``graph`` may be a real graph or a zero-copy
    :class:`repro.analysis.shm.ArenaHandle` exported by the parent.
    """
    from repro.analysis.shm import resolve_graph

    return pairwise_vcg_payments(
        resolve_graph(graph), pairs, on_monopoly=on_monopoly, backend=backend
    )


def _price_link_chunk(dg, pairs, on_monopoly, backend):
    """Worker task: price one chunk of pairs (link model)."""
    from repro.analysis.shm import resolve_graph

    dg = resolve_graph(dg)
    return {
        (s, t): link_vcg_payments(
            dg, s, t, on_monopoly=on_monopoly, backend=backend
        )
        for s, t in pairs
    }


class PricingEngine:
    """Long-lived pricing service over a versioned topology snapshot.

    Parameters
    ----------
    graph:
        A :class:`~repro.graph.node_graph.NodeWeightedGraph` (Sections
        II–III.E) or :class:`~repro.graph.link_graph.LinkWeightedDigraph`
        (Section III.F). The model is detected from the type.
    backend, on_monopoly:
        The uniform pricing keywords, applied to every request this
        engine serves (see :func:`repro.core.mechanism.resolve_backend`).
    checkpoint_dir:
        When set, the engine is *durable*: every applied mutation is
        appended to a checksummed write-ahead log in this directory
        and :meth:`checkpoint` persists full state atomically (see
        :mod:`repro.engine.persist`). The directory must not already
        hold engine state — recover that with :meth:`open` instead.
    fsync, fsync_every:
        WAL fsync policy: ``"always"`` (fsync per mutation — a kill -9
        loses nothing applied), ``"interval"`` (default; fsync every
        ``fsync_every`` records), ``"never"`` (OS page cache decides).
    checkpoint_every:
        Automatically :meth:`checkpoint` after this many logged
        mutations (``None`` = manual checkpoints only).
    retain:
        Checkpoint generations kept for corruption fallback.

    Every answer is exactly what the stateless entry points would return
    on the current snapshot: :func:`repro.core.vcg_unicast_payments`
    (``method="fast"``) for the node model,
    :func:`repro.core.link_vcg.link_vcg_payments` for the link model.
    The caches only change *when* work happens, never the numbers — the
    hypothesis property in ``tests/test_engine.py`` interleaves updates
    and queries and checks bit-identity against from-scratch pricing.
    """

    def __init__(
        self,
        graph: NodeWeightedGraph | LinkWeightedDigraph,
        backend: str = "auto",
        on_monopoly: str = "raise",
        checkpoint_dir: str | Path | None = None,
        fsync: str = "interval",
        fsync_every: int = 64,
        checkpoint_every: int | None = None,
        retain: int = 2,
    ) -> None:
        if isinstance(graph, NodeWeightedGraph):
            self._model = "node"
        elif isinstance(graph, LinkWeightedDigraph):
            self._model = "link"
        else:
            raise TypeError(
                "PricingEngine needs a NodeWeightedGraph or a "
                f"LinkWeightedDigraph, got {type(graph).__name__}"
            )
        self._graph = graph
        self._backend = resolve_backend(backend)
        self._on_monopoly = resolve_monopoly_policy(on_monopoly)
        self._rw = RWLock()
        self._closed = False
        self._version = 0
        # root -> (version_stamp, tree); (source, target) -> (stamp, result)
        self._spts: dict[int, tuple[int, ShortestPathTree]] = {}
        self._pairs: dict[tuple[int, int], tuple[int, object]] = {}
        # version -> the cost update that produced it; a stale entry
        # stamped v can fast-forward iff v >= _log_floor (every later
        # update is still in the log).
        self._log: dict[int, _CostUpdate] = {}
        self._log_floor = 0
        self.stats = EngineStats()
        #: The :class:`~repro.engine.persist.RecoveryReport` this engine
        #: was recovered from (``None`` for fresh engines).
        self.last_recovery: _persist_mod.RecoveryReport | None = None
        self._checkpoint_every = (
            int(checkpoint_every) if checkpoint_every else None
        )
        self._persist: _persist_mod.EnginePersistence | None = None
        if checkpoint_dir is not None:
            store = _persist_mod.EnginePersistence(
                checkpoint_dir,
                fsync=fsync,
                fsync_every=fsync_every,
                retain=retain,
            )
            if store.has_state():
                raise _persist_mod.PersistError(
                    f"{checkpoint_dir} already holds engine state; "
                    "recover it with PricingEngine.open() or point at "
                    "an empty directory"
                )
            self._persist = store
            self.checkpoint()  # the durable base the WAL extends

    # -- introspection -------------------------------------------------------

    @property
    def graph(self) -> NodeWeightedGraph | LinkWeightedDigraph:
        """The current topology snapshot (immutable; replaced on update)."""
        return self._graph

    @property
    def version(self) -> int:
        """Monotonic snapshot version; bumps on every applied update."""
        return self._version

    @property
    def model(self) -> str:
        """``"node"`` or ``"link"``."""
        return self._model

    @property
    def backend(self) -> str:
        """The kernel backend every request is served with."""
        return self._backend

    @property
    def on_monopoly(self) -> str:
        """The monopoly policy every request is served with."""
        return self._on_monopoly

    @property
    def n(self) -> int:
        """Number of nodes in the current snapshot."""
        return self._graph.n

    @property
    def durable(self) -> bool:
        """True when the engine persists mutations (``checkpoint_dir=``)."""
        return self._persist is not None

    @property
    def closed(self) -> bool:
        """True after :meth:`close`; queries and mutations then raise."""
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise EngineClosedError(
                "engine is closed; queries and mutations no longer apply"
            )

    def graph_snapshot(
        self,
    ) -> tuple[NodeWeightedGraph | LinkWeightedDigraph, int]:
        """The current ``(graph, version)`` pair, read atomically.

        Reading ``eng.graph`` and ``eng.version`` separately can
        straddle a concurrent update; this takes the read lock once so
        the two always correspond.
        """
        with self._rw.read_locked():
            self._check_open()
            return self._graph, self._version

    def paused(self):
        """Exclusive pause: ``with eng.paused():`` blocks every query
        and mutation until the block exits.

        Readers drain first (writer preference), then the block runs
        alone — a quiescence point for consistent external backups, and
        the hook the concurrency tests use to stage deterministic
        interleavings.
        """
        return self._rw.write_locked()

    def __repr__(self) -> str:
        return (
            f"PricingEngine(model={self._model!r}, n={self.n}, "
            f"version={self._version}, spts={len(self._spts)}, "
            f"pairs={len(self._pairs)})"
        )

    def _count(self, name: str, n: int = 1) -> None:
        if _metrics.enabled:
            _metrics.add(f"engine.{name}", n)

    def _update_gauges(self) -> None:
        """Mirror the live resource footprint into ``engine.*`` gauges
        so cache growth is visible on ``/metrics``, not just hit/miss
        counters. Called after every query/update while enabled."""
        if _metrics.enabled:
            _metrics.set_gauge("engine.spt_cache_entries", len(self._spts))
            _metrics.set_gauge("engine.pair_cache_entries", len(self._pairs))
            _metrics.set_gauge("engine.update_log_entries", len(self._log))
            if self._persist is not None:
                _metrics.set_gauge(
                    "engine.wal_bytes", float(self._persist.wal_bytes)
                )
                _metrics.set_gauge(
                    "engine.wal_records_since_checkpoint",
                    float(self._persist.records_since_checkpoint),
                )

    # -- SPT cache -----------------------------------------------------------

    def _spt_of(self, root: int) -> ShortestPathTree:
        entry = self._spts.get(root)
        if entry is not None:
            stamp, spt = entry
            if stamp != self._version:
                spt = self._fast_forward_spt(root, stamp, spt)
            if spt is not None:
                self.stats.spt_cache_hits += 1
                self._count("spt_cache_hits")
                return spt
        self.stats.spt_cache_misses += 1
        self._count("spt_cache_misses")
        _flight.record("rebuild", version=self._version, value=float(root))
        spt = node_weighted_spt(
            self._graph, root, backend=spt_backend_for(self._backend)
        )
        self._spts[root] = (self._version, spt)
        return spt

    def _fast_forward_spt(
        self, root: int, stamp: int, spt: ShortestPathTree
    ) -> ShortestPathTree | None:
        """Carry a stale tree through the logged updates, or drop it."""
        if stamp < self._log_floor or self._version - stamp > _SPT_FF_CAP:
            # pop, not del: two readers racing on the same stale root
            # both take this branch (benign — each rebuilds the same
            # tree from the same snapshot).
            self._spts.pop(root, None)
            self.stats.stale_evictions += 1
            self._count("stale_evictions")
            _flight.record("evict", version=self._version, value=float(root))
            return None
        for v in range(stamp + 1, self._version + 1):
            upd = self._log[v]
            if self._spt_survives(spt, upd):
                self.stats.retained += 1
                self._count("retained")
            else:
                spt = self._repair_spt(spt, upd)
                self.stats.repairs += 1
                self._count("repairs")
                _flight.record(
                    "repair", version=self._version, value=float(root)
                )
        self._spts[root] = (self._version, spt)
        _flight.record(
            "fast_forward",
            version=self._version,
            value=float(self._version - stamp),
        )
        return spt

    # -- queries -------------------------------------------------------------

    def price(self, source: int, target: int) -> UnicastPayment:
        """VCG outcome for one request on the current snapshot.

        Served from the pair cache when a same-version entry exists;
        otherwise computed (sharing cached endpoint SPTs in the node
        model) and cached. Raises exactly what the stateless entry
        points raise (:class:`~repro.errors.DisconnectedError`,
        :class:`~repro.errors.MonopolyError` under
        ``on_monopoly="raise"``). Thread-safe: runs under the shared
        read lock, so concurrent calls never observe a half-applied
        update.
        """
        with self._rw.read_locked():
            self._check_open()
            return self._price_locked(source, target)

    def price_versioned(
        self, source: int, target: int
    ) -> tuple[UnicastPayment, int]:
        """Like :meth:`price`, returning ``(payment, graph_version)``.

        The version is read under the same read-lock hold that served
        the query, so it names exactly the snapshot the payment was
        computed against — the handle a caller needs to verify the
        answer against a serial oracle (``docs/service.md``).
        """
        with self._rw.read_locked():
            self._check_open()
            return self._price_locked(source, target), self._version

    def _price_locked(self, source: int, target: int) -> UnicastPayment:
        source = check_node_index(source, self._graph.n)
        target = check_node_index(target, self._graph.n)
        self.stats.queries += 1
        self._count("queries")
        scheme = "vcg" if self._model == "node" else "link-vcg"
        if source == target:
            return _empty_payment(source, target, scheme)
        key = (source, target)
        with request_scope() as rid:
            t0 = time.perf_counter()
            try:
                with _tracer.span(
                    "engine.price", source=source, target=target
                ):
                    cached = self._lookup_pair(key)
                    res = (
                        cached
                        if cached is not None
                        else self._compute_pair(key)
                    )
            except ReproError:
                raise  # domain outcome (disconnected, monopoly), not a crash
            except Exception as exc:
                _flight.record("error", rid, self._version)
                _flight.dump_error(exc)
                raise
            elapsed = time.perf_counter() - t0
            _flight.record("query", rid, self._version, elapsed)
            if _metrics.enabled:
                _metrics.observe("engine.price_time", elapsed)
                self._update_gauges()
            _log.debug(
                "request priced",
                extra={
                    "source": source,
                    "target": target,
                    "hit": cached is not None,
                    "version": self._version,
                    "elapsed_s": round(elapsed, 6),
                },
            )
            return res

    def _lookup_pair(self, key: tuple[int, int]) -> UnicastPayment | None:
        entry = self._pairs.get(key)
        if entry is not None:
            stamp, res = entry
            if stamp == self._version or self._fast_forward_pair(
                key, stamp, res
            ):
                self.stats.cache_hits += 1
                self._count("cache_hits")
                _flight.record("hit", version=self._version)
                if isinstance(res, FastPaymentResult):
                    return res.to_unicast_payment()
                return res
        self.stats.cache_misses += 1
        self._count("cache_misses")
        _flight.record("miss", version=self._version)
        return None

    def _fast_forward_pair(
        self, key: tuple[int, int], stamp: int, res: object
    ) -> bool:
        """Re-stamp a stale pair if every logged update provably left it
        unchanged; evict it otherwise."""
        if stamp >= self._log_floor:
            for v in range(stamp + 1, self._version + 1):
                if not self._pair_survives(res, key, self._log[v]):
                    self._pairs.pop(key, None)
                    self.stats.invalidations += 1
                    self._count("invalidations")
                    _flight.record("invalidate", version=self._version)
                    return False
                self.stats.retained += 1
                self._count("retained")
            self._pairs[key] = (self._version, res)
            _flight.record(
                "fast_forward",
                version=self._version,
                value=float(self._version - stamp),
            )
            return True
        self._pairs.pop(key, None)
        self.stats.stale_evictions += 1
        self._count("stale_evictions")
        _flight.record("evict", version=self._version)
        return False

    def _compute_pair(self, key: tuple[int, int]) -> UnicastPayment:
        source, target = key
        if self._model == "node":
            fast = fast_vcg_payments(
                self._graph,
                source,
                target,
                on_monopoly=self._on_monopoly,
                backend=self._backend,
                spt_source=self._spt_of(source),
                spt_target=self._spt_of(target),
            )
            self._pairs[key] = (self._version, fast)
            return fast.to_unicast_payment()
        res = link_vcg_payments(
            self._graph,
            source,
            target,
            on_monopoly=self._on_monopoly,
            backend=self._backend,
        )
        self._pairs[key] = (self._version, res)
        return res

    def price_many(
        self,
        pairs: Iterable[tuple[int, int]],
        jobs: int | None = None,
    ) -> dict[tuple[int, int], UnicastPayment]:
        """Price a batch of ordered pairs; returns ``pair -> payment``.

        Cache hits are served directly; the remaining pairs funnel into
        the shared-SPT batch machinery
        (:func:`~repro.core.allpairs.pairwise_vcg_payments`), reusing —
        and growing — this engine's SPT cache. ``jobs`` fans misses out
        over worker processes (``-1`` = all cores; results are
        bit-identical to the serial path, like every ``jobs=`` in this
        repo). Worker processes cannot share the parent's caches, so
        parallel batches trade cache growth for wall-clock time.
        Thread-safe: the whole batch runs under one read-lock hold, so
        every pair in the returned dict was priced at the same version.
        """
        with self._rw.read_locked():
            self._check_open()
            return self._price_many_locked(pairs, jobs)

    def price_many_versioned(
        self,
        pairs: Iterable[tuple[int, int]],
        jobs: int | None = None,
    ) -> tuple[dict[tuple[int, int], UnicastPayment], int]:
        """Like :meth:`price_many`, returning ``(payments, version)``
        with the version pinned for the entire batch."""
        with self._rw.read_locked():
            self._check_open()
            return self._price_many_locked(pairs, jobs), self._version

    def _price_many_locked(
        self,
        pairs: Iterable[tuple[int, int]],
        jobs: int | None = None,
    ) -> dict[tuple[int, int], UnicastPayment]:
        from repro.analysis.parallel import resolve_jobs, run_tasks

        self.stats.batches += 1
        self._count("batches")
        scheme = "vcg" if self._model == "node" else "link-vcg"
        with request_scope() as rid:
            t0 = time.perf_counter()
            out: dict[tuple[int, int], UnicastPayment] = {}
            todo: list[tuple[int, int]] = []
            seen: set[tuple[int, int]] = set()
            for s, t in pairs:
                s = check_node_index(s, self._graph.n)
                t = check_node_index(t, self._graph.n)
                key = (s, t)
                if key in seen:
                    continue
                seen.add(key)
                self.stats.queries += 1
                self._count("queries")
                if s == t:
                    out[key] = _empty_payment(s, t, scheme)
                    continue
                cached = self._lookup_pair(key)
                if cached is not None:
                    out[key] = cached
                else:
                    todo.append(key)
            if todo:
                n_jobs = resolve_jobs(jobs)
                try:
                    with _tracer.span(
                        "engine.price_many",
                        pairs=len(out) + len(todo),
                        misses=len(todo),
                    ):
                        if n_jobs == 1 or len(todo) == 1:
                            out.update(self._price_batch_serial(todo))
                        else:
                            from repro.analysis.shm import SharedGraphArena

                            chunks = [
                                todo[i::n_jobs]
                                for i in range(n_jobs)
                                if todo[i::n_jobs]
                            ]
                            fn = (
                                _price_node_chunk
                                if self._model == "node"
                                else _price_link_chunk
                            )
                            # Ship the graph once, zero-copy: workers
                            # attach to the shared CSR arena by name
                            # instead of unpickling O(m) bytes per chunk.
                            with SharedGraphArena(self._graph) as arena:
                                tasks = [
                                    (
                                        (arena.handle, chunk,
                                         self._on_monopoly, self._backend),
                                        {},
                                    )
                                    for chunk in chunks
                                ]
                                for priced in run_tasks(
                                    fn, tasks, jobs=n_jobs
                                ):
                                    for key, payment in priced.items():
                                        out[key] = payment
                                        self._pairs[key] = (
                                            self._version,
                                            payment,
                                        )
                except ReproError:
                    raise
                except Exception as exc:
                    _flight.record("error", rid, self._version)
                    _flight.dump_error(exc)
                    raise
            elapsed = time.perf_counter() - t0
            _flight.record("batch", rid, self._version, elapsed)
            self._update_gauges()
            _log.debug(
                "batch priced",
                extra={
                    "pairs": len(out),
                    "misses": len(todo),
                    "version": self._version,
                    "elapsed_s": round(elapsed, 6),
                },
            )
            return out

    def _price_batch_serial(
        self, todo: Sequence[tuple[int, int]]
    ) -> dict[tuple[int, int], UnicastPayment]:
        if self._model == "link":
            priced = _price_link_chunk(
                self._graph, todo, self._on_monopoly, self._backend
            )
            for key, payment in priced.items():
                self._pairs[key] = (self._version, payment)
            return priced
        # Share (and grow) the engine's endpoint-SPT cache.
        shared: dict[int, ShortestPathTree] = {}
        for root, (stamp, spt) in self._spts.items():
            if stamp == self._version:
                shared[root] = spt
        known = set(shared)
        priced = pairwise_vcg_payments(
            self._graph,
            todo,
            on_monopoly=self._on_monopoly,
            backend=self._backend,
            spt_cache=shared,
        )
        for root, spt in shared.items():
            if root in known:
                self.stats.spt_cache_hits += 1
                self._count("spt_cache_hits")
            else:
                self.stats.spt_cache_misses += 1
                self._count("spt_cache_misses")
                self._spts[root] = (self._version, spt)
        for key, payment in priced.items():
            self._pairs[key] = (self._version, payment)
        return priced

    # -- updates -------------------------------------------------------------

    def update_cost(self, node_or_edge, value: float) -> int:
        """Apply a declared-cost change; returns the new version.

        Node model: ``node_or_edge`` is a node id and ``value`` its new
        declared cost (the ``d |^i d_i`` operation). The update itself
        only swaps the snapshot and logs the change; cached entries are
        fast-forwarded through the log lazily at their next lookup (see
        the module docstring). Link model: ``node_or_edge`` is an
        ``(u, v)`` arc (``inf`` drops it) and all caches are
        conservatively invalidated via the version bump.

        A no-op change (same value) leaves version and caches untouched.
        Thread-safe: serializes through the write lock; in-flight
        queries finish against the old snapshot first, then the new
        version is published atomically.
        """
        with self._rw.write_locked():
            self._check_open()
            return self._update_cost_locked(node_or_edge, value)

    def _update_cost_locked(self, node_or_edge, value: float) -> int:
        if self._model == "link":
            u, v = node_or_edge
            if self._graph.arc_weight(u, v) == float(value):
                return self._version
            self._graph = self._graph.with_arc_weight(u, v, value)
            self._bump_update(flush_log=True)
            _flight.record("update", version=self._version)
            self._persist_append(
                _persist_mod.update_record(
                    "link", (u, v), value, self._version
                )
            )
            self._update_gauges()
            return self._version

        node = check_node_index(int(node_or_edge), self._graph.n)
        old = float(self._graph.costs[node])
        value = float(value)
        if value == old:
            return self._version
        self._graph = self._graph.with_declaration(node, value)
        self._bump_update()
        self._log[self._version] = _CostUpdate(node, old, value, self._graph)
        if len(self._log) > _LOG_CAP:
            self._log_floor = min(self._log)
            del self._log[self._log_floor]
        _flight.record("update", version=self._version, value=float(node))
        self._persist_append(
            _persist_mod.update_record("node", node, value, self._version)
        )
        self._update_gauges()
        return self._version

    def _bump_update(self, flush_log: bool = False) -> None:
        self._version += 1
        self.stats.updates += 1
        self._count("updates")
        if flush_log:
            self._log.clear()
            self._log_floor = self._version

    def _witness_of(self, upd: _CostUpdate) -> ShortestPathTree:
        """The update's witness tree (rooted at the updated node), built
        on first use against the snapshot the update produced."""
        if upd.witness is None:
            upd.witness = node_weighted_spt(
                upd.graph, upd.node, backend=spt_backend_for(self._backend)
            )
        return upd.witness

    def _spt_survives(self, spt: ShortestPathTree, upd: _CostUpdate) -> bool:
        k = upd.node
        if k == spt.root or not np.isfinite(spt.dist[k]):
            return True
        if upd.new > upd.old:
            # Increase: safe iff no witnessed path uses k internally.
            return not (spt.parent == k).any()
        # Decrease: safe iff no relaxation through k improves a neighbour.
        nbrs = upd.graph.neighbors(k)
        return bool(np.all(spt.dist[k] + upd.new >= spt.dist[nbrs]))

    def _repair_spt(
        self, spt: ShortestPathTree, upd: _CostUpdate
    ) -> ShortestPathTree:
        """Incrementally rebuild a tree that failed its survival cert.

        Only called with ``k`` non-root and reachable (``_spt_survives``
        handles the trivial cases); ``upd.graph`` carries the costs the
        update produced. Both branches replay the relaxations a fresh
        Dijkstra would perform on the affected region — same strict
        ``<``, same left-to-right float additions along each new tree
        path — and leave every other node's floats untouched, so the
        repaired tree is bit-identical to a from-scratch build (up to
        parent choice on exactly-tied paths, the repo-wide uniqueness
        caveat).
        """
        g = upd.graph
        k = upd.node
        dist = spt.dist.copy()
        parent = spt.parent.copy()
        costs, indptr, indices = g.costs, g.indptr, g.indices
        root = spt.root
        heap = IndexedMinHeap(g.n)
        if upd.new < upd.old:
            # Decrease: only paths through k improved. Seed k's own
            # relaxations (dist[k] is exact on both graphs — no path to
            # k pays c_k) and settle the improved region outward. The
            # root and k itself can never improve (every candidate path
            # runs through k first, then adds non-negative costs).
            step = float(dist[k]) + upd.new
            for w in indices[indptr[k] : indptr[k + 1]]:
                if step < dist[w]:
                    dist[w] = step
                    parent[w] = k
                    heap.push(int(w), step)
            while heap:
                u, du = heap.pop()
                step = du + costs[u]
                for w in indices[indptr[u] : indptr[u + 1]]:
                    if step < dist[w]:
                        dist[w] = step
                        parent[w] = int(u)
                        heap.push(int(w), step)
        else:
            # Increase: only k's strict tree descendants can change —
            # any other node's witnessed path avoids k internally and
            # alternatives through k only got worse. Clear the region,
            # seed each region node from its best settled neighbour
            # (which includes k, now at its worse cost), and run a
            # Dijkstra restricted to the region. Topology is unchanged,
            # so every region node is re-reached.
            in_region = spt.parent == k
            frontier = np.flatnonzero(in_region)
            while frontier.size:
                frontier = np.flatnonzero(
                    np.isin(spt.parent, frontier) & ~in_region
                )
                in_region[frontier] = True
            dist[in_region] = np.inf
            parent[in_region] = -1
            for w in np.flatnonzero(in_region):
                best, best_u = np.inf, -1
                for u in indices[indptr[w] : indptr[w + 1]]:
                    if in_region[u] or not np.isfinite(dist[u]):
                        continue
                    step = dist[u] + (costs[u] if u != root else 0.0)
                    if step < best:
                        best, best_u = step, int(u)
                if best_u >= 0:
                    dist[w] = best
                    parent[w] = best_u
                    heap.push(int(w), float(best))
            while heap:
                u, du = heap.pop()
                in_region[u] = False
                step = du + costs[u]
                for w in indices[indptr[u] : indptr[u + 1]]:
                    if in_region[w] and step < dist[w]:
                        dist[w] = step
                        parent[w] = int(u)
                        heap.push(int(w), step)
        return ShortestPathTree(root, dist, parent)

    def _pair_survives(
        self, res: object, key: tuple[int, int], upd: _CostUpdate
    ) -> bool:
        s, t = key
        k = upd.node
        if k == s or k == t:
            return True  # endpoint costs never enter path costs or payments
        if not isinstance(res, FastPaymentResult):
            return False  # batch entries carry no intermediates; drop
        witness = self._witness_of(upd)
        # Node-model path costs are symmetric, so the witness tree's
        # dist doubles as d_s[k] and d_t[k] for every cached endpoint.
        bound = (
            float(witness.dist[s])
            + min(upd.old, upd.new)
            + float(witness.dist[t])
        )
        witnessed = res.lcp_cost
        if res.avoiding_costs:
            witnessed = max(witnessed, max(res.avoiding_costs.values()))
        if not np.isfinite(witnessed):
            return False
        # Strict clearance with a relative margin. The bound is tight
        # exactly when a witnessed avoiding path runs through ``k`` (it
        # IS the cheapest through-``k`` path) — a common case, not a
        # measure-zero tie — and the two sides sum the same node costs
        # in different orders, so float noise can push ``bound`` a few
        # ULPs above ``witnessed``. Any genuine clearance under
        # continuous costs dwarfs 1e-9; a near-tie must drop the entry
        # (conservative: it just recomputes).
        return bound > witnessed + 1e-9 * max(1.0, abs(witnessed))

    def remove_node(self, node: int) -> int:
        """Drop every edge/arc incident to ``node``; returns the new version.

        Node ids stay stable (the repo-wide convention — payments on the
        shrunken network refer to the same ids). The node itself remains
        as an isolated vertex; pricing to or from it raises
        :class:`~repro.errors.DisconnectedError`. Invalidation is
        conservative: the version bump lazily evicts every cache entry.
        Thread-safe (write lock).
        """
        with self._rw.write_locked():
            self._check_open()
            return self._remove_node_locked(node)

    def _remove_node_locked(self, node: int) -> int:
        node = check_node_index(node, self._graph.n)
        if self._model == "link":
            self._graph = self._graph.with_node_removed(node)
        else:
            kept = [
                (u, v)
                for u, v in self._graph.edge_iter()
                if u != node and v != node
            ]
            self._graph = NodeWeightedGraph(
                self._graph.n, kept, self._graph.costs
            )
        self._bump_update(flush_log=True)
        _flight.record("topology", version=self._version, value=float(node))
        self._persist_append(
            _persist_mod.remove_record(node, self._version)
        )
        self._update_gauges()
        return self._version

    def add_node(self, cost: float = 0.0, neighbors=(), arcs=()) -> int:
        """Grow the snapshot by one node; returns the **new node's id**.

        Node model: the node joins with declared ``cost`` and undirected
        edges to ``neighbors``. Link model: ``arcs`` are ``(u, v, w)``
        triples incident to the new node (id ``n``). Invalidation is
        conservative (lazy, via the version bump). Thread-safe (write
        lock).
        """
        with self._rw.write_locked():
            self._check_open()
            return self._add_node_locked(cost, neighbors, arcs)

    def _add_node_locked(self, cost: float, neighbors, arcs) -> int:
        n = self._graph.n
        neighbors = list(neighbors)
        arcs = list(arcs)
        if self._model == "link":
            self._graph = LinkWeightedDigraph(
                n + 1, list(self._graph.arc_iter()) + arcs
            )
        else:
            edges = list(self._graph.edge_iter())
            edges += [(n, check_node_index(int(v), n)) for v in neighbors]
            costs = np.append(self._graph.costs, float(cost))
            self._graph = NodeWeightedGraph(n + 1, edges, costs)
        self._bump_update(flush_log=True)
        _flight.record("topology", version=self._version, value=float(n))
        self._persist_append(
            _persist_mod.add_record(
                self._model, cost, neighbors, arcs, self._version
            )
        )
        self._update_gauges()
        return n

    # -- durability ----------------------------------------------------------

    def _persist_append(self, record: dict) -> None:
        """Log one applied mutation to the WAL; auto-checkpoint when due."""
        if self._persist is None:
            return
        self._persist.append(record)
        self.stats.wal_records += 1
        self._count("wal_records")
        if (
            self._checkpoint_every is not None
            and self._persist.records_since_checkpoint
            >= self._checkpoint_every
        ):
            self.checkpoint()

    def _checkpoint_state(
        self, include_caches: bool = True
    ) -> _persist_mod.CheckpointState:
        """Snapshot everything a checkpoint preserves (current-version
        cache entries only — stale ones would be rebuilt anyway)."""
        spts: dict[int, ShortestPathTree] = {}
        pairs: dict[tuple[int, int], object] = {}
        if include_caches:
            for root, (stamp, spt) in self._spts.items():
                if stamp == self._version:
                    spts[root] = spt
            for key, (stamp, res) in self._pairs.items():
                if stamp == self._version:
                    pairs[key] = res
        return _persist_mod.CheckpointState(
            graph=self._graph,
            graph_version=self._version,
            model=self._model,
            backend=self._backend,
            on_monopoly=self._on_monopoly,
            spts=spts,
            pairs=pairs,
        )

    def checkpoint(self, include_caches: bool = True) -> Path:
        """Persist full engine state now; returns the checkpoint path.

        Writes atomically (temp file + rename), rotates the WAL so the
        new checkpoint starts an empty tail, and prunes generations
        past ``retain``. ``include_caches=False`` writes a graph-only
        checkpoint (smaller file, colder restart). Requires the engine
        to have been built with ``checkpoint_dir=``. Thread-safe: takes
        the write lock (reentrantly when an automatic checkpoint fires
        inside a mutation), so the persisted state is a quiescent
        snapshot.
        """
        if self._persist is None:
            raise _persist_mod.PersistError(
                "engine has no checkpoint_dir; pass one at construction "
                "or recover with PricingEngine.open()"
            )
        with self._rw.write_locked():
            self._check_open()
            path = self._persist.write_checkpoint(
                self._checkpoint_state(include_caches)
            )
            self.stats.checkpoint_writes += 1
            self._count("checkpoint_writes")
            _flight.record(
                "checkpoint",
                version=self._version,
                value=float(self._persist.seq),
            )
            self._update_gauges()
            return path

    @classmethod
    def open(
        cls,
        checkpoint_dir: str | Path,
        backend: str | None = None,
        on_monopoly: str | None = None,
        fsync: str = "interval",
        fsync_every: int = 64,
        checkpoint_every: int | None = None,
        retain: int = 2,
        resume: bool = True,
    ) -> "PricingEngine":
        """Recover an engine from a checkpoint directory.

        Loads the newest checkpoint that validates (falling back to
        older generations on corruption), replays the WAL tail above it
        through the normal mutation methods — so the recovered graph,
        version and every subsequent price are **bit-identical** to a
        process that never crashed — and, with ``resume=True``
        (default), re-attaches persistence and writes a fresh recovery
        checkpoint so the recovery itself is durable and any torn WAL
        tail is retired. ``resume=False`` gives a read-only view that
        leaves the directory untouched (inspection, tests).

        ``backend``/``on_monopoly`` default to the values the
        checkpoint recorded. The outcome (chosen checkpoint, records
        replayed, corruption tolerated) is ``engine.last_recovery``, a
        :class:`~repro.engine.persist.RecoveryReport`.
        """
        state, records, report = _persist_mod.load_state(checkpoint_dir)
        eng = cls(
            state.graph,
            backend=backend if backend is not None else state.backend,
            on_monopoly=(
                on_monopoly if on_monopoly is not None else state.on_monopoly
            ),
        )
        eng._version = state.graph_version
        eng._log_floor = state.graph_version
        for root, spt in state.spts.items():
            eng._spts[root] = (state.graph_version, spt)
        for key, res in state.pairs.items():
            eng._pairs[key] = (state.graph_version, res)
        applied = 0
        for rec in records:
            recorded = int(rec.get("version", -1))
            if recorded <= eng._version:
                continue  # duplicated tail after a crash mid-rotation
            _persist_mod.apply_record(eng, rec)
            applied += 1
            if eng._version != recorded:
                report.divergence = (
                    f"record for version {recorded} left the engine at "
                    f"{eng._version}; replay stopped at the consistent "
                    "prefix"
                )
                break
        report.wal_records = applied
        eng.stats.recoveries += 1
        eng._count("recoveries")
        eng.last_recovery = report
        _flight.record(
            "recover",
            version=eng._version,
            value=float(report.wal_records),
        )
        _log.info(
            "engine recovered",
            extra={
                "dir": str(checkpoint_dir),
                "version": eng._version,
                "wal_records": report.wal_records,
                "clean": report.clean,
            },
        )
        if resume:
            eng._checkpoint_every = (
                int(checkpoint_every) if checkpoint_every else None
            )
            eng._persist = _persist_mod.EnginePersistence(
                checkpoint_dir,
                fsync=fsync,
                fsync_every=fsync_every,
                retain=retain,
            )
            eng.checkpoint()
        eng._update_gauges()
        return eng

    def close(self) -> None:
        """Retire the engine: flush and close the WAL, then refuse
        further queries and mutations with
        :class:`~repro.errors.EngineClosedError`.

        Idempotent. Takes the write lock, so in-flight queries finish
        first and nothing is ever half-served. Buffered WAL records are
        flushed on every append, so a clean process exit loses nothing
        even without ``close()`` — this exists to fsync the tail,
        release the file handle, and mark the handoff point
        deterministically (the context-manager form calls it).
        Introspection (``version``, ``graph``, ``stats``) stays
        readable on a closed engine.
        """
        with self._rw.write_locked():
            if self._closed:
                return
            self._closed = True
            if self._persist is not None:
                self._persist.close()

    def __enter__(self) -> "PricingEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- maintenance ---------------------------------------------------------

    def cache_sizes(self) -> dict[str, int]:
        """Current entry counts (stale entries included until evicted)."""
        return {"spts": len(self._spts), "pairs": len(self._pairs)}

    def purge_stale(self) -> int:
        """Drop every version-mismatched entry now; returns the count.

        Lazy eviction only reclaims a key when it is queried again; call
        this after heavy churn to bound memory. Thread-safe (write
        lock).
        """
        with self._rw.write_locked():
            self._check_open()
            dropped = 0
            for root, (stamp, _) in list(self._spts.items()):
                if stamp != self._version:
                    del self._spts[root]
                    dropped += 1
            for key, (stamp, _) in list(self._pairs.items()):
                if stamp != self._version:
                    del self._pairs[key]
                    dropped += 1
            if dropped:
                self.stats.stale_evictions += dropped
                self._count("stale_evictions", dropped)
                _flight.record(
                    "evict", version=self._version, value=float(dropped)
                )
            self._update_gauges()
            return dropped
