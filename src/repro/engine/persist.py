"""Durability for the pricing engine: write-ahead log + checkpoints.

Why the engine needs a disk
---------------------------

:class:`~repro.engine.engine.PricingEngine` is the long-lived shape of
the paper's mechanism: declared costs drift, nodes churn, and the
versioned snapshot plus its SPT/pair caches accumulate exactly the
state that makes steady-state serving cheap. All of it lives in one
process — a crash (OOM kill, node reboot, deploy) loses the graph the
selfish nodes spent a session declaring, and the replacement process
must cold-rebuild from whatever external record exists. The flight
recorder (:mod:`repro.obs.flight`) can show *what* was lost; this
module makes sure nothing is.

The model is the classic checkpoint + write-ahead-log pair every
durable serving stack converges on:

* **Write-ahead log (WAL).** Every applied mutation —
  ``update_cost`` / ``add_node`` / ``remove_node`` — is appended to
  ``wal-<seq>.jsonl`` as one JSON-lines record *after* it commits
  in memory. Records reuse the PR-4 trace-record vocabulary
  (``{"kind": "update", "node": ..., "value": ...}``), extended with
  the resulting engine ``version`` and a CRC-32 checksum over the
  record's canonical JSON. Queries are never logged — they do not
  change state.
* **Checkpoints.** ``checkpoint()`` writes the full engine state —
  graph snapshot (via :func:`repro.io.to_dict`), ``graph_version``,
  and optionally every cache entry stamped at the current version —
  to ``checkpoint-<seq>.json`` under an atomic
  write-to-temp-then-:func:`os.replace` protocol, then rotates the WAL
  so the new checkpoint starts an empty tail. The engine can do this
  on demand and automatically every ``checkpoint_every`` mutations.

Recovery (:func:`load_state`, surfaced as
``PricingEngine.open(checkpoint_dir)``) loads the newest checkpoint
that validates, then replays the WAL chain above it. Because replay
drives the exact same ``update_cost``/``add_node``/``remove_node``
code paths the original process ran, the recovered graph — and
therefore every price computed afterwards — is **bit-identical** to a
process that never crashed (``tests/test_persist.py`` kills a live
engine with SIGKILL and asserts exactly this).

Corruption handling
-------------------

Crashes land mid-write, so both formats are checksummed and recovery
is tolerant by construction:

* a **torn trailing WAL record** (partial line, bad JSON, CRC
  mismatch) ends replay at the last valid record — the durable prefix
  — and is reported, not fatal;
* a **corrupt checkpoint** (bad CRC, malformed payload) is skipped and
  recovery falls back to the next older checkpoint, replaying the
  longer WAL chain from there (``retain`` controls how many
  generations are kept);
* a record whose recorded ``version`` does not match the replayed
  engine's version marks the chain divergent: replay stops at the
  consistent prefix and the report says so.

The fsync policy bounds what a crash can lose: ``"always"`` fsyncs
every record (a kill -9 loses nothing that was applied), ``"interval"``
fsyncs every ``fsync_every`` records (default; bounded loss, negligible
overhead), ``"never"`` leaves flushing to the OS. Checkpoint files are
always fsynced before the atomic rename.

On-disk schema versioning rides on :mod:`repro.io`: envelopes carry
``{"format": ..., "version": ...}`` tags and loading runs them through
:func:`repro.io.apply_migrations`, so a future layout change ships a
registered migration instead of breaking old directories.

Quickstart::

    >>> import tempfile
    >>> from repro.engine import PricingEngine
    >>> from repro.graph.generators import random_biconnected_graph
    >>> tmp = tempfile.TemporaryDirectory()
    >>> g = random_biconnected_graph(12, seed=3)
    >>> eng = PricingEngine(g, on_monopoly="inf", checkpoint_dir=tmp.name)
    >>> p = eng.price(5, 0)
    >>> eng.update_cost(3, 2.5)      # appended to the WAL, fsync policy applies
    1
    >>> twin = PricingEngine.open(tmp.name)   # what a restart would do
    >>> twin.version == eng.version
    True
    >>> twin.price(5, 0) == eng.price(5, 0)   # bit-identical answers
    True
    >>> tmp.cleanup()
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Any

import numpy as np

from repro import io as repro_io
from repro.errors import PersistError, RecoveryError
from repro.graph.link_graph import LinkWeightedDigraph
from repro.graph.node_graph import NodeWeightedGraph
from repro.graph.spt import ShortestPathTree
from repro.io import SerializationError, _dec_float, _enc_float
from repro.obs import logging as obs_logging

__all__ = [
    "PersistError",
    "RecoveryError",
    "FSYNC_POLICIES",
    "WAL_FORMAT",
    "WAL_SCHEMA_VERSION",
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_SCHEMA_VERSION",
    "WalWriter",
    "WalScan",
    "read_wal",
    "CheckpointState",
    "RecoveryReport",
    "EnginePersistence",
    "write_checkpoint",
    "read_checkpoint",
    "load_state",
    "scan",
]

_log = obs_logging.get_logger("engine.persist")

#: When (not whether) WAL appends reach the platter. ``"always"`` pays
#: one fsync per mutation, ``"interval"`` one per ``fsync_every``
#: mutations, ``"never"`` leaves it to the OS page cache.
FSYNC_POLICIES = ("always", "interval", "never")

WAL_FORMAT = "engine-wal"
WAL_SCHEMA_VERSION = 1
CHECKPOINT_FORMAT = "engine-checkpoint"
CHECKPOINT_SCHEMA_VERSION = 1

_CKPT_GLOB = "checkpoint-*.json"
_WAL_GLOB = "wal-*.jsonl"


# PersistError / RecoveryError live in the shared taxonomy
# (repro.errors) so the service layer can map them to HTTP statuses;
# re-exported here because this module is where they are raised.

def _resolve_fsync(policy: str) -> str:
    if policy not in FSYNC_POLICIES:
        raise PersistError(
            f"fsync policy must be one of {FSYNC_POLICIES}, got {policy!r}"
        )
    return policy


def _canonical(doc: dict) -> str:
    """The byte-stable JSON form both CRC sides agree on."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def _crc_of(doc: dict) -> int:
    return zlib.crc32(_canonical(doc).encode("utf-8")) & 0xFFFFFFFF


def _with_crc(doc: dict) -> dict:
    out = dict(doc)
    out["crc"] = _crc_of(doc)
    return out


def _check_crc(doc: dict) -> dict:
    """Return the record without its CRC, raising on mismatch."""
    body = {k: v for k, v in doc.items() if k != "crc"}
    if doc.get("crc") != _crc_of(body):
        raise SerializationError("checksum mismatch")
    return body


# ---------------------------------------------------------------------------
# write-ahead log
# ---------------------------------------------------------------------------


class WalWriter:
    """Appender for one ``wal-<seq>.jsonl`` file.

    Each :meth:`append` stamps the record with a CRC-32 over its
    canonical JSON, writes it as one line, flushes the Python buffer,
    and fsyncs per the configured policy. The file is opened in append
    mode so a writer resuming after a clean close continues the same
    log.
    """

    def __init__(
        self, path: str | Path, fsync: str = "interval", fsync_every: int = 64
    ) -> None:
        self.path = Path(path)
        self.policy = _resolve_fsync(fsync)
        self.fsync_every = max(1, int(fsync_every))
        self._fh: IO[str] | None = self.path.open("a", encoding="utf-8")
        self.records = 0
        self._since_sync = 0

    @property
    def bytes_written(self) -> int:
        """Current on-disk size of the log file."""
        try:
            return self.path.stat().st_size
        except OSError:
            return 0

    def append(self, record: dict) -> None:
        """Write one checksummed record; honours the fsync policy."""
        if self._fh is None:
            raise PersistError(f"WAL writer for {self.path} is closed")
        line = _canonical(_with_crc(record))
        self._fh.write(line + "\n")
        self._fh.flush()
        self.records += 1
        self._since_sync += 1
        if self.policy == "always" or (
            self.policy == "interval" and self._since_sync >= self.fsync_every
        ):
            self.sync()

    def sync(self) -> None:
        """Force the OS to persist everything appended so far."""
        if self._fh is not None:
            os.fsync(self._fh.fileno())
            self._since_sync = 0

    def close(self) -> None:
        """Flush, fsync and close (idempotent)."""
        if self._fh is not None:
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._fh.close()
            self._fh = None


@dataclass
class WalScan:
    """Outcome of reading one WAL file: the valid record prefix plus
    what (if anything) ended it early."""

    records: list[dict]
    torn: bool = False  #: the file ended in an unparseable/bad-CRC line
    dropped_lines: int = 0  #: lines after the first invalid one (incl. it)
    error: str | None = None  #: why the first invalid line was rejected


def read_wal(path: str | Path) -> WalScan:
    """Read a WAL file, stopping at the first torn or corrupt record.

    A crash can only tear the *tail* (records are appended and synced
    in order), so everything before the first invalid line is the
    durable prefix; the scan reports — rather than raises on — whatever
    ended it.
    """
    path = Path(path)
    records: list[dict] = []
    try:
        lines = path.read_text(encoding="utf-8", errors="replace").splitlines()
    except OSError:
        return WalScan(records=[])
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            doc = json.loads(line)
            body = _check_crc(doc)
        except (json.JSONDecodeError, ValueError, SerializationError) as exc:
            return WalScan(
                records=records,
                torn=True,
                dropped_lines=len(lines) - i,
                error=f"line {i + 1}: {exc}",
            )
        records.append(body)
    return WalScan(records=records)


def _wal_header(seq: int, meta: dict) -> dict:
    return {
        "kind": "wal-header",
        "format": WAL_FORMAT,
        "version": WAL_SCHEMA_VERSION,
        "checkpoint_seq": int(seq),
        **meta,
    }


# ---------------------------------------------------------------------------
# checkpoints
# ---------------------------------------------------------------------------


@dataclass
class CheckpointState:
    """Everything a checkpoint preserves of a live engine."""

    graph: NodeWeightedGraph | LinkWeightedDigraph
    graph_version: int
    model: str
    backend: str
    on_monopoly: str
    #: Warm cache entries stamped at ``graph_version`` (optional).
    spts: dict[int, ShortestPathTree] = field(default_factory=dict)
    pairs: dict[tuple[int, int], Any] = field(default_factory=dict)


def _encode_state(state: CheckpointState) -> dict:
    return {
        "graph": repro_io.to_dict(state.graph),
        "graph_version": int(state.graph_version),
        "model": state.model,
        "backend": state.backend,
        "on_monopoly": state.on_monopoly,
        "spts": {
            str(root): {
                "root": int(spt.root),
                "dist": [_enc_float(x) for x in spt.dist],
                "parent": [int(x) for x in spt.parent],
            }
            for root, spt in state.spts.items()
        },
        "pairs": [
            {
                "source": int(s),
                "target": int(t),
                "result": repro_io.to_dict(res),
            }
            for (s, t), res in state.pairs.items()
        ],
    }


def _decode_state(data: dict) -> CheckpointState:
    spts = {}
    for root_s, tree in data.get("spts", {}).items():
        dist = np.asarray(
            [_dec_float(x) for x in tree["dist"]], dtype=np.float64
        )
        parent = np.asarray(tree["parent"], dtype=np.int64)
        spts[int(root_s)] = ShortestPathTree(int(tree["root"]), dist, parent)
    pairs = {}
    for entry in data.get("pairs", []):
        key = (int(entry["source"]), int(entry["target"]))
        pairs[key] = repro_io.from_dict(entry["result"])
    return CheckpointState(
        graph=repro_io.from_dict(data["graph"]),
        graph_version=int(data["graph_version"]),
        model=str(data["model"]),
        backend=str(data["backend"]),
        on_monopoly=str(data["on_monopoly"]),
        spts=spts,
        pairs=pairs,
    )


def write_checkpoint(path: str | Path, state: CheckpointState) -> Path:
    """Atomically write one checkpoint file.

    The document goes to ``<path>.tmp`` first, is fsynced, then moved
    into place with :func:`os.replace` — a crash leaves either the old
    file or the new one, never a half-written checkpoint. The payload
    carries its own CRC-32 so a corrupt file is *detected* at load time
    instead of silently decoded.
    """
    path = Path(path)
    data = _encode_state(state)
    doc = {
        "format": CHECKPOINT_FORMAT,
        "version": CHECKPOINT_SCHEMA_VERSION,
        "crc": _crc_of(data),
        "data": data,
    }
    tmp = path.with_suffix(path.suffix + ".tmp")
    with tmp.open("w", encoding="utf-8") as fh:
        json.dump(doc, fh)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    _fsync_dir(path.parent)
    return path


def read_checkpoint(path: str | Path) -> CheckpointState:
    """Load and validate one checkpoint file.

    Raises :class:`~repro.io.SerializationError` on bad JSON, an
    unknown format tag, a CRC mismatch, or a malformed payload — the
    conditions :func:`load_state` treats as "fall back to an older
    checkpoint". Envelope versions older than the current schema run
    through :func:`repro.io.apply_migrations` first.
    """
    path = Path(path)
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise SerializationError(f"unreadable checkpoint {path}: {exc}")
    if not isinstance(doc, dict) or doc.get("format") != CHECKPOINT_FORMAT:
        raise SerializationError(f"{path} is not an engine checkpoint")
    data = doc.get("data")
    if doc.get("crc") != _crc_of(data):
        raise SerializationError(f"checkpoint {path} failed its checksum")
    data = repro_io.apply_migrations(
        CHECKPOINT_FORMAT,
        int(doc.get("version", 0)),
        CHECKPOINT_SCHEMA_VERSION,
        data,
    )
    try:
        return _decode_state(data)
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed checkpoint {path}: {exc}")


def _fsync_dir(path: Path) -> None:
    """Persist a directory entry (rename durability); best-effort on
    platforms where directories cannot be opened."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - non-POSIX
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _ckpt_path(root: Path, seq: int) -> Path:
    return root / f"checkpoint-{seq:08d}.json"


def _wal_path(root: Path, seq: int) -> Path:
    return root / f"wal-{seq:08d}.jsonl"


def _seq_of(path: Path) -> int:
    return int(path.stem.split("-")[-1])


def list_checkpoints(root: str | Path) -> list[Path]:
    """Checkpoint files in ``root``, oldest first."""
    return sorted(Path(root).glob(_CKPT_GLOB), key=_seq_of)


def list_wals(root: str | Path) -> list[Path]:
    """WAL files in ``root``, oldest first."""
    return sorted(Path(root).glob(_WAL_GLOB), key=_seq_of)


# ---------------------------------------------------------------------------
# the directory manager the engine drives
# ---------------------------------------------------------------------------


class EnginePersistence:
    """Owns one checkpoint directory on behalf of a live engine.

    Maintains the invariant recovery depends on: ``wal-<seq>.jsonl``
    contains exactly the mutations applied *after*
    ``checkpoint-<seq>.json`` was written, so replaying the WAL chain
    upward from any retained checkpoint reproduces the latest state.
    ``retain`` generations of (checkpoint, WAL) are kept for corruption
    fallback; older ones are pruned after each successful checkpoint.
    """

    def __init__(
        self,
        root: str | Path,
        fsync: str = "interval",
        fsync_every: int = 64,
        retain: int = 2,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.policy = _resolve_fsync(fsync)
        self.fsync_every = int(fsync_every)
        self.retain = max(1, int(retain))
        self._writer: WalWriter | None = None
        self._seq = 0
        self.records_since_checkpoint = 0
        self.total_records = 0

    # -- introspection ------------------------------------------------------

    @property
    def seq(self) -> int:
        """Sequence number of the checkpoint the open WAL extends."""
        return self._seq

    @property
    def wal_bytes(self) -> int:
        """On-disk size of the open WAL file."""
        return self._writer.bytes_written if self._writer else 0

    def has_state(self) -> bool:
        """Whether the directory already holds any checkpoint."""
        return bool(list_checkpoints(self.root))

    # -- writer side --------------------------------------------------------

    def start(self, state: CheckpointState, meta: dict | None = None) -> Path:
        """Write the first checkpoint of a generation and open its WAL."""
        return self.write_checkpoint(state, meta=meta)

    def append(self, record: dict) -> None:
        """Append one mutation record to the open WAL."""
        if self._writer is None:
            raise PersistError(
                "no open WAL — write a checkpoint first (engine bug)"
            )
        self._writer.append(record)
        self.records_since_checkpoint += 1
        self.total_records += 1

    def write_checkpoint(
        self, state: CheckpointState, meta: dict | None = None
    ) -> Path:
        """Write a checkpoint, rotate the WAL, prune old generations."""
        existing = list_checkpoints(self.root)
        seq = (_seq_of(existing[-1]) + 1) if existing else 1
        path = write_checkpoint(_ckpt_path(self.root, seq), state)
        if self._writer is not None:
            self._writer.close()
        writer = WalWriter(
            _wal_path(self.root, seq),
            fsync=self.policy,
            fsync_every=self.fsync_every,
        )
        writer.append(
            _wal_header(
                seq,
                {"graph_version": int(state.graph_version), **(meta or {})},
            )
        )
        self._writer = writer
        self._seq = seq
        self.records_since_checkpoint = 0
        self._prune()
        _log.debug(
            "checkpoint written",
            extra={"path": str(path), "seq": seq,
                   "graph_version": state.graph_version},
        )
        return path

    def _prune(self) -> None:
        ckpts = list_checkpoints(self.root)
        keep = {_seq_of(p) for p in ckpts[-self.retain :]}
        floor = min(keep) if keep else 0
        for p in ckpts:
            if _seq_of(p) not in keep:
                p.unlink(missing_ok=True)
        for p in list_wals(self.root):
            if _seq_of(p) < floor:
                p.unlink(missing_ok=True)

    def sync(self) -> None:
        """fsync the open WAL regardless of policy."""
        if self._writer is not None:
            self._writer.sync()

    def close(self) -> None:
        """Flush and close the open WAL (idempotent)."""
        if self._writer is not None:
            self._writer.close()
            self._writer = None


# ---------------------------------------------------------------------------
# recovery
# ---------------------------------------------------------------------------


@dataclass
class RecoveryReport:
    """How a recovery went: where it started, what it replayed, and
    every fault it tolerated along the way."""

    checkpoint_seq: int
    checkpoint_version: int
    wal_records: int = 0  #: mutation records replayed (headers excluded)
    wal_files: int = 0
    torn_tail: bool = False
    dropped_records: int = 0  #: lines discarded after the first bad one
    skipped_checkpoints: tuple[str, ...] = ()  #: corrupt ones, with reasons
    divergence: str | None = None  #: version-mismatch note, if replay stopped

    @property
    def clean(self) -> bool:
        """True when nothing had to be tolerated."""
        return (
            not self.torn_tail
            and not self.skipped_checkpoints
            and self.divergence is None
        )

    def describe(self) -> str:
        """One-paragraph human-readable summary."""
        lines = [
            f"recovered from checkpoint seq {self.checkpoint_seq} "
            f"(graph version {self.checkpoint_version}), replayed "
            f"{self.wal_records} WAL records from {self.wal_files} file(s)"
        ]
        for reason in self.skipped_checkpoints:
            lines.append(f"skipped corrupt checkpoint: {reason}")
        if self.torn_tail:
            lines.append(
                f"tolerated a torn WAL tail "
                f"({self.dropped_records} line(s) discarded)"
            )
        if self.divergence:
            lines.append(f"replay stopped early: {self.divergence}")
        if self.clean:
            lines.append("no corruption encountered")
        return "\n".join(lines)


def load_state(
    root: str | Path,
) -> tuple[CheckpointState, list[dict], RecoveryReport]:
    """Pure read-side recovery: pick a checkpoint, collect its WAL tail.

    Tries checkpoints newest-first; the first one that validates wins
    and every WAL file at-or-above its sequence number contributes its
    valid record prefix, in order. Returns the decoded state, the
    mutation records to replay (headers stripped), and a
    :class:`RecoveryReport`. Raises :class:`PersistError` when no
    checkpoint validates at all.
    """
    root = Path(root)
    ckpts = list_checkpoints(root)
    if not ckpts:
        raise RecoveryError(f"no checkpoints in {root}")
    skipped: list[str] = []
    for path in reversed(ckpts):
        try:
            state = read_checkpoint(path)
        except SerializationError as exc:
            skipped.append(str(exc))
            continue
        seq = _seq_of(path)
        records: list[dict] = []
        torn = False
        dropped = 0
        files = 0
        for wal in list_wals(root):
            if _seq_of(wal) < seq:
                continue
            files += 1
            scan = read_wal(wal)
            records.extend(
                r for r in scan.records if r.get("kind") != "wal-header"
            )
            if scan.torn:
                torn = True
                dropped += scan.dropped_lines
                break  # later files assume this one applied fully
        report = RecoveryReport(
            checkpoint_seq=seq,
            checkpoint_version=state.graph_version,
            wal_records=len(records),
            wal_files=files,
            torn_tail=torn,
            dropped_records=dropped,
            skipped_checkpoints=tuple(skipped),
        )
        return state, records, report
    raise RecoveryError(
        f"no valid checkpoint in {root}: " + "; ".join(skipped)
    )


@dataclass
class DirectoryScan:
    """What ``repro-unicast recover`` shows: per-file inventory."""

    root: str
    checkpoints: list[dict]
    wals: list[dict]

    def describe(self) -> str:
        lines = [f"checkpoint directory {self.root}:"]
        if not self.checkpoints:
            lines.append("  (no checkpoints)")
        for c in self.checkpoints:
            status = "ok" if c["valid"] else f"CORRUPT ({c['error']})"
            lines.append(
                f"  {c['file']}: graph version {c.get('graph_version', '?')}, "
                f"{c['bytes']} bytes — {status}"
            )
        for w in self.wals:
            tail = (
                f", torn tail ({w['dropped_lines']} line(s) dropped)"
                if w["torn"]
                else ""
            )
            lines.append(
                f"  {w['file']}: {w['records']} mutation record(s), "
                f"{w['bytes']} bytes{tail}"
            )
        return "\n".join(lines)


def scan(root: str | Path) -> DirectoryScan:
    """Read-only inventory of a checkpoint directory (never raises on
    corruption — that is the point of inspecting it)."""
    root = Path(root)
    checkpoints = []
    for path in list_checkpoints(root):
        entry = {
            "file": path.name,
            "bytes": path.stat().st_size,
            "valid": True,
            "error": None,
        }
        try:
            state = read_checkpoint(path)
            entry["graph_version"] = state.graph_version
            entry["model"] = state.model
        except SerializationError as exc:
            entry["valid"] = False
            entry["error"] = str(exc)
        checkpoints.append(entry)
    wals = []
    for path in list_wals(root):
        s = read_wal(path)
        wals.append(
            {
                "file": path.name,
                "bytes": path.stat().st_size,
                "records": sum(
                    1 for r in s.records if r.get("kind") != "wal-header"
                ),
                "torn": s.torn,
                "dropped_lines": s.dropped_lines,
            }
        )
    return DirectoryScan(root=str(root), checkpoints=checkpoints, wals=wals)


# ---------------------------------------------------------------------------
# WAL record construction/decoding (the engine's mutation vocabulary)
# ---------------------------------------------------------------------------


def update_record(model: str, node_or_edge, value: float, version: int) -> dict:
    """WAL record for ``update_cost`` (either model)."""
    if model == "link":
        u, v = node_or_edge
        return {
            "kind": "update",
            "u": int(u),
            "v": int(v),
            "value": _enc_float(float(value)),
            "version": int(version),
        }
    return {
        "kind": "update",
        "node": int(node_or_edge),
        "value": _enc_float(float(value)),
        "version": int(version),
    }


def remove_record(node: int, version: int) -> dict:
    """WAL record for ``remove_node``."""
    return {"kind": "remove_node", "node": int(node), "version": int(version)}


def add_record(
    model: str, cost: float, neighbors, arcs, version: int
) -> dict:
    """WAL record for ``add_node`` (either model)."""
    if model == "link":
        return {
            "kind": "add_node",
            "arcs": [
                [int(u), int(v), _enc_float(float(w))] for u, v, w in arcs
            ],
            "version": int(version),
        }
    return {
        "kind": "add_node",
        "cost": _enc_float(float(cost)),
        "neighbors": [int(v) for v in neighbors],
        "version": int(version),
    }


def apply_record(engine, record: dict) -> None:
    """Replay one WAL record through the engine's own mutation methods.

    Using the very same code paths the original process ran is what
    makes recovery bit-identical — there is no second implementation of
    "apply an update" to drift.
    """
    kind = record.get("kind")
    if kind == "update":
        if "node" in record:
            engine.update_cost(
                int(record["node"]), _dec_float(record["value"])
            )
        else:
            engine.update_cost(
                (int(record["u"]), int(record["v"])),
                _dec_float(record["value"]),
            )
    elif kind == "remove_node":
        engine.remove_node(int(record["node"]))
    elif kind == "add_node":
        if "arcs" in record:
            engine.add_node(
                arcs=[
                    (int(u), int(v), _dec_float(w))
                    for u, v, w in record["arcs"]
                ]
            )
        else:
            engine.add_node(
                cost=_dec_float(record["cost"]),
                neighbors=[int(v) for v in record["neighbors"]],
            )
    else:
        raise SerializationError(f"unknown WAL record kind {kind!r}")
