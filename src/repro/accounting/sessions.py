"""Sessions and per-packet billing (Sections II.C and III.H).

The mechanism prices a *unit* of relaying; a connection-oriented session
carrying ``s`` packets multiplies every payment by ``s`` ("the actual
payment of v_i to a node v_k will be s * p_i^k"). :func:`bill_session`
turns a priced route into the concrete ledger entries for one session.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

import numpy as np

from repro.core.mechanism import UnicastPayment
from repro.utils.rng import as_rng

__all__ = ["Session", "SessionBilling", "bill_session", "uniform_workload", "hotspot_workload"]


@dataclass(frozen=True)
class Session:
    """One connection-oriented transfer from ``source`` toward the AP."""

    source: int
    packets: int

    def __post_init__(self) -> None:
        if self.packets < 1:
            raise ValueError(f"a session carries at least 1 packet, got {self.packets}")


@dataclass(frozen=True)
class SessionBilling:
    """The money movement of one session: charge + per-relay credits."""

    session: Session
    route: tuple[int, ...]
    charge: float  # debited from the source
    credits: Mapping[int, float]  # credited per relay

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "credits", {int(k): float(v) for k, v in dict(self.credits).items()}
        )

    @property
    def total_credit(self) -> float:
        """Sum of all relay credits of this billing."""
        return float(sum(self.credits.values()))

    def is_balanced(self, tol: float = 1e-9) -> bool:
        """The AP neither mints nor destroys money on a session."""
        return abs(self.charge - self.total_credit) <= tol


def bill_session(payment: UnicastPayment, session: Session) -> SessionBilling:
    """Scale a unit-payment result by the session's packet count.

    The source is charged ``s * p_i`` and each relay credited
    ``s * p_i^k``; the AP's books balance by construction.
    """
    if session.source != payment.source:
        raise ValueError(
            f"session source {session.source} does not match payment "
            f"source {payment.source}"
        )
    if any(not np.isfinite(v) for v in payment.payments.values()):
        raise ValueError("cannot bill a monopolized route (infinite payment)")
    s = session.packets
    credits = {k: s * v for k, v in payment.payments.items()}
    return SessionBilling(
        session=session,
        route=payment.path,
        charge=s * payment.total_payment,
        credits=credits,
    )


def uniform_workload(
    n: int,
    sessions: int,
    root: int = 0,
    packet_range: tuple[int, int] = (1, 20),
    seed=None,
) -> Iterator[Session]:
    """Random sessions: uniform sources (excluding the AP), uniform sizes.

    The simple workload used by the accounting examples and benches; the
    paper's traffic model is per-session unicast toward the AP.
    """
    if n < 2:
        raise ValueError(f"need at least 2 nodes, got {n}")
    lo, hi = packet_range
    if not 1 <= lo <= hi:
        raise ValueError(f"invalid packet range {packet_range}")
    rng = as_rng(seed)
    for _ in range(sessions):
        source = int(rng.integers(0, n - 1))
        if source >= root:
            source += 1  # skip the AP
        yield Session(source=source, packets=int(rng.integers(lo, hi + 1)))


def hotspot_workload(
    n: int,
    sessions: int,
    root: int = 0,
    hotspot_fraction: float = 0.2,
    hotspot_weight: float = 0.8,
    packet_range: tuple[int, int] = (1, 20),
    seed=None,
) -> Iterator[Session]:
    """Skewed sessions: a few heavy users generate most of the traffic.

    A fraction ``hotspot_fraction`` of the nodes (chosen at random)
    originates a ``hotspot_weight`` share of the sessions — the realistic
    regime for the campus story, and the one where the economy questions
    (who subsidizes whom, which relays burn out) become sharp. Reduces to
    :func:`uniform_workload` as ``hotspot_weight -> hotspot_fraction``.
    """
    if n < 2:
        raise ValueError(f"need at least 2 nodes, got {n}")
    if not 0 < hotspot_fraction < 1:
        raise ValueError(f"hotspot_fraction must be in (0, 1), got {hotspot_fraction}")
    if not 0 <= hotspot_weight <= 1:
        raise ValueError(f"hotspot_weight must be in [0, 1], got {hotspot_weight}")
    lo, hi = packet_range
    if not 1 <= lo <= hi:
        raise ValueError(f"invalid packet range {packet_range}")
    rng = as_rng(seed)
    population = [i for i in range(n) if i != root]
    k = max(1, int(round(hotspot_fraction * len(population))))
    hot_idx = rng.choice(len(population), size=k, replace=False)
    hot = [population[int(i)] for i in hot_idx]
    cold = [v for v in population if v not in set(hot)] or hot
    for _ in range(sessions):
        pool = hot if rng.random() < hotspot_weight else cold
        source = pool[int(rng.integers(len(pool)))]
        yield Session(source=source, packets=int(rng.integers(lo, hi + 1)))
