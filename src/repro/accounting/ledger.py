"""The access point's ledger (Section III.H, "Where to pay").

"All payment transactions are conducted at the access point v_0. Each
node v_i has a secure account at node v_0." The ledger enforces the two
safeguards the paper describes against the two attacks it lists:

* **Repudiation** ("a node may refuse to pay by claiming that he did not
  initiate some communication"): a settlement requires the *initiator's
  signature* over the session. Unsigned or mis-signed submissions raise
  :class:`RepudiationError`.

* **Free riding** ("a relay node may attempt to piggyback data ... with
  the goal of not having to pay"): relays are credited only when the
  settlement carries the *destination's signed acknowledgment*; without
  it nothing is credited and the submission raises
  :class:`UnacknowledgedError` — piggybacked bytes buy nothing.

Signatures are modelled as substrate-issued capability tokens: only the
ledger can mint a token for a principal, and tokens cannot be forged by
constructing them (they are opaque objects compared by identity).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.accounting.sessions import SessionBilling
from repro.errors import ReproError

__all__ = [
    "Account",
    "AccessPointLedger",
    "SettlementRecord",
    "Signature",
    "RepudiationError",
    "UnacknowledgedError",
]


class RepudiationError(ReproError):
    """Settlement rejected: the initiator's signature is missing/invalid."""


class UnacknowledgedError(ReproError):
    """Settlement rejected: no valid destination acknowledgment."""


@dataclass(frozen=True, eq=False)
class Signature:
    """An unforgeable token binding a principal to a session payload.

    Only :meth:`AccessPointLedger.sign` creates instances; equality is
    identity, so holding a *different* Signature object with identical
    fields does not verify (that is the unforgeability model).
    """

    principal: int
    payload: object


@dataclass
class Account:
    """One node's balance and traffic counters at the access point."""

    node: int
    balance: float = 0.0
    sessions_initiated: int = 0
    sessions_relayed: int = 0

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"node {self.node}: balance {self.balance:+.3f} "
            f"({self.sessions_initiated} initiated, "
            f"{self.sessions_relayed} relayed)"
        )


@dataclass(frozen=True)
class SettlementRecord:
    """An immutable audit-log entry for one settled session."""

    billing: SessionBilling
    sequence: int


class AccessPointLedger:
    """Account book + settlement rules at ``v_0``.

    Typical flow (see ``examples``/``tests``)::

        ledger = AccessPointLedger(n)
        init_sig = ledger.sign(source, session)        # source's radio signs
        ...   # packets flow source -> relays -> AP
        ack_sig = ledger.sign(ledger.ap, session)      # AP acknowledges
        ledger.settle(billing, init_sig, ack_sig)

    Accounts may go negative (the AP extends credit and settles with the
    operator out of band); what the ledger guarantees is conservation —
    the sum of all balances is always 0 — plus the two safeguards.
    """

    def __init__(self, n: int, ap: int = 0) -> None:
        if n < 1:
            raise ValueError(f"need at least one node, got {n}")
        if not 0 <= ap < n:
            raise ValueError(f"access point {ap} out of range for {n} nodes")
        self.n = int(n)
        self.ap = int(ap)
        self.accounts = {i: Account(node=i) for i in range(n)}
        self.log: list[SettlementRecord] = []
        self._minted: set[int] = set()

    # -- signatures -----------------------------------------------------------

    def sign(self, principal: int, payload: object) -> Signature:
        """Mint a signature of ``principal`` over ``payload``.

        In a deployment this is the node's private key at work; here the
        substrate mints the token (and remembers it) so that possession
        of a *ledger-minted* token is the only way to verify.
        """
        if not 0 <= principal < self.n:
            raise ValueError(f"unknown principal {principal}")
        sig = Signature(principal=principal, payload=payload)
        self._minted.add(id(sig))
        return sig

    def _verify(self, sig: object, principal: int, payload: object) -> bool:
        return (
            isinstance(sig, Signature)
            and id(sig) in self._minted
            and sig.principal == principal
            and sig.payload == payload
        )

    # -- settlement -----------------------------------------------------------

    def settle(
        self,
        billing: SessionBilling,
        initiation_sig: object,
        ack_sig: object,
    ) -> SettlementRecord:
        """Apply one session's charges/credits, enforcing the safeguards."""
        session = billing.session
        if not self._verify(initiation_sig, session.source, session):
            raise RepudiationError(
                f"session from node {session.source} lacks a valid "
                "initiator signature — charge refused"
            )
        if not self._verify(ack_sig, self.ap, session):
            raise UnacknowledgedError(
                f"session from node {session.source} lacks the access "
                "point's signed acknowledgment — nothing is credited"
            )
        if not billing.is_balanced():
            raise ValueError(
                f"unbalanced billing: charge {billing.charge} != "
                f"credits {billing.total_credit}"
            )
        src = self.accounts[session.source]
        src.balance -= billing.charge
        src.sessions_initiated += 1
        for relay, credit in billing.credits.items():
            acct = self.accounts[relay]
            acct.balance += credit
            acct.sessions_relayed += 1
        record = SettlementRecord(billing=billing, sequence=len(self.log))
        self.log.append(record)
        return record

    # -- reporting -----------------------------------------------------------

    def balance(self, node: int) -> float:
        """Current account balance (ledger) / energy balance (policy)."""
        return self.accounts[node].balance

    def total_balance(self) -> float:
        """Conservation check: always 0 (the AP only moves money)."""
        return float(sum(a.balance for a in self.accounts.values()))

    def top_earners(self, k: int = 5) -> list[Account]:
        """Accounts sorted by balance, best first."""
        return sorted(
            self.accounts.values(), key=lambda a: -a.balance
        )[:k]

    def statement(self) -> Mapping[int, float]:
        """Balances of every account, keyed by node id."""
        return {i: a.balance for i, a in sorted(self.accounts.items())}
