"""Payment clearing at the access point (Section III.H, "Where to pay").

The mechanism says *how much* each relay is owed; this package is the
substrate that actually moves the money:

* :mod:`~repro.accounting.ledger` — every node holds a secure account at
  the access point; sessions are charged to the initiator and credited to
  the relays, with the paper's safeguards: an initiation must carry the
  source's signature (so a node cannot repudiate traffic it originated)
  and a relay is credited only after the destination's signed
  acknowledgment arrives (so free riders cannot consume relaying without
  a payable session).

* :mod:`~repro.accounting.sessions` — per-packet vs per-session cost
  accounting (Section II.C: a source sending ``s`` packets pays
  ``s * p_i^k`` to each relay) and workload generation.

Cryptographic signatures are modelled as unforgeable provenance tokens
issued by the substrate (consistent with how the distributed simulator
stamps message provenance).
"""

from repro.accounting.ledger import (
    AccessPointLedger,
    Account,
    SettlementRecord,
    RepudiationError,
    UnacknowledgedError,
)
from repro.accounting.sessions import (
    Session,
    SessionBilling,
    bill_session,
    uniform_workload,
    hotspot_workload,
)

__all__ = [
    "AccessPointLedger",
    "Account",
    "SettlementRecord",
    "RepudiationError",
    "UnacknowledgedError",
    "Session",
    "SessionBilling",
    "bill_session",
    "uniform_workload",
    "hotspot_workload",
]
