"""The nuglet-counter protocol (Buttyan-Hubaux [2][6]), counter dynamics.

Section II.D's description, implemented literally: "Each node maintains a
counter, called *nuglet counter*, in a tamper resistant hardware module.
The nuglet counter decreases when the node wants to send a packet as
originator and increased when the node relays a packet. The value of
nuglet remains positive ... To jump-start the system, each node is
initially assigned a positive nuglet value. When a node wants to send
packets to other node, it pays each relay node 1 nuglet, and its nuglet
counter is decreased by the hops of the path used."

The simulation exposes the two structural problems the paper points out:

* the **jump-start dependence** — with a small endowment, sources go
  broke and sessions block until they happen to earn by relaying;
* the **imbalance footnote** — on paths averaging ``h`` hops, a fraction
  ``1 - 1/h`` of all transmissions are transit traffic, so counters
  cannot stay balanced for everyone: topology decides who earns
  (central nodes) and who starves (edge nodes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.accounting.sessions import Session
from repro.graph.dijkstra import node_weighted_spt
from repro.graph.node_graph import NodeWeightedGraph
from repro.utils.validation import check_node_index

__all__ = ["NugletCounterResult", "simulate_nuglet_counters"]


@dataclass
class NugletCounterResult:
    """Outcome of a nuglet-counter simulation."""

    sessions_attempted: int = 0
    sessions_delivered: int = 0
    sessions_broke: int = 0  # source could not afford the hop charge
    counters: np.ndarray = field(default_factory=lambda: np.zeros(0))
    earned: np.ndarray = field(default_factory=lambda: np.zeros(0))
    spent: np.ndarray = field(default_factory=lambda: np.zeros(0))

    @property
    def delivery_ratio(self) -> float:
        """Delivered sessions as a fraction of attempts."""
        if self.sessions_attempted == 0:
            return float("nan")
        return self.sessions_delivered / self.sessions_attempted

    @property
    def blocking_probability(self) -> float:
        """Blocked sessions as a fraction of attempts."""
        if self.sessions_attempted == 0:
            return float("nan")
        return self.sessions_broke / self.sessions_attempted

    def starving_nodes(self, threshold: float = 1.0) -> list[int]:
        """Nodes whose counter ended below ``threshold`` (cannot send)."""
        return [int(i) for i in np.nonzero(self.counters < threshold)[0]]

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.sessions_delivered}/{self.sessions_attempted} delivered, "
            f"{self.sessions_broke} blocked broke "
            f"({self.blocking_probability:.1%}); counters min "
            f"{self.counters.min():.0f} / median "
            f"{np.median(self.counters):.0f} / max {self.counters.max():.0f}"
        )


def simulate_nuglet_counters(
    g: NodeWeightedGraph,
    workload: Iterable[Session],
    initial_nuglets: float,
    root: int = 0,
    min_hop_routing: bool = True,
) -> NugletCounterResult:
    """Run a workload under tamper-proof nuglet counters.

    Each session: the source's route to ``root`` is the minimum-hop path
    (each relay costs exactly 1 nuglet, so fewer hops = cheaper; set
    ``min_hop_routing=False`` to use the least-energy path instead). If
    the source's counter cannot cover one nuglet per relay *per packet*,
    the session blocks ("the value of nuglet remains positive"). On
    delivery every relay's counter increases by the packet count.

    Relays never refuse — the counter lives in tamper-resistant hardware
    and earning nuglets is the only way to afford one's own traffic,
    which is exactly the scheme's participation argument.
    """
    root = check_node_index(root, g.n)
    if initial_nuglets < 0:
        raise ValueError(
            f"initial endowment must be non-negative, got {initial_nuglets}"
        )
    counters = np.full(g.n, float(initial_nuglets))
    earned = np.zeros(g.n)
    spent = np.zeros(g.n)
    result = NugletCounterResult()

    if min_hop_routing:
        hop_graph = g.with_costs(np.ones(g.n))
    else:
        hop_graph = g
    spt = node_weighted_spt(hop_graph, root, backend="python")

    for session in workload:
        result.sessions_attempted += 1
        source = check_node_index(session.source, g.n)
        if not spt.reachable(source):
            result.sessions_broke += 1
            continue
        relays = spt.relays(source)
        charge = len(relays) * session.packets
        if counters[source] < charge:
            result.sessions_broke += 1
            continue
        counters[source] -= charge
        spent[source] += charge
        for k in relays:
            counters[k] += session.packets
            earned[k] += session.packets
        result.sessions_delivered += 1

    result.counters = counters
    result.earned = earned
    result.spent = spent
    return result
