"""Baseline mechanisms the paper positions itself against (Section II.D).

* :mod:`~repro.baselines.nisan_ronen` — the original edge-agent VCG
  routing mechanism [8]: every *edge* is an agent; payments go to edges.
* :mod:`~repro.baselines.nuglets` — the fixed-price "nuglet" forwarding
  economy [2][3][5][6]: every relay earns one fixed-value nuglet per
  packet, regardless of its cost. Simple, but relays whose true cost
  exceeds the nuglet value rationally refuse, blocking sessions.
* :mod:`~repro.baselines.adhoc_vcg` — Anderegg & Eidenbenz's Ad hoc-VCG
  [16]: link-weighted VCG with power control, plus their overpayment
  bound in terms of ``max c / min c``.
* :mod:`~repro.baselines.nuglet_counters` — the tamper-resistant
  counter protocol of [2][6] with its jump-start and imbalance
  dynamics.
* :mod:`~repro.baselines.watchdog` — Watchdog/Pathrater [4], the
  reputation approach, including the paper's wrongful-labelling
  critique.

All baselines speak the same :class:`~repro.core.mechanism.UnicastPayment`
protocol as the paper's schemes so the benchmark harness can compare them
directly.
"""

from repro.baselines.nisan_ronen import nisan_ronen_payments, EdgePayment
from repro.baselines.nuglets import (
    NugletOutcome,
    nuglet_outcome,
    nuglet_network_summary,
)
from repro.baselines.adhoc_vcg import (
    adhoc_vcg_payments,
    eidenbenz_overpayment_bound,
)
from repro.baselines.nuglet_counters import (
    NugletCounterResult,
    simulate_nuglet_counters,
)
from repro.baselines.watchdog import ReputationReport, WatchdogNetwork

__all__ = [
    "nisan_ronen_payments",
    "EdgePayment",
    "NugletOutcome",
    "nuglet_outcome",
    "nuglet_network_summary",
    "adhoc_vcg_payments",
    "eidenbenz_overpayment_bound",
    "NugletCounterResult",
    "simulate_nuglet_counters",
    "ReputationReport",
    "WatchdogNetwork",
]
