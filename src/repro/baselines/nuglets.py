"""The nuglet fixed-price forwarding economy (Buttyan-Hubaux line of work).

Section II.D's critique, operationalized: "For a selected path ... each
node on such path is paid *one* nuglet ... If the nuglet reflects actual
monetary value, then a node may still refuse to relay the packet if its
actual cost is higher than the monetary value of the nuglet."

Model implemented here:

* every relay on a session's path earns the fixed price ``price``;
* a **rational** relay participates only if ``price >= c_k`` (otherwise
  relaying loses money and it opts out);
* the source therefore routes over the subgraph of willing relays,
  minimizing hops (each hop costs one nuglet);
* if no willing path exists, the session is **blocked**.

The comparison against VCG quantifies the paper's point: a price high
enough to never block pays every relay like the most expensive one, a
low price blocks sessions — VCG's per-node prices avoid both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.graph.node_graph import NodeWeightedGraph
from repro.utils.validation import check_node_index, check_non_negative

__all__ = ["NugletOutcome", "nuglet_outcome", "nuglet_network_summary"]


@dataclass(frozen=True)
class NugletOutcome:
    """One session under the fixed-price scheme."""

    source: int
    target: int
    price: float
    path: tuple[int, ...]  # empty when blocked
    blocked: bool

    @property
    def hops(self) -> int:
        """Edge count of the session's route."""
        return max(len(self.path) - 1, 0)

    @property
    def relay_count(self) -> int:
        """Number of paid relays on the route."""
        return max(len(self.path) - 2, 0)

    @property
    def total_payment(self) -> float:
        """What the source is charged: one ``price`` per relay."""
        return self.relay_count * self.price

    def true_relay_cost(self, g: NodeWeightedGraph) -> float:
        """Actual energy the relays spend on this session."""
        if self.blocked or self.relay_count == 0:
            return 0.0
        return float(sum(g.costs[k] for k in self.path[1:-1]))


def _min_hop_path(
    g: NodeWeightedGraph, source: int, target: int, willing: np.ndarray
) -> tuple[int, ...]:
    """BFS min-hop path using only willing relays (endpoints always pass)."""
    from collections import deque

    prev = np.full(g.n, -2, dtype=np.int64)
    prev[source] = -1
    q = deque([source])
    while q:
        u = q.popleft()
        if u == target:
            break
        for w in g.neighbors(u):
            w = int(w)
            if prev[w] != -2:
                continue
            if w != target and not willing[w]:
                continue
            prev[w] = u
            q.append(w)
    if prev[target] == -2:
        return ()
    out = [target]
    while out[-1] != source:
        out.append(int(prev[out[-1]]))
    return tuple(reversed(out))


def nuglet_outcome(
    g: NodeWeightedGraph,
    source: int,
    target: int,
    price: float,
) -> NugletOutcome:
    """Route one session under per-relay fixed price ``price``.

    Relays with true cost above ``price`` opt out (rationality); among
    willing relays the source takes a minimum-hop path (each hop costs
    one fixed payment, so fewer hops = cheaper).
    """
    source = check_node_index(source, g.n)
    target = check_node_index(target, g.n)
    check_non_negative(price, "price")
    willing = g.costs <= price + 1e-12
    path = _min_hop_path(g, source, target, willing)
    return NugletOutcome(
        source=source,
        target=target,
        price=float(price),
        path=path,
        blocked=not path,
    )


@dataclass(frozen=True)
class NugletNetworkSummary:
    """Fixed-price scheme over all sources toward the access point."""

    price: float
    sessions: int
    blocked: int
    total_payment: float
    total_true_cost: float
    underpaid_relays: int  # relay slots where price < true cost (only 0
    # when rationality filtering is active, kept for the naive variant)

    @property
    def blocking_probability(self) -> float:
        """Blocked sessions as a fraction of attempts."""
        if self.sessions == 0:
            return float("nan")
        return self.blocked / self.sessions

    @property
    def overpayment_ratio(self) -> float:
        """Total payment divided by the corresponding true cost."""
        if self.total_true_cost <= 0:
            return float("nan")
        return self.total_payment / self.total_true_cost


def nuglet_network_summary(
    g: NodeWeightedGraph,
    price: float,
    root: int = 0,
    sources: Iterable[int] | None = None,
) -> NugletNetworkSummary:
    """Run every source's session to the access point at one price level.

    The benchmark sweeps ``price`` to trace the blocking-vs-overpayment
    trade-off the paper argues fixed prices cannot escape.
    """
    if sources is None:
        sources = [i for i in range(g.n) if i != root]
    sessions = blocked = underpaid = 0
    total_payment = total_cost = 0.0
    for s in sources:
        out = nuglet_outcome(g, s, root, price)
        sessions += 1
        if out.blocked:
            blocked += 1
            continue
        total_payment += out.total_payment
        total_cost += out.true_relay_cost(g)
        underpaid += sum(1 for k in out.path[1:-1] if g.costs[k] > price + 1e-12)
    return NugletNetworkSummary(
        price=float(price),
        sessions=sessions,
        blocked=blocked,
        total_payment=total_payment,
        total_true_cost=total_cost,
        underpaid_relays=underpaid,
    )
