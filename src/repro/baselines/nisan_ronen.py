"""Nisan-Ronen edge-agent VCG routing (STOC '99), the original baseline.

Model: an undirected graph where each **edge** ``e`` is a selfish agent
with private cost ``t^e``; the mechanism buys a least cost ``x -> y``
path and pays every edge on it

.. math::

    p^e = D_{G - e}(x, y) - (D_G(x, y) - t^e)

(0 off-path). The graph must be 2-edge-connected between the endpoints
(else an edge monopoly makes the payment unbounded).

We host the instance on a symmetric
:class:`~repro.graph.link_graph.LinkWeightedDigraph` (both orientations
carrying the same declared edge cost). The comparison the benchmarks
draw: on wireless topologies the paper's node/link-agent model prices
*devices*, Nisan-Ronen prices *wires* — the overpayment characteristics
differ because a node removal severs all its edges at once, so the
node-agent detour is never shorter and node payments are never smaller.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.errors import DisconnectedError, MonopolyError
from repro.graph.dijkstra import link_weighted_spt
from repro.graph.link_graph import LinkWeightedDigraph
from repro.utils.validation import check_node_index

__all__ = ["EdgePayment", "nisan_ronen_payments"]


@dataclass(frozen=True)
class EdgePayment:
    """Outcome of the edge-agent VCG mechanism for one request."""

    source: int
    target: int
    path: tuple[int, ...]
    lcp_cost: float
    payments: Mapping[tuple[int, int], float]  # keyed by (u, v) with u < v

    @property
    def total_payment(self) -> float:
        """Total payment across all relays."""
        return float(sum(self.payments.values()))

    @property
    def overpayment_ratio(self) -> float:
        """Total payment divided by the corresponding true cost."""
        if self.lcp_cost <= 0:
            return float("nan")
        return self.total_payment / self.lcp_cost

    def payment(self, u: int, v: int) -> float:
        """Payment to one participant (0 when unpaid)."""
        return float(self.payments.get((min(u, v), max(u, v)), 0.0))


def _without_edge(dg: LinkWeightedDigraph, u: int, v: int) -> LinkWeightedDigraph:
    keep = [
        (a, b, w)
        for a, b, w in dg.arc_iter()
        if {a, b} != {u, v}
    ]
    return LinkWeightedDigraph(dg.n, keep)


def nisan_ronen_payments(
    dg: LinkWeightedDigraph,
    source: int,
    target: int,
    on_monopoly: str = "raise",
) -> EdgePayment:
    """Run the edge-agent VCG mechanism.

    ``dg`` must be symmetric (each undirected edge present in both
    orientations with equal weight); asymmetric instances are rejected
    because an "edge agent" owns both directions.
    """
    source = check_node_index(source, dg.n)
    target = check_node_index(target, dg.n)
    if on_monopoly not in ("raise", "inf"):
        raise ValueError(
            f"on_monopoly must be 'raise' or 'inf', got {on_monopoly!r}"
        )
    if source == target:
        return EdgePayment(source, target, (), 0.0, {})
    spt = link_weighted_spt(dg, source, direction="from")
    if not spt.reachable(target):
        raise DisconnectedError(source, target)
    path = spt.path_from_root(target)
    lcp = float(spt.dist[target])
    payments: dict[tuple[int, int], float] = {}
    for a, b in zip(path, path[1:]):
        w_ab = dg.arc_weight(a, b)
        w_ba = dg.arc_weight(b, a)
        if not np.isfinite(w_ba) or abs(w_ab - w_ba) > 1e-9:
            raise ValueError(
                f"edge ({a}, {b}) is not symmetric; the Nisan-Ronen model "
                "requires undirected edge agents"
            )
        reduced = _without_edge(dg, a, b)
        spt2 = link_weighted_spt(reduced, source, direction="from")
        detour = float(spt2.dist[target])
        if not np.isfinite(detour):
            if on_monopoly == "raise":
                raise MonopolyError(source, target, (a, b))
            payments[(min(a, b), max(a, b))] = float("inf")
            continue
        payments[(min(a, b), max(a, b))] = detour - (lcp - w_ab)
    return EdgePayment(source, target, tuple(path), lcp, payments)
