"""Ad hoc-VCG (Anderegg & Eidenbenz, MobiCom '03) comparator.

Their mechanism is, in our terms, the link-weighted per-node-agent VCG of
Section III.F — the same payment rule on the same model — so
:func:`adhoc_vcg_payments` simply delegates to
:func:`repro.core.link_vcg.link_vcg_payments`. What this module adds is
their headline analytical result: with power control, the **total**
payment is bounded by a constant multiple of the true least path cost,

.. math::

    p_i \\le \\left(1 + 2\\,\\frac{c_{max}}{c_{min}}\\right) \\cdot
    ||P(v_i, v_0, c)||

style bounds driven by the cost-coefficient spread ``c_max / c_min``
(the paper states the factor is "bounded by a constant factor of
``max c_i / min c_i``"). :func:`eidenbenz_overpayment_bound` computes the
spread-based bound for an instance and the benchmarks check where the
measured Figure-3 ratios sit relative to it — far below, which is the
empirical story of Section III.G.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.link_vcg import link_vcg_payments
from repro.core.mechanism import UnicastPayment
from repro.graph.link_graph import LinkWeightedDigraph

__all__ = ["adhoc_vcg_payments", "eidenbenz_overpayment_bound", "SpreadBound"]


def adhoc_vcg_payments(
    dg: LinkWeightedDigraph, source: int, target: int, **kwargs
) -> UnicastPayment:
    """Ad hoc-VCG payment = the Section III.F link VCG payment."""
    result = link_vcg_payments(dg, source, target, **kwargs)
    return UnicastPayment(
        result.source,
        result.target,
        result.path,
        result.lcp_cost,
        dict(result.payments),
        scheme="adhoc-vcg",
    )


@dataclass(frozen=True)
class SpreadBound:
    """The coefficient-spread overpayment bound for one instance."""

    c_min: float
    c_max: float

    @property
    def spread(self) -> float:
        """The cost spread ``c_max / c_min``."""
        return self.c_max / self.c_min if self.c_min > 0 else float("inf")

    @property
    def ratio_bound(self) -> float:
        """Anderegg-Eidenbenz-style bound on ``total payment / path cost``.

        The MobiCom paper's constant-factor statement instantiated in the
        simplest sufficient form: every relay's detour replaces at most
        two links, each at most ``c_max``-weighted per unit of the
        ``c_min``-weighted link it displaces, giving
        ``1 + 2 * c_max / c_min``.
        """
        return 1.0 + 2.0 * self.spread


def eidenbenz_overpayment_bound(dg: LinkWeightedDigraph) -> SpreadBound:
    """Compute the cost spread over the instance's *finite* link costs.

    Zero-cost links are excluded from ``c_min`` (a free link cannot be
    displaced at positive cost), and an instance with no positive-cost
    link gets an infinite spread.
    """
    weights = dg.weights[np.isfinite(dg.weights) & (dg.weights > 0)]
    if weights.size == 0:
        return SpreadBound(c_min=0.0, c_max=0.0)
    return SpreadBound(c_min=float(weights.min()), c_max=float(weights.max()))
