"""Watchdog / Pathrater (Marti et al. [4]), the reputation baseline.

Section II.D's summary: "Watchdog ... runs on every node keeping track of
how the other nodes behave; [Pathrater] uses this information to
calculate the route with the highest reliability." And the critique this
module exists to demonstrate: "this method ignores the reason why a node
refused to relay ... A node will be wrongfully labelled as misbehaving
when its battery power cannot support many relay requests."

Model implemented:

* every node has a *behaviour*: the probability it actually forwards a
  packet it accepted (1.0 = honest; < 1 = dropper). A node may also be
  *depleted*: it refuses because relaying would kill its battery — to a
  watchdog this is indistinguishable from malice;
* watchdogs observe forwarding attempts on links they overhear and keep
  per-neighbour drop counts;
* the pathrater scores each node ``r_k in (0, 1]`` from the pooled
  observations and routes over the most *reliable* path — the one
  maximizing the product of relay ratings (equivalently, minimizing the
  sum of ``-log r_k``, a node-weighted shortest path!);
* no payments exist, so nothing compensates the honest-but-poor node.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.errors import DisconnectedError
from repro.graph.dijkstra import node_weighted_spt
from repro.graph.node_graph import NodeWeightedGraph
from repro.utils.rng import as_rng
from repro.utils.validation import check_node_index, check_probability

__all__ = ["WatchdogNetwork", "ReputationReport"]

#: Laplace smoothing of the drop-rate estimate (successes + 1)/(trials + 2).
_PRIOR_SUCCESS = 1.0
_PRIOR_TRIALS = 2.0

#: Ratings below this make a node effectively unroutable (Pathrater's
#: "avoid misbehaving nodes" threshold).
MISBEHAVIOR_THRESHOLD = 0.5


@dataclass
class ReputationReport:
    """Summary of a watchdog campaign."""

    sessions: int = 0
    delivered: int = 0
    dropped: int = 0
    ratings: Mapping[int, float] = field(default_factory=dict)
    flagged: tuple[int, ...] = ()

    @property
    def delivery_ratio(self) -> float:
        """Delivered sessions as a fraction of attempts."""
        if self.sessions == 0:
            return float("nan")
        return self.delivered / self.sessions


class WatchdogNetwork:
    """A network of forwarding behaviours observed by watchdogs.

    Parameters
    ----------
    g:
        Topology + true relaying costs (costs matter only for the
        depletion behaviour).
    forwarding_prob:
        Per-node probability of forwarding an accepted packet.
    refuses:
        Nodes that *refuse* relay requests outright (the depleted-battery
        case of the paper's critique). A refusal is observed by the
        upstream watchdog exactly like a drop.
    """

    def __init__(
        self,
        g: NodeWeightedGraph,
        forwarding_prob: Sequence[float] | None = None,
        refuses: Sequence[int] = (),
        seed=None,
    ) -> None:
        self.g = g
        probs = (
            np.ones(g.n)
            if forwarding_prob is None
            else np.asarray(forwarding_prob, dtype=np.float64)
        )
        if probs.shape != (g.n,):
            raise ValueError(f"need {g.n} forwarding probabilities")
        for p in probs:
            check_probability(float(p), "forwarding probability")
        self.forwarding_prob = probs
        self.refuses = {check_node_index(v, g.n) for v in refuses}
        self.rng = as_rng(seed)
        # pooled observations: per node, (successes, trials)
        self.successes = np.zeros(g.n)
        self.trials = np.zeros(g.n)

    # -- reputation --------------------------------------------------------

    def rating(self, node: int) -> float:
        """Smoothed estimated forwarding reliability of ``node``."""
        return float(
            (self.successes[node] + _PRIOR_SUCCESS)
            / (self.trials[node] + _PRIOR_TRIALS)
        )

    def ratings(self) -> dict[int, float]:
        """Current smoothed reliability estimate of every node."""
        return {i: self.rating(i) for i in range(self.g.n)}

    def flagged(self) -> tuple[int, ...]:
        """Nodes Pathrater would avoid entirely."""
        return tuple(
            i for i in range(self.g.n)
            if self.rating(i) < MISBEHAVIOR_THRESHOLD
        )

    # -- routing --------------------------------------------------------

    def most_reliable_path(self, source: int, target: int) -> list[int]:
        """Pathrater's route: maximize the product of relay ratings.

        Computed as a node-weighted shortest path with weights
        ``-log rating`` (flagged nodes get an effectively infinite
        weight via a huge constant — Pathrater refuses to use them).
        """
        weights = np.empty(self.g.n)
        for i in range(self.g.n):
            r = self.rating(i)
            weights[i] = 1e9 if r < MISBEHAVIOR_THRESHOLD else -np.log(r)
        rated = self.g.with_costs(weights)
        spt = node_weighted_spt(rated, source, backend="python")
        if not spt.reachable(target):
            raise DisconnectedError(source, target)
        return spt.path_from_root(target)

    # -- simulation --------------------------------------------------------

    def run_session(self, source: int, target: int) -> bool:
        """Route one packet, record watchdog observations, return success."""
        path = self.most_reliable_path(source, target)
        for k in path[1:-1]:
            self.trials[k] += 1
            if k in self.refuses:
                forwarded = False  # depleted: refuses, looks like a drop
            else:
                forwarded = bool(self.rng.random() < self.forwarding_prob[k])
            if forwarded:
                self.successes[k] += 1
            else:
                return False  # packet lost at k; downstream unobserved
        return True

    def run_campaign(
        self, sessions: int, target: int = 0, sources: Sequence[int] | None = None
    ) -> ReputationReport:
        """Run many sessions from rotating sources; report reputations."""
        if sessions < 0:
            raise ValueError(f"sessions must be non-negative, got {sessions}")
        pool = (
            [i for i in range(self.g.n) if i != target]
            if sources is None
            else [check_node_index(s, self.g.n) for s in sources]
        )
        delivered = dropped = 0
        for i in range(sessions):
            source = pool[i % len(pool)]
            if self.run_session(source, target):
                delivered += 1
            else:
                dropped += 1
        return ReputationReport(
            sessions=sessions,
            delivered=delivered,
            dropped=dropped,
            ratings=self.ratings(),
            flagged=self.flagged(),
        )
