"""The node-weighted communication graph of Sections II.B–II.C.

A :class:`NodeWeightedGraph` is an undirected graph over nodes
``0 .. n-1`` where node ``i`` has a relaying cost ``costs[i] >= 0``. The
cost of a path ``v_{r_s} .. v_{r_0}`` is ``sum(costs[r_j] for 0 < j < s)``
— the source and target contribute nothing (paper, Section II.C).

Adjacency is stored in CSR form (``indptr``/``indices``; every undirected
edge appears in both endpoint rows), which keeps neighbour iteration a
NumPy slice — per the HPC guides, contiguous access and no per-edge Python
objects on hot paths.

Node identities are stable: algorithms that "remove" a node take a
``forbidden`` mask rather than re-indexing, so payments computed on
``G \\ v_k`` refer to the same node ids as on ``G``.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import InvalidGraphError
from repro.utils.validation import (
    check_cost_array,
    check_node_index,
)

__all__ = ["NodeWeightedGraph"]


class NodeWeightedGraph:
    """Undirected graph with per-node relaying costs (CSR adjacency).

    Parameters
    ----------
    n:
        Number of nodes. Node ``0`` conventionally plays the access point
        ``v_0`` in the unicast problem, but nothing in this class assumes
        that.
    edges:
        Iterable of ``(u, v)`` pairs with ``u != v``. Duplicate pairs and
        both orientations of the same pair are coalesced.
    costs:
        Length-``n`` array of non-negative, finite node costs.
    """

    __slots__ = (
        "n", "costs", "indptr", "indices", "_nx_cache", "_arc_src", "_tailcost"
    )

    def __init__(self, n: int, edges: Iterable[tuple[int, int]], costs) -> None:
        n = int(n)
        if n < 0:
            raise InvalidGraphError(f"number of nodes must be non-negative, got {n}")
        self.n = n
        self.costs = check_cost_array(costs, n, name="node costs")
        self.costs.setflags(write=False)
        self.indptr, self.indices = self._build_csr(n, edges)
        self.indptr.setflags(write=False)
        self.indices.setflags(write=False)
        self._nx_cache = None
        self._arc_src = None
        self._tailcost = None

    # -- construction --------------------------------------------------------

    @staticmethod
    def _build_csr(
        n: int, edges: Iterable[tuple[int, int]]
    ) -> tuple[np.ndarray, np.ndarray]:
        pairs = set()
        for u, v in edges:
            u, v = int(u), int(v)
            if u == v:
                raise InvalidGraphError(f"self-loop at node {u} is not allowed")
            if not (0 <= u < n and 0 <= v < n):
                raise InvalidGraphError(
                    f"edge ({u}, {v}) out of range for {n} nodes"
                )
            pairs.add((u, v) if u < v else (v, u))
        if not pairs:
            return np.zeros(n + 1, dtype=np.int64), np.empty(0, dtype=np.int64)
        arr = np.array(sorted(pairs), dtype=np.int64)
        # Symmetrize: each undirected edge contributes two directed rows.
        src = np.concatenate([arr[:, 0], arr[:, 1]])
        dst = np.concatenate([arr[:, 1], arr[:, 0]])
        order = np.lexsort((dst, src))
        src, dst = src[order], dst[order]
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.add.at(indptr, src + 1, 1)
        np.cumsum(indptr, out=indptr)
        return indptr, dst

    @classmethod
    def from_networkx(cls, g, cost_attr: str = "cost") -> "NodeWeightedGraph":
        """Build from a networkx graph whose nodes are ``0..n-1``.

        Node costs are read from node attribute ``cost_attr`` (default
        ``"cost"``), missing attributes default to 0.
        """
        n = g.number_of_nodes()
        nodes = sorted(g.nodes)
        if nodes != list(range(n)):
            raise InvalidGraphError(
                "networkx graph nodes must be exactly 0..n-1; relabel first"
            )
        costs = np.array(
            [float(g.nodes[i].get(cost_attr, 0.0)) for i in range(n)]
        )
        return cls(n, g.edges(), costs)

    @classmethod
    def from_edge_list(
        cls, edges: Sequence[tuple[int, int]], costs
    ) -> "NodeWeightedGraph":
        """Build with ``n`` inferred from ``len(costs)``."""
        return cls(len(costs), edges, costs)

    @classmethod
    def from_csr(cls, n: int, costs, indptr, indices) -> "NodeWeightedGraph":
        """Wrap existing CSR arrays without copying them.

        The arrays must already be a valid symmetric CSR adjacency (as
        produced by this class) with ``float64`` costs and ``int64``
        index arrays; only shapes are checked. This is the zero-copy
        entry point used by :mod:`repro.analysis.shm` to reconstruct a
        graph over a shared-memory buffer — the returned graph *views*
        the caller's arrays, it does not own fresh copies.
        """
        n = int(n)
        costs = np.asarray(costs, dtype=np.float64)
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        if costs.shape != (n,):
            raise InvalidGraphError(
                f"costs must have shape ({n},), got {costs.shape}"
            )
        if indptr.shape != (n + 1,):
            raise InvalidGraphError(
                f"indptr must have shape ({n + 1},), got {indptr.shape}"
            )
        if indices.shape != (int(indptr[-1]) if n else 0,):
            raise InvalidGraphError(
                f"indices length {indices.shape[0]} does not match "
                f"indptr[-1]={int(indptr[-1]) if n else 0}"
            )
        g = object.__new__(cls)
        g.n = n
        g.costs = costs
        g.indptr = indptr
        g.indices = indices
        for a in (g.costs, g.indptr, g.indices):
            a.setflags(write=False)
        g._nx_cache = None
        g._arc_src = None
        g._tailcost = None
        return g

    def with_costs(self, costs) -> "NodeWeightedGraph":
        """Same topology, different cost vector (used for declared costs)."""
        g = object.__new__(NodeWeightedGraph)
        g.n = self.n
        g.costs = check_cost_array(costs, self.n, name="node costs")
        g.costs.setflags(write=False)
        g.indptr = self.indptr
        g.indices = self.indices
        g._nx_cache = None
        g._arc_src = self._arc_src  # topology-only cache, safe to share
        g._tailcost = None  # cost-dependent, cannot be shared
        return g

    def with_declaration(self, node: int, declared_cost: float) -> "NodeWeightedGraph":
        """Copy where ``node`` declares ``declared_cost`` instead of its true cost.

        This is the ``d | ^i d_i`` operation of the mechanism-design
        notation: all other entries keep their current value.
        """
        check_node_index(node, self.n)
        costs = self.costs.copy()
        costs[node] = declared_cost
        return self.with_costs(costs)

    def without_edge(self, u: int, v: int) -> "NodeWeightedGraph":
        """Copy with undirected edge (u, v) removed (used by lying-source
        scenarios where a node hides a neighbourhood link, Figure 2)."""
        u = check_node_index(u, self.n)
        v = check_node_index(v, self.n)
        if not self.has_edge(u, v):
            raise InvalidGraphError(f"edge ({u}, {v}) not present")
        kept = [
            (a, b)
            for a, b in self.edge_iter()
            if {a, b} != {u, v}
        ]
        return NodeWeightedGraph(self.n, kept, self.costs)

    def with_extra_edges(
        self, extra: Iterable[tuple[int, int]]
    ) -> "NodeWeightedGraph":
        """Copy with additional undirected edges."""
        edges = list(self.edge_iter()) + list(extra)
        return NodeWeightedGraph(self.n, edges, self.costs)

    # -- queries ---------------------------------------------------------------

    def neighbors(self, u: int) -> np.ndarray:
        """Neighbour ids of ``u`` as a read-only array view (sorted)."""
        return self.indices[self.indptr[u] : self.indptr[u + 1]]

    def degree(self, u: int) -> int:
        """Number of neighbours of a node."""
        return int(self.indptr[u + 1] - self.indptr[u])

    @property
    def degrees(self) -> np.ndarray:
        """Per-node degree vector."""
        return np.diff(self.indptr)

    def has_edge(self, u: int, v: int) -> bool:
        """True if the undirected edge exists."""
        row = self.neighbors(u)
        pos = np.searchsorted(row, v)
        return bool(pos < row.shape[0] and row[pos] == v)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return self.indices.shape[0] // 2

    def edge_iter(self) -> Iterator[tuple[int, int]]:
        """Yield each undirected edge once, as ``(u, v)`` with ``u < v``."""
        for u in range(self.n):
            for v in self.neighbors(u):
                if u < v:
                    yield u, int(v)

    def arc_sources(self) -> np.ndarray:
        """Source node of every CSR arc: ``indices[k]`` is a neighbour of
        ``arc_sources()[k]``. Cached and read-only — this expansion is
        what lets per-edge scans run as whole-array numpy expressions.
        """
        if self._arc_src is None:
            src = np.repeat(np.arange(self.n, dtype=np.int64), self.degrees)
            src.setflags(write=False)
            self._arc_src = src
        return self._arc_src

    def edge_array(self) -> np.ndarray:
        """All undirected edges as an ``(m, 2)`` array with ``u < v`` rows."""
        src = self.arc_sources()
        mask = src < self.indices
        return np.column_stack([src[mask], self.indices[mask]])

    def closed_neighborhood(self, u: int) -> np.ndarray:
        """``N(v_u)`` in the paper's Section III.E sense: ``u`` plus all its
        neighbours (used by the neighbour-collusion-resistant scheme)."""
        return np.concatenate([[u], self.neighbors(u)]).astype(np.int64)

    def k_hop_neighborhood(self, u: int, radius: int) -> set[int]:
        """All nodes within ``radius`` hops of ``u`` (including ``u``).

        ``radius = 0`` is ``{u}`` (the plain III.A scheme's removal set),
        ``radius = 1`` is the closed neighbourhood ``N(v_u)``; larger
        radii instantiate the generalized ``Q(v_k)`` scheme of Section
        III.E against wider colluding cliques.
        """
        u = check_node_index(u, self.n)
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        seen = {u}
        frontier = [u]
        for _ in range(radius):
            nxt = []
            for x in frontier:
                for w in self.neighbors(x):
                    w = int(w)
                    if w not in seen:
                        seen.add(w)
                        nxt.append(w)
            frontier = nxt
            if not frontier:
                break
        return seen

    # -- path costs --------------------------------------------------------------

    def path_cost(self, path: Sequence[int]) -> float:
        """Cost of a path = sum of **internal** node costs (Section II.C).

        ``path`` must be a node sequence along existing edges; a length-0/1
        path costs 0. Raises :class:`InvalidGraphError` on a broken path.
        """
        path = [check_node_index(p, self.n) for p in path]
        for a, b in zip(path, path[1:]):
            if not self.has_edge(a, b):
                raise InvalidGraphError(f"path uses missing edge ({a}, {b})")
        if len(path) <= 2:
            return 0.0
        return float(self.costs[np.asarray(path[1:-1], dtype=np.int64)].sum())

    def is_path(self, path: Sequence[int]) -> bool:
        """True if ``path`` is a walk along existing edges with no repeats."""
        if len(path) != len(set(path)):
            return False
        try:
            self.path_cost(path)
        except (InvalidGraphError, KeyError):
            return False
        return True

    # -- conversions --------------------------------------------------------------

    def to_networkx(self):
        """Convert to ``networkx.Graph`` with a ``cost`` node attribute.

        The result is cached (the graph is immutable); callers must not
        mutate it.
        """
        if self._nx_cache is None:
            import networkx as nx

            g = nx.Graph()
            g.add_nodes_from(
                (i, {"cost": float(self.costs[i])}) for i in range(self.n)
            )
            g.add_edges_from(self.edge_iter())
            self._nx_cache = g
        return self._nx_cache

    def to_tailcost_matrix(self) -> "object":
        """Directed CSR matrix with ``w(u, v) = c_u`` (the tail's cost).

        With the root's outgoing arcs zeroed, a directed walk from the
        root accumulates exactly the internal-node cost of the path, in
        path order — the same left-to-right float additions the python
        Dijkstra performs. So the scipy backend produces bit-identical
        ``dist`` arrays, and (unlike a transform that needs a correction
        term) ``dist[x]`` never depends on the costs of the endpoints,
        even in the last ulp — which is what lets the PricingEngine keep
        a cached tree across an endpoint re-declaration. Zero costs are
        nudged to 1e-300 (scipy's CSR treats exact zeros as missing
        arcs); the nudge is annihilated by the first real addition and
        clipped after the solve.

        The matrix is cached (the graph is immutable) — per-source and
        batched Dijkstra calls over the same snapshot reuse one CSR
        instead of rebuilding it per call. Callers must not mutate it.
        """
        if self._tailcost is None:
            from scipy.sparse import csr_matrix

            data = self.costs[self.arc_sources()].copy()
            data[data <= 0.0] = 1e-300
            self._tailcost = csr_matrix(
                (data, self.indices.copy(), self.indptr.copy()),
                shape=(self.n, self.n),
            )
        return self._tailcost

    # -- dunder ---------------------------------------------------------------

    def __repr__(self) -> str:
        return (
            f"NodeWeightedGraph(n={self.n}, m={self.num_edges}, "
            f"cost_range=[{self.costs.min() if self.n else 0:.3g}, "
            f"{self.costs.max() if self.n else 0:.3g}])"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, NodeWeightedGraph):
            return NotImplemented
        return (
            self.n == other.n
            and np.array_equal(self.costs, other.costs)
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
        )

    def __hash__(self) -> int:
        return hash((self.n, self.indices.tobytes(), self.costs.tobytes()))
