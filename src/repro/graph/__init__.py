"""Graph substrate: the network models and shortest-path machinery.

Two graph models mirror the paper:

* :class:`~repro.graph.node_graph.NodeWeightedGraph` — the main model of
  Sections II–III.E: an undirected communication graph where each *node*
  ``v_i`` carries a relaying cost ``c_i`` and the cost of a path is the sum
  of its **internal** node costs.

* :class:`~repro.graph.link_graph.LinkWeightedDigraph` — the model of
  Section III.F: a directed graph where node ``v_i``'s private type is the
  vector of its outgoing link costs ``c_{i,j}`` (power-controlled radios).

On top of the models: Dijkstra with two backends, shortest-path trees,
node-avoiding path oracles, connectivity/biconnectivity analysis, and the
topology generators used by the evaluation.
"""

from repro.graph.node_graph import NodeWeightedGraph
from repro.graph.link_graph import LinkWeightedDigraph
from repro.graph.dijkstra import (
    shortest_path_tree,
    node_weighted_spt,
    link_weighted_spt,
)
from repro.graph.spt import ShortestPathTree
from repro.graph.avoiding import (
    avoiding_distance,
    all_avoiding_distances_naive,
    avoiding_set_distance,
)
from repro.graph.connectivity import (
    is_connected,
    is_biconnected,
    articulation_points,
    neighborhood_removal_safe,
    is_strongly_connected,
)
from repro.graph import generators

__all__ = [
    "NodeWeightedGraph",
    "LinkWeightedDigraph",
    "shortest_path_tree",
    "node_weighted_spt",
    "link_weighted_spt",
    "ShortestPathTree",
    "avoiding_distance",
    "all_avoiding_distances_naive",
    "avoiding_set_distance",
    "is_connected",
    "is_biconnected",
    "articulation_points",
    "neighborhood_removal_safe",
    "is_strongly_connected",
    "generators",
]
