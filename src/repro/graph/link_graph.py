"""The directed link-weighted graph of Section III.F.

In the power-controlled model each wireless node ``v_i`` has a *vector*
type ``c_i = (c_{i,0}, ..., c_{i,n-1})`` where ``c_{i,j}`` is its power
cost to support the link to ``v_j`` (``inf`` when ``v_j`` is out of
range). The communication structure is therefore a directed, weighted
graph: the weight of arc ``i -> j`` is ``c_{i,j}`` and belongs to agent
``i``.

:class:`LinkWeightedDigraph` stores the arcs in CSR form and caches the
reverse graph (needed for single-destination shortest paths toward the
access point) and the scipy sparse matrix (needed by the compiled Dijkstra
backend).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import InvalidGraphError
from repro.utils.validation import check_node_index

__all__ = ["LinkWeightedDigraph"]


class LinkWeightedDigraph:
    """Directed graph with per-arc weights owned by the tail node.

    Parameters
    ----------
    n:
        Number of nodes.
    arcs:
        Iterable of ``(u, v, w)`` with ``u != v`` and finite ``w >= 0``.
        At most one arc per ordered pair.
    """

    __slots__ = ("n", "indptr", "indices", "weights", "_rev", "_csr")

    def __init__(self, n: int, arcs: Iterable[tuple[int, int, float]]) -> None:
        n = int(n)
        if n < 0:
            raise InvalidGraphError(f"number of nodes must be non-negative, got {n}")
        self.n = n
        triples: dict[tuple[int, int], float] = {}
        for u, v, w in arcs:
            u, v, w = int(u), int(v), float(w)
            if u == v:
                raise InvalidGraphError(f"self-loop at node {u} is not allowed")
            if not (0 <= u < n and 0 <= v < n):
                raise InvalidGraphError(f"arc ({u}, {v}) out of range for {n} nodes")
            if not np.isfinite(w) or w < 0:
                raise InvalidGraphError(
                    f"arc ({u}, {v}) has invalid weight {w}; use absence "
                    "instead of inf"
                )
            if (u, v) in triples:
                raise InvalidGraphError(f"duplicate arc ({u}, {v})")
            triples[(u, v)] = w
        if triples:
            keys = np.array(sorted(triples), dtype=np.int64)
            src, dst = keys[:, 0], keys[:, 1]
            wts = np.array([triples[(int(a), int(b))] for a, b in keys])
        else:
            src = dst = np.empty(0, dtype=np.int64)
            wts = np.empty(0, dtype=np.float64)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.add.at(indptr, src + 1, 1)
        np.cumsum(indptr, out=indptr)
        self.indptr, self.indices, self.weights = indptr, dst, wts
        for a in (self.indptr, self.indices, self.weights):
            a.setflags(write=False)
        self._rev = None
        self._csr = None

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_cost_matrix(cls, costs: np.ndarray) -> "LinkWeightedDigraph":
        """Build from an ``(n, n)`` matrix; ``inf`` entries mean "no arc".

        This is the literal Section III.F representation: row ``i`` is node
        ``v_i``'s declared type vector. The diagonal is ignored
        (``c_{i,i} = 0`` in the paper but there is no self-arc).
        """
        costs = np.asarray(costs, dtype=np.float64)
        if costs.ndim != 2 or costs.shape[0] != costs.shape[1]:
            raise InvalidGraphError(
                f"cost matrix must be square, got shape {costs.shape}"
            )
        n = costs.shape[0]
        src, dst = np.nonzero(np.isfinite(costs))
        keep = src != dst
        src, dst = src[keep], dst[keep]
        return cls(n, zip(src.tolist(), dst.tolist(), costs[src, dst].tolist()))

    @classmethod
    def from_csr(cls, n: int, indptr, indices, weights) -> "LinkWeightedDigraph":
        """Wrap existing CSR arrays without copying them.

        The arrays must already be a valid CSR adjacency produced by this
        class (``int64`` index arrays, ``float64`` weights, rows sorted);
        only shapes are checked. Zero-copy counterpart of
        :meth:`repro.graph.node_graph.NodeWeightedGraph.from_csr`, used by
        :mod:`repro.analysis.shm` to rebuild a digraph over a
        shared-memory buffer.
        """
        n = int(n)
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        weights = np.asarray(weights, dtype=np.float64)
        if indptr.shape != (n + 1,):
            raise InvalidGraphError(
                f"indptr must have shape ({n + 1},), got {indptr.shape}"
            )
        if indices.shape != weights.shape or indices.shape != (int(indptr[-1]),):
            raise InvalidGraphError(
                f"indices/weights length {indices.shape[0]}/{weights.shape[0]} "
                f"does not match indptr[-1]={int(indptr[-1])}"
            )
        dg = object.__new__(cls)
        dg.n = n
        dg.indptr, dg.indices, dg.weights = indptr, indices, weights
        for a in (dg.indptr, dg.indices, dg.weights):
            a.setflags(write=False)
        dg._rev = None
        dg._csr = None
        return dg

    @classmethod
    def from_undirected(
        cls, n: int, edges: Iterable[tuple[int, int, float]]
    ) -> "LinkWeightedDigraph":
        """Build a symmetric digraph (both orientations of every edge)."""
        arcs = []
        for u, v, w in edges:
            arcs.append((u, v, w))
            arcs.append((v, u, w))
        return cls(n, arcs)

    @classmethod
    def from_node_weighted(cls, g) -> "LinkWeightedDigraph":
        """Embed a :class:`NodeWeightedGraph`: arc ``u -> v`` costs ``c_u``.

        A directed path then costs the sum of the tail-node costs, i.e.
        node cost of every path node except the last; subtracting the
        source's cost gives the node-weighted internal-cost convention.
        Used by cross-model tests.
        """
        arcs = []
        for u, v in g.edge_iter():
            arcs.append((u, v, float(g.costs[u])))
            arcs.append((v, u, float(g.costs[v])))
        return cls(g.n, arcs)

    def with_node_removed(self, node: int) -> "LinkWeightedDigraph":
        """Copy of the digraph with all arcs incident to ``node`` dropped.

        This realizes the paper's ``d |^k inf`` operation for computing
        ``v_k``-avoiding paths in the link model.
        """
        node = check_node_index(node, self.n)
        keep = [
            (u, v, w)
            for u, v, w in self.arc_iter()
            if u != node and v != node
        ]
        return LinkWeightedDigraph(self.n, keep)

    def with_nodes_removed(self, nodes: Iterable[int]) -> "LinkWeightedDigraph":
        """Copy with every arc incident to any node in ``nodes`` dropped."""
        drop = {check_node_index(v, self.n) for v in nodes}
        keep = [
            (u, v, w)
            for u, v, w in self.arc_iter()
            if u not in drop and v not in drop
        ]
        return LinkWeightedDigraph(self.n, keep)

    def with_arc_weight(self, u: int, v: int, weight: float) -> "LinkWeightedDigraph":
        """Copy where arc ``u -> v`` gets ``weight`` (added if absent,
        dropped when ``weight`` is ``inf``).

        The single-arc analogue of :meth:`with_declaration` — what a
        long-lived pricing service applies when one link's power cost
        drifts.
        """
        u = check_node_index(u, self.n)
        v = check_node_index(v, self.n)
        if u == v:
            raise InvalidGraphError(f"self-loop at node {u} is not allowed")
        weight = float(weight)
        arcs = [(a, b, w) for a, b, w in self.arc_iter() if (a, b) != (u, v)]
        if np.isfinite(weight):
            arcs.append((u, v, weight))
        return LinkWeightedDigraph(self.n, arcs)

    def with_declaration(self, node: int, declared_row: np.ndarray) -> "LinkWeightedDigraph":
        """Copy where node ``node`` declares the outgoing-cost vector
        ``declared_row`` (length n; ``inf`` drops the arc).

        Arcs *into* ``node`` are untouched — a node's type covers only its
        own transmissions.
        """
        node = check_node_index(node, self.n)
        declared_row = np.asarray(declared_row, dtype=np.float64)
        if declared_row.shape != (self.n,):
            raise InvalidGraphError(
                f"declared row must have length {self.n}, got {declared_row.shape}"
            )
        arcs = [(u, v, w) for u, v, w in self.arc_iter() if u != node]
        for v in range(self.n):
            w = declared_row[v]
            if v != node and np.isfinite(w):
                if w < 0:
                    raise InvalidGraphError(
                        f"declared cost for arc ({node}, {v}) is negative: {w}"
                    )
                arcs.append((node, v, float(w)))
        return LinkWeightedDigraph(self.n, arcs)

    # -- queries ---------------------------------------------------------------

    @property
    def num_arcs(self) -> int:
        """Number of directed arcs."""
        return int(self.indices.shape[0])

    def out_neighbors(self, u: int) -> tuple[np.ndarray, np.ndarray]:
        """``(heads, weights)`` of arcs leaving ``u`` (read-only views)."""
        lo, hi = self.indptr[u], self.indptr[u + 1]
        return self.indices[lo:hi], self.weights[lo:hi]

    def out_degree(self, u: int) -> int:
        """Number of outgoing arcs of a node."""
        return int(self.indptr[u + 1] - self.indptr[u])

    def arc_weight(self, u: int, v: int) -> float:
        """Weight of arc ``u -> v``; ``inf`` if absent (paper convention)."""
        heads, wts = self.out_neighbors(u)
        pos = np.searchsorted(heads, v)
        if pos < heads.shape[0] and heads[pos] == v:
            return float(wts[pos])
        return float("inf")

    def has_arc(self, u: int, v: int) -> bool:
        """True if the directed arc exists."""
        return np.isfinite(self.arc_weight(u, v))

    def arc_iter(self) -> Iterator[tuple[int, int, float]]:
        """Yield every arc as ``(tail, head, weight)``."""
        for u in range(self.n):
            heads, wts = self.out_neighbors(u)
            for v, w in zip(heads, wts):
                yield u, int(v), float(w)

    def cost_row(self, u: int) -> np.ndarray:
        """Node ``u``'s type vector: length-n array, ``inf`` off-arcs."""
        row = np.full(self.n, np.inf)
        heads, wts = self.out_neighbors(u)
        row[heads] = wts
        row[u] = 0.0
        return row

    def cost_matrix(self) -> np.ndarray:
        """Full ``(n, n)`` type matrix (``inf`` = absent arc, 0 diagonal)."""
        return np.vstack([self.cost_row(u) for u in range(self.n)])

    # -- path costs --------------------------------------------------------------

    def path_cost(self, path: Sequence[int]) -> float:
        """Total weight of the directed walk ``path`` (all arcs counted)."""
        total = 0.0
        for a, b in zip(path, path[1:]):
            w = self.arc_weight(a, b)
            if not np.isfinite(w):
                raise InvalidGraphError(f"path uses missing arc ({a}, {b})")
            total += w
        return total

    def relay_cost(self, path: Sequence[int]) -> float:
        """Path cost excluding the source's own first transmission.

        This mirrors the node model's "internal cost" convention (II.C):
        the payment-to-cost ratios of Section III.G compare payments to the
        cost borne by *relay* nodes.
        """
        if len(path) <= 1:
            return 0.0
        return self.path_cost(path) - self.arc_weight(path[0], path[1])

    # -- conversions --------------------------------------------------------------

    def reverse(self) -> "LinkWeightedDigraph":
        """The reverse digraph (arc ``v -> u`` for every ``u -> v``), cached."""
        if self._rev is None:
            rev = LinkWeightedDigraph(
                self.n, ((v, u, w) for u, v, w in self.arc_iter())
            )
            rev._rev = self
            self._rev = rev
        return self._rev

    def to_scipy_csr(self):
        """CSR sparse matrix of arc weights (cached; do not mutate).

        Zero-weight arcs are nudged to a tiny positive value so scipy's
        sparse representation does not drop them; the nudge (1e-300) is far
        below any cost resolution used by the library.
        """
        if self._csr is None:
            from scipy.sparse import csr_matrix

            data = self.weights.copy()
            data[data == 0.0] = 1e-300
            self._csr = csr_matrix(
                (data, self.indices.copy(), self.indptr.copy()),
                shape=(self.n, self.n),
            )
        return self._csr

    def to_networkx(self):
        """Convert to ``networkx.DiGraph`` with a ``weight`` arc attribute."""
        import networkx as nx

        g = nx.DiGraph()
        g.add_nodes_from(range(self.n))
        g.add_weighted_edges_from(self.arc_iter())
        return g

    # -- dunder ---------------------------------------------------------------

    def __repr__(self) -> str:
        return f"LinkWeightedDigraph(n={self.n}, arcs={self.num_arcs})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LinkWeightedDigraph):
            return NotImplemented
        return (
            self.n == other.n
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
            and np.array_equal(self.weights, other.weights)
        )

    def __hash__(self) -> int:
        return hash((self.n, self.indices.tobytes(), self.weights.tobytes()))
