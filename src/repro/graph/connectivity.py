"""Connectivity analysis: the paper's monopoly-freeness preconditions.

Section II.B assumes the communication graph is *node biconnected* so that
no single relay can hold the source to ransom (its VCG payment would be
unbounded); Section III.E's neighbour-collusion scheme strengthens this to
"``G \\ N(v_k)`` is connected for every ``v_k``"; the link model needs the
directed analogue "every node still reaches the access point after any
single other node fails".

This module implements all three checks from scratch (iterative Tarjan for
articulation points; BFS for reachability; a dominator-based single-failure
check for digraphs), with networkx used only in tests as an oracle.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.graph.link_graph import LinkWeightedDigraph
from repro.graph.node_graph import NodeWeightedGraph
from repro.utils.validation import check_node_index

__all__ = [
    "is_connected",
    "connected_component",
    "articulation_points",
    "is_biconnected",
    "neighborhood_removal_safe",
    "is_strongly_connected",
    "single_failure_robust",
    "reaches_root_after_removal",
    "hop_distances",
    "hop_diameter",
]


# ---------------------------------------------------------------------------
# Undirected (node-weighted model)
# ---------------------------------------------------------------------------


def hop_distances(g: NodeWeightedGraph, start: int) -> np.ndarray:
    """Unweighted BFS hop counts from ``start`` (-1 for unreachable)."""
    from collections import deque

    start = check_node_index(start, g.n)
    dist = np.full(g.n, -1, dtype=np.int64)
    dist[start] = 0
    q = deque([start])
    while q:
        u = q.popleft()
        for w in g.neighbors(u):
            if dist[w] < 0:
                dist[w] = dist[u] + 1
                q.append(int(w))
    return dist


def hop_diameter(g: NodeWeightedGraph) -> int:
    """Largest hop distance between any connected pair (0 for n <= 1).

    The quantity that governs distributed convergence: information
    propagates one hop per round, so stage 1 needs ~diameter rounds and
    the Feigenbaum-style stage 2 at most ``d'`` rounds (the paper quotes
    ``d' = max over k of the diameter of G - v_k``). Exact all-source BFS;
    fine for the evaluation sizes.
    """
    best = 0
    for s in range(g.n):
        d = hop_distances(g, s)
        reachable = d[d >= 0]
        if reachable.size:
            best = max(best, int(reachable.max()))
    return best


def connected_component(
    g: NodeWeightedGraph,
    start: int,
    forbidden: Iterable[int] | None = None,
) -> np.ndarray:
    """Boolean mask of the component of ``start`` in ``G \\ forbidden``."""
    start = check_node_index(start, g.n)
    seen = np.zeros(g.n, dtype=bool)
    if forbidden is not None:
        blocked = np.zeros(g.n, dtype=bool)
        for v in forbidden:
            blocked[check_node_index(v, g.n)] = True
        if blocked[start]:
            raise ValueError(f"start node {start} is forbidden")
    else:
        blocked = None
    stack = [start]
    seen[start] = True
    while stack:
        u = stack.pop()
        for w in g.neighbors(u):
            if not seen[w] and (blocked is None or not blocked[w]):
                seen[w] = True
                stack.append(int(w))
    return seen


def is_connected(g: NodeWeightedGraph) -> bool:
    """True if the undirected graph is connected (vacuously for n <= 1)."""
    if g.n <= 1:
        return True
    return bool(connected_component(g, 0).all())


def articulation_points(g: NodeWeightedGraph) -> list[int]:
    """All articulation points (cut vertices), via iterative Tarjan DFS.

    A node is an articulation point iff removing it increases the number
    of connected components. Works on disconnected graphs (each component
    is processed independently).
    """
    n = g.n
    disc = np.full(n, -1, dtype=np.int64)  # discovery times
    low = np.zeros(n, dtype=np.int64)
    is_art = np.zeros(n, dtype=bool)
    timer = 0
    for start in range(n):
        if disc[start] != -1:
            continue
        root_children = 0
        # Stack frames: (node, parent, iterator position into neighbors).
        stack = [(start, -1, 0)]
        disc[start] = low[start] = timer
        timer += 1
        while stack:
            u, parent, i = stack[-1]
            nbrs = g.neighbors(u)
            if i < len(nbrs):
                stack[-1] = (u, parent, i + 1)
                w = int(nbrs[i])
                if disc[w] == -1:
                    if u == start:
                        root_children += 1
                    disc[w] = low[w] = timer
                    timer += 1
                    stack.append((w, u, 0))
                elif w != parent:
                    low[u] = min(low[u], disc[w])
            else:
                stack.pop()
                if stack:
                    pu = stack[-1][0]
                    low[pu] = min(low[pu], low[u])
                    if pu != start and low[u] >= disc[pu]:
                        is_art[pu] = True
        if root_children > 1:
            is_art[start] = True
    return [int(v) for v in np.nonzero(is_art)[0]]


def is_biconnected(g: NodeWeightedGraph) -> bool:
    """The paper's Section II.B precondition: connected with no cut vertex.

    Graphs with fewer than 3 nodes follow the usual convention: a single
    edge (n == 2) is biconnected, an isolated pair is not.
    """
    if g.n <= 1:
        return True
    if not is_connected(g):
        return False
    if g.n == 2:
        return g.num_edges == 1
    return not articulation_points(g)


def neighborhood_removal_safe(
    g: NodeWeightedGraph,
    source: int,
    target: int,
    groups: Iterable[Iterable[int]] | None = None,
) -> bool:
    """Section III.E precondition for the collusion-resistant scheme.

    True iff for every group ``Q`` in ``groups`` not containing the
    endpoints, ``source`` and ``target`` remain connected in ``G \\ Q``.
    With ``groups=None`` the closed neighbourhoods ``N(v_k)`` of all nodes
    ``v_k`` other than the endpoints are used (the paper's default).
    """
    source = check_node_index(source, g.n)
    target = check_node_index(target, g.n)
    if groups is None:
        groups = (
            g.closed_neighborhood(k)
            for k in range(g.n)
            if k not in (source, target)
        )
    for group in groups:
        group = set(int(v) for v in group)
        group.discard(source)
        group.discard(target)
        if not group:
            continue
        comp = connected_component(g, source, forbidden=group)
        if not comp[target]:
            return False
    return True


# ---------------------------------------------------------------------------
# Directed (link-weighted model)
# ---------------------------------------------------------------------------


def _reachable_from(dg: LinkWeightedDigraph, start: int, skip: int = -1) -> np.ndarray:
    seen = np.zeros(dg.n, dtype=bool)
    if start == skip:
        raise ValueError("start node cannot be skipped")
    seen[start] = True
    stack = [start]
    while stack:
        u = stack.pop()
        heads, _ = dg.out_neighbors(u)
        for w in heads:
            if not seen[w] and w != skip:
                seen[w] = True
                stack.append(int(w))
    return seen


def is_strongly_connected(dg: LinkWeightedDigraph) -> bool:
    """True if every node reaches every other node (two BFS passes)."""
    if dg.n <= 1:
        return True
    return bool(
        _reachable_from(dg, 0).all() and _reachable_from(dg.reverse(), 0).all()
    )


def reaches_root_after_removal(
    dg: LinkWeightedDigraph, root: int, removed: int
) -> np.ndarray:
    """Mask of nodes that still have a directed path to ``root`` in
    ``G \\ removed`` (computed by BFS on the reverse graph)."""
    root = check_node_index(root, dg.n)
    removed = check_node_index(removed, dg.n)
    if removed == root:
        raise ValueError("cannot remove the root")
    return _reachable_from(dg.reverse(), root, skip=removed)


def single_failure_robust(dg: LinkWeightedDigraph, root: int) -> bool:
    """Directed monopoly-freeness: after removing any single node ``k``
    (``k != root``), every remaining node still reaches ``root``.

    Equivalent formulation via dominators: in the reverse digraph rooted at
    ``root``, no node may have a dominator other than ``root`` and itself.
    We use the dominator characterization (one ``networkx``
    ``immediate_dominators`` pass, O(m α(n))) instead of ``n`` BFS runs.
    """
    root = check_node_index(root, dg.n)
    import networkx as nx

    rev = dg.reverse().to_networkx()
    if rev.number_of_nodes() <= 1:
        return True
    idom = nx.immediate_dominators(rev, root)
    # (Some networkx versions omit the root's self-entry; require every
    # non-root node to be present and immediately dominated by the root.)
    return all(
        idom.get(v) == root for v in range(dg.n) if v != root
    )
