"""Dijkstra shortest paths for both graph models, with two backends.

Backends
--------
``"python"``
    A pure-Python Dijkstra over the CSR adjacency using the library's
    :class:`~repro.utils.heap.IndexedMinHeap`. Clear, allocation-light,
    supports a ``forbidden`` node mask directly. This is the reference
    implementation the property tests trust.

``"scipy"``
    ``scipy.sparse.csgraph.dijkstra`` on a cached sparse matrix — the
    compiled path used by the evaluation sweeps (per the HPC guides:
    after the algorithmic work is done, push the inner loop into
    compiled code). Node-weighted graphs go through the directed
    tail-cost edge-weight transform, which reproduces the python
    backend's ``dist`` floats bit-for-bit.

``"auto"``
    ``scipy`` when available and applicable, else ``python``.

All functions return a :class:`~repro.graph.spt.ShortestPathTree`.
Distances follow the owning model's convention: *internal node cost* for
:class:`NodeWeightedGraph` and *total arc weight* for
:class:`LinkWeightedDigraph`.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.errors import GraphError
from repro.graph.link_graph import LinkWeightedDigraph
from repro.graph.node_graph import NodeWeightedGraph
from repro.graph.spt import ShortestPathTree
from repro.obs.metrics import REGISTRY as _metrics
from repro.utils.heap import IndexedMinHeap
from repro.utils.validation import check_node_index

__all__ = [
    "node_weighted_spt",
    "node_weighted_spt_many",
    "link_weighted_spt",
    "shortest_path_tree",
    "node_weighted_distance",
    "link_weighted_distance",
]

_BACKENDS = ("auto", "python", "scipy")


def _forbidden_mask(n: int, forbidden) -> np.ndarray | None:
    if forbidden is None:
        return None
    mask = np.zeros(n, dtype=bool)
    if isinstance(forbidden, np.ndarray) and forbidden.dtype == bool:
        if forbidden.shape != (n,):
            raise GraphError(
                f"boolean forbidden mask must have shape ({n},), "
                f"got {forbidden.shape}"
            )
        mask |= forbidden
    else:
        for v in forbidden:
            mask[check_node_index(v, n)] = True
    return mask if mask.any() else None


def _check_backend(backend: str) -> str:
    if backend not in _BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; expected one of {_BACKENDS}")
    return backend


def _flush_python_counters(pushes: int, pops: int, relaxations: int) -> None:
    """Record one pure-Python Dijkstra run's operation counts.

    The loop accumulates plain local ints; this single guarded flush is
    the only registry interaction, so the disabled-mode cost is one
    attribute check per SPT build.
    """
    if _metrics.enabled:
        _metrics.add("dijkstra.runs", 1)
        _metrics.add("dijkstra.heap_pushes", pushes)
        _metrics.add("dijkstra.heap_pops", pops)
        _metrics.add("dijkstra.edge_relaxations", relaxations)


def _flush_scipy_counters(spt: ShortestPathTree) -> ShortestPathTree:
    """Record one compiled-backend run (no per-op counts are visible)."""
    if _metrics.enabled:
        _metrics.add("dijkstra.runs", 1)
        _metrics.add("dijkstra.scipy_runs", 1)
        _metrics.add(
            "dijkstra.settled_nodes", int(np.isfinite(spt.dist).sum())
        )
    return spt


# ---------------------------------------------------------------------------
# Node-weighted model
# ---------------------------------------------------------------------------


def node_weighted_spt(
    g: NodeWeightedGraph,
    root: int,
    forbidden: Iterable[int] | np.ndarray | None = None,
    backend: str = "auto",
) -> ShortestPathTree:
    """SPT from ``root`` where a path costs the sum of its internal nodes.

    ``dist[x]`` is the least cost of a ``root -> x`` path counting neither
    ``costs[root]`` nor ``costs[x]`` (paper Section II.C). ``forbidden``
    nodes are treated as removed from the graph; asking for an SPT rooted
    at a forbidden node is an error.
    """
    root = check_node_index(root, g.n)
    mask = _forbidden_mask(g.n, forbidden)
    if mask is not None and mask[root]:
        raise GraphError(f"root {root} is in the forbidden set")
    backend = _check_backend(backend)
    if backend == "auto":
        # The compiled path pays off only on large instances without a
        # forbidden mask (masking requires rebuilding the matrix).
        backend = "scipy" if (mask is None and g.n >= 64) else "python"
    if backend == "scipy" and mask is None:
        return _node_spt_scipy(g, root)
    return _node_spt_python(g, root, mask)


def _node_spt_python(
    g: NodeWeightedGraph, root: int, mask: np.ndarray | None
) -> ShortestPathTree:
    n = g.n
    dist = np.full(n, np.inf)
    parent = np.full(n, -1, dtype=np.int64)
    done = np.zeros(n, dtype=bool)
    if mask is not None:
        done |= mask  # never settle forbidden nodes
    heap = IndexedMinHeap(n)
    dist[root] = 0.0
    heap.push(root, 0.0)
    costs, indptr, indices = g.costs, g.indptr, g.indices
    pushes, pops, relaxations = 1, 0, 0
    while heap:
        u, du = heap.pop()
        pops += 1
        if done[u]:
            continue
        done[u] = True
        # Leaving u adds u's own relaying cost — unless u is the source,
        # which sends its own packet for free under the II.C convention.
        step = du + (costs[u] if u != root else 0.0)
        for w in indices[indptr[u] : indptr[u + 1]]:
            if done[w]:
                continue
            relaxations += 1
            if step < dist[w]:
                dist[w] = step
                parent[w] = u
                heap.push(int(w), step)
                pushes += 1
    _flush_python_counters(pushes, pops, relaxations)
    if mask is not None:
        dist[mask] = np.inf
        parent[mask] = -1
    return ShortestPathTree(root, dist, parent)


def _node_spt_scipy(g: NodeWeightedGraph, root: int) -> ShortestPathTree:
    from scipy.sparse import csr_matrix
    from scipy.sparse.csgraph import dijkstra as sp_dijkstra

    mat = g.to_tailcost_matrix()
    # The source relays its own packet for free (Section II.C): nudge its
    # outgoing arcs to ~0 (an exact 0 would read as a missing arc). The
    # cached matrix is shared — the engine's read lock admits concurrent
    # builders for different roots, and a concurrent batched solve reads
    # it too — so it must never be patched in place: clone the data
    # vector, patch the clone, and wrap it with the shared index arrays
    # (``copy=False``). The clone is O(m) floats, far below the solve.
    lo, hi = int(mat.indptr[root]), int(mat.indptr[root + 1])
    data = mat.data.copy()
    data[lo:hi] = 1e-300
    patched = csr_matrix(
        (data, mat.indices, mat.indptr), shape=mat.shape, copy=False
    )
    dist, pred = sp_dijkstra(
        patched,
        directed=True,
        indices=root,
        return_predecessors=True,
    )
    dist = np.where(np.isfinite(dist), dist, np.inf)
    # Clip the zero-cost nudges back to exact zeros.
    dist[dist < 1e-250] = 0.0
    dist[root] = 0.0
    parent = pred.astype(np.int64)
    parent[parent < 0] = -1
    return _flush_scipy_counters(ShortestPathTree(root, dist, parent))


def node_weighted_spt_many(
    g: NodeWeightedGraph,
    sources: Iterable[int],
    backend: str = "auto",
) -> dict[int, ShortestPathTree]:
    """SPTs from every *distinct* source in one pass; ``{root: tree}``.

    Batch pricing (``pairwise_vcg_payments``, ``Engine.price_many``)
    needs one tree per distinct endpoint. Building them one
    ``node_weighted_spt`` call at a time pays a Python round-trip, an
    O(m) matrix patch and scipy's per-call validation for every source;
    this entry point pays them **once**: all sources are solved by a
    single ``scipy.sparse.csgraph.dijkstra(indices=...)`` call over one
    augmented matrix derived from the graph's cached tail-cost CSR.

    Each tree is bit-identical to ``node_weighted_spt(g, s, backend)``
    for the same backend (the ``python`` backend is the scalar-loop
    oracle; ``scipy``'s batched path reproduces the per-source floats
    exactly — see ``_node_spt_many_scipy``). Duplicate sources collapse;
    an empty iterable returns ``{}``. A ``forbidden`` mask is not
    supported here — masked builds go through the per-source API.
    """
    seen: dict[int, None] = {}
    for s in sources:
        seen.setdefault(check_node_index(s, g.n), None)
    roots = list(seen)
    backend = _check_backend(backend)
    if not roots:
        return {}
    if backend == "auto":
        backend = "scipy" if (g.n >= 64 and len(roots) > 1) else "python"
    if backend != "scipy" or len(roots) == 1:
        return {
            s: node_weighted_spt(g, s, backend=backend) for s in roots
        }
    return _node_spt_many_scipy(g, roots)


def _node_spt_many_scipy(
    g: NodeWeightedGraph, roots: list[int]
) -> dict[int, ShortestPathTree]:
    """All-sources solve over one augmented matrix, one compiled call.

    The per-source scipy path nudges the *root's* outgoing arcs to
    ~0 so the source relays its own packet for free (Section II.C).
    That patch is per-source, so a single shared matrix cannot serve
    every root directly. Instead, each root ``s`` gets a **virtual
    source** row ``n + i`` replaying ``s``'s outgoing arcs at the same
    1e-300 nudge; the first block of the matrix is the unmodified
    tail-cost CSR. A shortest path ``n+i -> x`` then performs exactly
    the float additions of the per-source path ``s -> x`` (first arc
    1e-300, then the same tail costs left to right), and paths that
    re-enter ``s`` at its full cost are never shorter than their
    shortcut through the virtual row (float addition of non-negatives
    is monotone), so the returned ``dist`` arrays are bit-identical to
    the per-source ones. Virtual predecessors are mapped back to ``s``.
    """
    from scipy.sparse import csr_matrix
    from scipy.sparse.csgraph import dijkstra as sp_dijkstra

    n = g.n
    k = len(roots)
    base = g.to_tailcost_matrix()
    src = np.asarray(roots, dtype=np.int64)
    deg = (g.indptr[src + 1] - g.indptr[src]).astype(np.int64)
    total = int(deg.sum())
    if total:
        vidx = np.concatenate(
            [g.indices[g.indptr[s] : g.indptr[s + 1]] for s in roots]
        )
    else:
        vidx = np.empty(0, dtype=np.int64)
    data = np.concatenate([base.data, np.full(total, 1e-300)])
    indices = np.concatenate(
        [np.asarray(base.indices, dtype=np.int64), vidx]
    )
    indptr = np.concatenate(
        [
            np.asarray(base.indptr, dtype=np.int64),
            int(base.indptr[-1]) + np.cumsum(deg),
        ]
    )
    aug = csr_matrix((data, indices, indptr), shape=(n + k, n + k))
    dist_all, pred_all = sp_dijkstra(
        aug,
        directed=True,
        indices=np.arange(n, n + k),
        return_predecessors=True,
    )
    out: dict[int, ShortestPathTree] = {}
    for i, s in enumerate(roots):
        row = dist_all[i, :n]
        dist = np.where(np.isfinite(row), row, np.inf)
        # Clip the zero-cost nudges back to exact zeros (same clip as
        # the per-source path).
        dist[dist < 1e-250] = 0.0
        dist[s] = 0.0
        parent = pred_all[i, :n].astype(np.int64)
        parent[parent == n + i] = s
        parent[parent < 0] = -1
        parent[s] = -1
        out[s] = _flush_scipy_counters(ShortestPathTree(s, dist, parent))
    if _metrics.enabled:
        _metrics.add("dijkstra.batched_runs", 1)
        _metrics.add("dijkstra.batched_sources", k)
    return out


def node_weighted_distance(
    g: NodeWeightedGraph,
    source: int,
    target: int,
    forbidden: Iterable[int] | np.ndarray | None = None,
    backend: str = "auto",
) -> float:
    """Least internal-node cost of a ``source -> target`` path (``inf`` if
    disconnected). Convenience wrapper over :func:`node_weighted_spt`."""
    if source == target:
        return 0.0
    spt = node_weighted_spt(g, source, forbidden=forbidden, backend=backend)
    return float(spt.dist[check_node_index(target, g.n)])


# ---------------------------------------------------------------------------
# Link-weighted model
# ---------------------------------------------------------------------------


def link_weighted_spt(
    dg: LinkWeightedDigraph,
    root: int,
    direction: str = "from",
    forbidden: Iterable[int] | np.ndarray | None = None,
    backend: str = "auto",
) -> ShortestPathTree:
    """SPT in the directed link-cost model.

    ``direction="from"`` gives shortest paths *from* the root (``dist[x]``
    = weight of the best ``root -> x`` path, ``parent[x]`` its predecessor).
    ``direction="to"`` gives shortest paths *toward* the root, the shape the
    unicast problem needs (everyone routes to the access point): ``dist[x]``
    = weight of the best ``x -> root`` path and ``parent[x]`` is the **next
    hop** of ``x`` on that path.
    """
    root = check_node_index(root, dg.n)
    if direction not in ("from", "to"):
        raise ValueError(f"direction must be 'from' or 'to', got {direction!r}")
    mask = _forbidden_mask(dg.n, forbidden)
    if mask is not None and mask[root]:
        raise GraphError(f"root {root} is in the forbidden set")
    backend = _check_backend(backend)
    graph = dg if direction == "from" else dg.reverse()
    if backend == "auto":
        backend = "scipy" if (mask is None and dg.n >= 64) else "python"
    if backend == "scipy" and mask is None:
        return _link_spt_scipy(graph, root)
    return _link_spt_python(graph, root, mask)


def _link_spt_python(
    dg: LinkWeightedDigraph, root: int, mask: np.ndarray | None
) -> ShortestPathTree:
    n = dg.n
    dist = np.full(n, np.inf)
    parent = np.full(n, -1, dtype=np.int64)
    done = np.zeros(n, dtype=bool)
    if mask is not None:
        done |= mask
    heap = IndexedMinHeap(n)
    dist[root] = 0.0
    heap.push(root, 0.0)
    indptr, indices, weights = dg.indptr, dg.indices, dg.weights
    pushes, pops, relaxations = 1, 0, 0
    while heap:
        u, du = heap.pop()
        pops += 1
        if done[u]:
            continue
        done[u] = True
        for e in range(indptr[u], indptr[u + 1]):
            w = indices[e]
            if done[w]:
                continue
            relaxations += 1
            cand = du + weights[e]
            if cand < dist[w]:
                dist[w] = cand
                parent[w] = u
                heap.push(int(w), cand)
                pushes += 1
    _flush_python_counters(pushes, pops, relaxations)
    if mask is not None:
        dist[mask] = np.inf
        parent[mask] = -1
    return ShortestPathTree(root, dist, parent)


def _link_spt_scipy(dg: LinkWeightedDigraph, root: int) -> ShortestPathTree:
    from scipy.sparse.csgraph import dijkstra as sp_dijkstra

    dist, pred = sp_dijkstra(
        dg.to_scipy_csr(),
        directed=True,
        indices=root,
        return_predecessors=True,
    )
    dist = np.where(np.isfinite(dist), dist, np.inf)
    # Undo the zero-weight nudge (1e-300 per arc is below float resolution
    # after any realistic cost, but be explicit for all-zero toy graphs).
    dist[dist < 1e-250] = 0.0
    parent = pred.astype(np.int64)
    parent[parent < 0] = -1
    return _flush_scipy_counters(ShortestPathTree(root, dist, parent))


def link_weighted_distance(
    dg: LinkWeightedDigraph,
    source: int,
    target: int,
    forbidden: Iterable[int] | np.ndarray | None = None,
    backend: str = "auto",
) -> float:
    """Weight of the least-cost directed ``source -> target`` path."""
    if source == target:
        return 0.0
    spt = link_weighted_spt(
        dg, source, direction="from", forbidden=forbidden, backend=backend
    )
    return float(spt.dist[check_node_index(target, dg.n)])


# ---------------------------------------------------------------------------
# Generic dispatcher
# ---------------------------------------------------------------------------


def shortest_path_tree(graph, root: int, **kwargs) -> ShortestPathTree:
    """Dispatch to the model-appropriate SPT builder."""
    if isinstance(graph, NodeWeightedGraph):
        return node_weighted_spt(graph, root, **kwargs)
    if isinstance(graph, LinkWeightedDigraph):
        return link_weighted_spt(graph, root, **kwargs)
    raise TypeError(f"unsupported graph type {type(graph)!r}")
