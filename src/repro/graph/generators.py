"""Graph generators: random instances, structured families, paper figures.

Random generators guarantee the paper's monopoly-freeness preconditions by
construction (a random Hamiltonian cycle is biconnected; extra edges only
help) rather than by rejection, so property tests never stall hunting for
a feasible topology. Wireless deployments with geometric structure live in
:mod:`repro.wireless.deployment`; this module covers abstract topologies
and the worked examples of Figures 2 and 4.
"""

from __future__ import annotations

import numpy as np

from repro.graph.link_graph import LinkWeightedDigraph
from repro.graph.node_graph import NodeWeightedGraph
from repro.utils.rng import as_rng

__all__ = [
    "cycle_graph",
    "grid_graph",
    "theta_graph",
    "random_biconnected_graph",
    "random_robust_digraph",
    "random_costs",
    "fig2_example",
    "fig4_example",
]


def random_costs(
    n: int, low: float = 1.0, high: float = 10.0, seed=None
) -> np.ndarray:
    """Uniform node costs in ``[low, high]`` (the evaluation's assumption
    that "the cost of each node is chosen independently and uniformly from
    a range")."""
    if not 0 <= low <= high:
        raise ValueError(f"need 0 <= low <= high, got [{low}, {high}]")
    return as_rng(seed).uniform(low, high, size=n)


def cycle_graph(costs) -> NodeWeightedGraph:
    """Cycle on ``len(costs)`` nodes — the smallest biconnected family."""
    n = len(costs)
    if n < 3:
        raise ValueError(f"a cycle needs at least 3 nodes, got {n}")
    edges = [(i, (i + 1) % n) for i in range(n)]
    return NodeWeightedGraph(n, edges, costs)


def grid_graph(rows: int, cols: int, costs) -> NodeWeightedGraph:
    """``rows x cols`` grid, node ``r * cols + c`` at row ``r`` column ``c``.

    Grids with both dimensions >= 2 are biconnected.
    """
    if rows < 1 or cols < 1:
        raise ValueError(f"grid dimensions must be positive, got {rows}x{cols}")
    n = rows * cols
    if len(costs) != n:
        raise ValueError(f"need {n} costs for a {rows}x{cols} grid, got {len(costs)}")
    edges = []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                edges.append((v, v + 1))
            if r + 1 < rows:
                edges.append((v, v + cols))
    return NodeWeightedGraph(n, edges, costs)


def theta_graph(branch_costs: list[list[float]]) -> tuple[NodeWeightedGraph, int, int]:
    """Node-disjoint parallel paths between a source and a target.

    ``branch_costs[b]`` lists the relay costs of branch ``b`` (possibly
    empty for a direct edge). Returns ``(graph, source, target)`` with the
    source at index 0 and the target at index 1; both endpoints get cost 0
    (their costs never enter any path cost).

    Theta graphs are the canonical instances for reasoning about VCG
    overpayment: the payment to every relay on the cheapest branch is its
    cost plus the gap to the second-cheapest branch.
    """
    if len(branch_costs) < 2:
        raise ValueError("a theta graph needs at least two branches")
    costs = [0.0, 0.0]
    edges = []
    for branch in branch_costs:
        prev = 0  # source
        for c in branch:
            idx = len(costs)
            costs.append(float(c))
            edges.append((prev, idx))
            prev = idx
        edges.append((prev, 1))
    g = NodeWeightedGraph(len(costs), edges, costs)
    return g, 0, 1


def circulant_graph(n: int, offsets: tuple[int, ...], costs) -> NodeWeightedGraph:
    """Circulant graph ``C_n(offsets)``: node ``i`` links to ``i +- o``.

    ``C_n(1, 2)`` is the canonical family satisfying the Section III.E
    precondition: every closed neighbourhood is a run of 5 consecutive
    nodes, whose removal leaves the remaining arc of the cycle connected
    (for ``n >= 8``). Used to exercise the neighbour-collusion scheme on
    instances where it is well-defined.
    """
    if len(costs) != n:
        raise ValueError(f"need {n} costs, got {len(costs)}")
    if not offsets or any(not 1 <= o < n for o in offsets):
        raise ValueError(f"offsets must be in [1, n), got {offsets}")
    edges = set()
    for i in range(n):
        for o in offsets:
            j = (i + o) % n
            if i != j:
                edges.add((min(i, j), max(i, j)))
    return NodeWeightedGraph(n, edges, costs)


def random_neighbor_safe_graph(
    n: int,
    cost_low: float = 1.0,
    cost_high: float = 10.0,
    seed=None,
) -> NodeWeightedGraph:
    """Random-cost ``C_n(1, 2)`` — guaranteed ``G \\ N(v_k)`` connected.

    The smallest standard family on which the neighbour-collusion scheme
    of Section III.E is always well-defined; costs are uniform random.
    """
    if n < 8:
        raise ValueError(f"need n >= 8 for neighbourhood-removal safety, got {n}")
    costs = as_rng(seed).uniform(cost_low, cost_high, size=n)
    return circulant_graph(n, (1, 2), costs)


def random_biconnected_graph(
    n: int,
    extra_edge_prob: float = 0.15,
    cost_low: float = 1.0,
    cost_high: float = 10.0,
    seed=None,
) -> NodeWeightedGraph:
    """Random biconnected node-weighted graph (cycle + random chords).

    A Hamiltonian cycle over a random node permutation guarantees
    biconnectivity; every remaining pair becomes a chord independently
    with probability ``extra_edge_prob``. Costs are uniform in
    ``[cost_low, cost_high]``.
    """
    if n < 3:
        raise ValueError(f"need n >= 3 for a biconnected graph, got {n}")
    rng = as_rng(seed)
    perm = rng.permutation(n)
    edges = [(int(perm[i]), int(perm[(i + 1) % n])) for i in range(n)]
    if extra_edge_prob > 0:
        iu, ju = np.triu_indices(n, k=1)
        pick = rng.random(iu.shape[0]) < extra_edge_prob
        edges.extend(zip(iu[pick].tolist(), ju[pick].tolist()))
    costs = rng.uniform(cost_low, cost_high, size=n)
    return NodeWeightedGraph(n, edges, costs)


def random_robust_digraph(
    n: int,
    extra_arc_prob: float = 0.15,
    weight_low: float = 1.0,
    weight_high: float = 10.0,
    seed=None,
) -> LinkWeightedDigraph:
    """Random link-weighted digraph that is single-failure robust.

    A bidirected Hamiltonian cycle guarantees that removing any one node
    leaves a path between every remaining pair; extra arcs are added
    independently per ordered pair. Weights are uniform in
    ``[weight_low, weight_high]`` independently per arc (asymmetric).
    """
    if n < 3:
        raise ValueError(f"need n >= 3 for a robust digraph, got {n}")
    rng = as_rng(seed)
    perm = rng.permutation(n)
    pairs = set()
    for i in range(n):
        u, v = int(perm[i]), int(perm[(i + 1) % n])
        pairs.add((u, v))
        pairs.add((v, u))
    if extra_arc_prob > 0:
        mask = rng.random((n, n)) < extra_arc_prob
        np.fill_diagonal(mask, False)
        src, dst = np.nonzero(mask)
        pairs.update(zip(src.tolist(), dst.tolist()))
    arcs = [
        (u, v, float(w))
        for (u, v), w in zip(
            sorted(pairs), rng.uniform(weight_low, weight_high, size=len(pairs))
        )
    ]
    return LinkWeightedDigraph(n, arcs)


def fig2_example() -> tuple[NodeWeightedGraph, int, int]:
    """The Figure-2 phenomenon: a source gains by hiding a link.

    The paper's figure is not numerically specified in the text, so this is
    a reconstruction with the identical structure: three node-disjoint
    branches between the source ``v_1`` and the access point ``v_0`` —
    a cheap 3-relay branch (costs 1, 1, 1), a mid-priced 1-relay branch
    (cost 5) and an expensive 1-relay branch (cost 7).

    On the true graph the LCP is the 3-relay branch (cost 3) but VCG pays
    each of its relays ``1 + (5 - 3) = 3``, total **9**. If the source
    *hides* its link into the cheap branch, the declared LCP becomes the
    mid branch and the single relay is paid ``5 + (7 - 5) = 7`` — the
    source saves 2 by lying about its neighbourhood, which is why stage 1
    of the distributed protocol must be secured (Algorithm 2).

    Returns ``(graph, source, access_point)``. Node ids: 0 = v_0 (AP),
    1 = v_1 (source), 2-4 = cheap-branch relays, 5 = mid relay,
    6 = expensive relay.
    """
    costs = [0.0, 0.0, 1.0, 1.0, 1.0, 5.0, 7.0]
    edges = [
        (1, 2), (2, 3), (3, 4), (4, 0),  # cheap branch
        (1, 5), (5, 0),                  # mid branch
        (1, 6), (6, 0),                  # expensive branch
    ]
    return NodeWeightedGraph(7, edges, costs), 1, 0


def fig4_example() -> tuple[NodeWeightedGraph, int, int, int]:
    """The Figure-4 phenomenon: resale-the-path collusion.

    The paper's figure gives only derived values (``p_8 = 20``, ``p_4 = 6``,
    ``p_8^4 = 0``, ``c_4 = 5``); this reconstruction has the same
    structure with slightly different magnitudes:

    * source ``v_8``'s LCP to ``v_0`` uses three relays of cost 1 each
      (total 3) whose best detours are expensive, so ``p_8 = 15``;
    * ``v_8``'s neighbour ``v_4`` (cost 5) is **off** that LCP
      (``p_8^4 = 0``) but has its own cheap, barely-contested LCP
      (``p_4 = 2.5``).

    Since ``p_8 = 15 > p_4 + max(p_8^4, c_4) = 7.5``, the pair profits by
    ``v_4`` reselling its path: ``v_8`` hands the traffic to ``v_4``,
    reimburses ``p_4 + c_4 = 7.5``, and they split the 7.5 saving.

    Returns ``(graph, source, access_point, reseller)`` =
    ``(g, 8, 0, 4)``. Node ids: 0 = AP; 1, 2, 3 = LCP relays (cost 1);
    4 = reseller (cost 5); 5, 6 = v_4's relays (costs 2, 2.5);
    7 = expensive detour relay (cost 9); 8 = source (cost 100, so no
    other node routes through it).
    """
    costs = [0.0, 1.0, 1.0, 1.0, 5.0, 2.0, 2.5, 9.0, 100.0]
    edges = [
        (8, 1), (1, 2), (2, 3), (3, 0),  # the source's LCP
        (8, 4),                           # source-reseller link
        (4, 5), (5, 0),                   # reseller's LCP
        (4, 6), (6, 0),                   # reseller's detour
        (8, 7), (7, 0),                   # source's expensive detour
    ]
    return NodeWeightedGraph(9, edges, costs), 8, 0, 4
