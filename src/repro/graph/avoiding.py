"""Node-avoiding shortest paths — the ``P_{-v_k}`` primitive.

VCG payments need, for every relay ``v_k`` on the least cost path, the
cost of the best path that avoids ``v_k`` (Section III.A), and the
collusion-resistant scheme needs the best path avoiding a whole set
``Q(v_k)`` (Section III.E).

This module provides the *naive* oracles (one Dijkstra per removal) that
the fast Algorithm 1 implementation is property-tested against, plus a
vectorized batch routine used by the Figure-3 sweeps: for a fixed access
point, one reverse Dijkstra per removed node yields the avoiding distances
of **all** sources simultaneously, which is what makes 100-instance sweeps
over 500-node networks tractable.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.graph.dijkstra import (
    link_weighted_spt,
    node_weighted_spt,
)
from repro.graph.link_graph import LinkWeightedDigraph
from repro.graph.node_graph import NodeWeightedGraph
from repro.utils.validation import check_node_index

__all__ = [
    "avoiding_distance",
    "avoiding_set_distance",
    "all_avoiding_distances_naive",
    "all_sources_removal_distances",
]


def avoiding_distance(
    graph,
    source: int,
    target: int,
    removed: int,
    backend: str = "auto",
) -> float:
    """Cost of the least cost ``source -> target`` path avoiding ``removed``.

    Works for both graph models; returns ``inf`` when ``removed`` is an
    articulation point separating the endpoints (the monopoly case the
    paper's biconnectivity assumption rules out).
    """
    return avoiding_set_distance(graph, source, target, [removed], backend=backend)


def avoiding_set_distance(
    graph,
    source: int,
    target: int,
    removed: Iterable[int],
    backend: str = "auto",
) -> float:
    """Cost of the least cost path avoiding every node in ``removed``.

    This is ``||P_{-Q(v_k)}(v_i, v_j, d)||`` of Section III.E. ``source``
    and ``target`` must not be in the removed set.
    """
    removed = {check_node_index(v, graph.n) for v in removed}
    source = check_node_index(source, graph.n)
    target = check_node_index(target, graph.n)
    if source in removed or target in removed:
        raise ValueError(
            f"endpoints ({source}, {target}) may not be in the removed set"
        )
    if source == target:
        return 0.0
    if isinstance(graph, NodeWeightedGraph):
        spt = node_weighted_spt(graph, source, forbidden=removed, backend=backend)
    elif isinstance(graph, LinkWeightedDigraph):
        spt = link_weighted_spt(
            graph, source, direction="from", forbidden=removed, backend=backend
        )
    else:
        raise TypeError(f"unsupported graph type {type(graph)!r}")
    return float(spt.dist[target])


def all_avoiding_distances_naive(
    graph,
    source: int,
    target: int,
    candidates: Iterable[int] | None = None,
    backend: str = "auto",
) -> dict[int, float]:
    """Avoiding distance for every candidate node, one Dijkstra each.

    When ``candidates`` is ``None``, the internal nodes of the current
    least cost path are used (the only nodes whose removal can change it,
    and the only ones VCG pays). This is the O(n · (m + n log n)) baseline
    that Section III.B's Algorithm 1 improves on; it doubles as the oracle
    in the fast-algorithm property tests.
    """
    source = check_node_index(source, graph.n)
    target = check_node_index(target, graph.n)
    if candidates is None:
        if isinstance(graph, NodeWeightedGraph):
            spt = node_weighted_spt(graph, source, backend=backend)
        else:
            spt = link_weighted_spt(graph, source, direction="from", backend=backend)
        spt.require_reachable(target)
        candidates = spt.path_from_root(target)[1:-1]
    return {
        int(k): avoiding_distance(graph, source, target, int(k), backend=backend)
        for k in candidates
    }


def all_sources_removal_distances(
    dg: LinkWeightedDigraph,
    root: int,
    removed_nodes: Iterable[int] | None = None,
) -> np.ndarray:
    """Batch ``x -> root`` distances under single-node removals (link model).

    Returns an ``(n, n)`` array ``A`` where ``A[k, i]`` is the weight of the
    least cost directed path from ``i`` to ``root`` in ``G \\ v_k``
    (``inf`` where disconnected; row ``k`` has ``A[k, k] = inf`` and
    ``A[root]`` is the no-removal baseline — removing the access point is
    meaningless, so the root row is computed on the intact graph).

    Implementation: shortest paths *to* ``root`` equal shortest paths
    *from* ``root`` in the reverse digraph, so each removal is one compiled
    ``scipy.sparse.csgraph.dijkstra`` call on a masked arc list. Arc
    masking is a vectorized boolean filter over flat COO arrays — no
    per-arc Python work in the loop (HPC guide: keep the hot loop in
    NumPy/compiled code).
    """
    from scipy.sparse import csr_matrix
    from scipy.sparse.csgraph import dijkstra as sp_dijkstra

    root = check_node_index(root, dg.n)
    n = dg.n
    rev = dg.reverse()
    # Flat COO arrays of the *reverse* graph.
    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(rev.indptr))
    dst = rev.indices
    wts = rev.weights.copy()
    wts[wts == 0.0] = 1e-300  # keep explicit zeros in the sparse matrix

    if removed_nodes is None:
        removed_nodes = range(n)
    removed_nodes = [check_node_index(k, n) for k in removed_nodes]

    out = np.full((n, n), np.inf)
    for k in removed_nodes:
        if k == root:
            keep = slice(None)
        else:
            keep = (src != k) & (dst != k)
        mat = csr_matrix((wts[keep], (src[keep], dst[keep])), shape=(n, n))
        dist = sp_dijkstra(mat, directed=True, indices=root)
        dist = np.where(np.isfinite(dist), dist, np.inf)
        dist[(dist < 1e-250) & np.isfinite(dist)] = 0.0
        if k != root:
            dist[k] = np.inf
        out[k] = dist
    return out
