"""Shortest-path trees (SPTs).

Both the centralized mechanism (Algorithm 1 builds ``SPT(v_i)`` and
``SPT(v_j)``) and the distributed protocol (stage 1 builds the SPT rooted
at the access point) work on the same structure: for a root ``r``, every
reachable node ``x`` stores its distance to/from ``r`` and its *parent* —
the neighbour preceding ``x`` on the shortest ``r -> x`` path.

For the undirected node-weighted model the parent is simultaneously the
next hop from ``x`` toward the root, which is exactly the ``FH`` (first
hop) entry of Algorithm 2's first stage.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.errors import DisconnectedError

__all__ = ["ShortestPathTree"]


class ShortestPathTree:
    """Immutable SPT: root, per-node distance, per-node parent.

    Attributes
    ----------
    root:
        The tree root.
    dist:
        ``dist[x]`` is the shortest-path cost between ``root`` and ``x``
        under the owning model's convention (internal node cost for
        :class:`~repro.graph.node_graph.NodeWeightedGraph`; total arc
        weight for :class:`~repro.graph.link_graph.LinkWeightedDigraph`).
        Unreachable nodes have ``inf``.
    parent:
        ``parent[x]`` is the predecessor of ``x`` on the shortest
        ``root -> x`` path, ``-1`` for the root and unreachable nodes.
    """

    __slots__ = ("root", "dist", "parent", "_children", "_order")

    def __init__(self, root: int, dist: np.ndarray, parent: np.ndarray) -> None:
        self.root = int(root)
        self.dist = np.asarray(dist, dtype=np.float64)
        self.parent = np.asarray(parent, dtype=np.int64)
        if self.dist.shape != self.parent.shape:
            raise ValueError("dist and parent must have the same shape")
        self.dist.setflags(write=False)
        self.parent.setflags(write=False)
        self._children = None
        self._order = None

    @property
    def n(self) -> int:
        """Number of nodes."""
        return int(self.dist.shape[0])

    def reachable(self, x: int) -> bool:
        """True if the node is reachable from the root."""
        return bool(np.isfinite(self.dist[x]))

    @property
    def reachable_mask(self) -> np.ndarray:
        """Boolean mask of nodes reachable from the root."""
        return np.isfinite(self.dist)

    def require_reachable(self, x: int) -> None:
        """Raise :class:`DisconnectedError` if unreachable."""
        if not self.reachable(x):
            raise DisconnectedError(self.root, int(x))

    # -- paths -------------------------------------------------------------

    def path_from_root(self, x: int) -> list[int]:
        """Node sequence ``root, ..., x`` along the tree."""
        self.require_reachable(x)
        out = []
        cur = int(x)
        guard = self.n + 1
        while cur != -1:
            out.append(cur)
            cur = int(self.parent[cur])
            guard -= 1
            if guard < 0:  # pragma: no cover - corrupt parent array
                raise RuntimeError("parent array contains a cycle")
        out.reverse()
        if out[0] != self.root:  # pragma: no cover - corrupt parent array
            raise RuntimeError("path does not start at the root")
        return out

    def path_to_root(self, x: int) -> list[int]:
        """Node sequence ``x, ..., root`` along the tree (next hops)."""
        return self.path_from_root(x)[::-1]

    def first_hop(self, x: int) -> int:
        """Next hop from ``x`` toward the root (the paper's ``FH`` entry).

        For the root itself this is ``-1``.
        """
        if x == self.root:
            return -1
        self.require_reachable(x)
        return int(self.parent[x])

    def relays(self, x: int) -> list[int]:
        """Internal nodes of the tree path between ``x`` and the root.

        These are exactly the nodes the unicast source ``x`` must pay when
        the destination is the root (endpoints excluded, Section II.C).
        """
        return self.path_from_root(x)[1:-1]

    def hops(self, x: int) -> int:
        """Edge count of the tree path between the root and ``x``."""
        return len(self.path_from_root(x)) - 1

    def hop_counts(self) -> np.ndarray:
        """Vector of hop distances from the root; -1 for unreachable nodes."""
        hops = np.full(self.n, -1, dtype=np.int64)
        hops[self.root] = 0
        for x in self.topological_order():
            if x != self.root:
                hops[x] = hops[self.parent[x]] + 1
        return hops

    def on_tree_path(self, x: int, k: int) -> bool:
        """True if ``k`` lies on the tree path between the root and ``x``."""
        return k in self.path_from_root(x)

    # -- tree structure ------------------------------------------------------

    def children(self) -> list[list[int]]:
        """Child lists per node (cached)."""
        if self._children is None:
            kids: list[list[int]] = [[] for _ in range(self.n)]
            for x in range(self.n):
                p = int(self.parent[x])
                if p >= 0:
                    kids[p].append(x)
            self._children = kids
        return self._children

    def topological_order(self) -> np.ndarray:
        """Reachable nodes in tree preorder (parents before children).

        Lets per-node recurrences (hop counts, subtree labels) run as
        simple loops. Note that ordering by *distance* would not be
        enough: under the internal-node-cost convention the root's
        neighbours are at distance 0, tied with the root itself.
        """
        if self._order is None:
            kids = self.children()
            order = []
            stack = [self.root] if self.reachable(self.root) else []
            while stack:
                u = stack.pop()
                order.append(u)
                stack.extend(kids[u])
            self._order = np.asarray(order, dtype=np.int64)
            self._order.setflags(write=False)
        return self._order

    def subtree(self, x: int) -> set[int]:
        """All descendants of ``x`` in the tree, including ``x``."""
        self.require_reachable(x)
        out = {int(x)}
        stack = [int(x)]
        kids = self.children()
        while stack:
            cur = stack.pop()
            for c in kids[cur]:
                out.add(c)
                stack.append(c)
        return out

    def branch_labels(self, path: Sequence[int]) -> np.ndarray:
        """For a root-starting tree path ``path = [r_0=root, r_1, ..., r_s]``,
        label every reachable node with the index of the *last* path node on
        its tree path from the root.

        This is precisely the ``level`` of Algorithm 1 step 2: node ``v_k``
        has ``level = l`` iff removing ``r_l`` disconnects ``v_k`` from both
        the root and ``r_s`` inside the tree, i.e. the tree path to ``v_k``
        leaves the path ``P`` at ``r_l``. Nodes on the path itself get their
        own index; unreachable nodes get ``-1``.
        """
        path = list(path)
        if not path or path[0] != self.root:
            raise ValueError("path must start at the tree root")
        labels = np.full(self.n, -1, dtype=np.int64)
        labels[np.asarray(path, dtype=np.int64)] = np.arange(
            len(path), dtype=np.int64
        )
        # Every other node inherits the label of its nearest labelled
        # ancestor (the root is labelled, so every reachable chain
        # terminates). Resolve all chains at once by pointer doubling:
        # labelled nodes and parentless nodes absorb via self-loops, then
        # repeatedly squaring the ancestor map halves the unresolved
        # depth, so ceil(log2(depth)) whole-array passes replace the
        # per-node walk. Labels are exact integers; the result is
        # identical to the sequential top-down propagation.
        anc = self.parent.copy()
        idx = np.arange(self.n, dtype=np.int64)
        absorb = (labels >= 0) | (anc < 0)
        anc[absorb] = idx[absorb]
        while True:
            nxt = anc[anc]
            if np.array_equal(nxt, anc):
                break
            anc = nxt
        # Unreachable nodes self-looped at label -1; reachable off-path
        # nodes landed on their last path ancestor.
        return labels[anc]

    # -- dunder ---------------------------------------------------------------

    def __repr__(self) -> str:
        reach = int(self.reachable_mask.sum())
        return (
            f"ShortestPathTree(root={self.root}, n={self.n}, reachable={reach})"
        )

    def __iter__(self) -> Iterator[int]:
        return iter(self.topological_order())
