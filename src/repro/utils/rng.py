"""Deterministic random-number-generator plumbing.

All stochastic code in the library accepts a ``seed`` argument that may be

* ``None`` — fresh OS entropy (only for interactive use),
* an ``int`` — deterministic,
* a :class:`numpy.random.Generator` — used as-is, or
* a :class:`numpy.random.SeedSequence`.

Experiments that run many instances derive one child generator per
instance with :func:`spawn_rngs`, so instance *i* of an experiment is
reproducible in isolation (re-running only instance 17 yields the same
topology as running all 100).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = ["as_rng", "spawn_rngs", "derive_seed"]

SeedLike = "int | None | np.random.Generator | np.random.SeedSequence"


def as_rng(seed=None) -> np.random.Generator:
    """Coerce any seed-like value into a :class:`numpy.random.Generator`.

    Passing an existing ``Generator`` returns it unchanged (so callers can
    thread one generator through a pipeline), anything else constructs a
    fresh PCG64 generator.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.Generator(np.random.PCG64(seed))
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    raise TypeError(
        f"seed must be None, int, Generator or SeedSequence, got {type(seed)!r}"
    )


def spawn_rngs(seed, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent child generators.

    Uses :class:`numpy.random.SeedSequence` spawning, the recommended way
    to get independent streams for parallel or per-instance work.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of rngs: {n}")
    if isinstance(seed, np.random.Generator):
        # Spawn from the generator's bit generator seed sequence.
        seq = seed.bit_generator.seed_seq
        if seq is None:  # pragma: no cover - legacy bit generators
            seq = np.random.SeedSequence()
    elif isinstance(seed, np.random.SeedSequence):
        seq = seed
    else:
        seq = np.random.SeedSequence(seed)
    return [np.random.Generator(np.random.PCG64(child)) for child in seq.spawn(n)]


def derive_seed(base_seed: int, *path: int | str) -> int:
    """Derive a stable 63-bit integer seed from a base seed and a path.

    ``derive_seed(42, "fig3a", 100, 7)`` always yields the same value, and
    differs from any other path. Used by the experiment runner so that the
    instance seed depends on (experiment name, parameter point, instance
    index) but not on execution order.
    """
    import hashlib

    h = hashlib.sha256()
    h.update(str(int(base_seed)).encode())
    for part in path:
        h.update(b"/")
        h.update(str(part).encode())
    return int.from_bytes(h.digest()[:8], "little") & (2**63 - 1)


def shuffled(rng: np.random.Generator, items: Sequence) -> list:
    """Return a shuffled copy of ``items`` (the input is left untouched)."""
    out = list(items)
    rng.shuffle(out)
    return out


def sample_without_replacement(
    rng: np.random.Generator, population: Iterable[int], k: int
) -> list[int]:
    """Sample ``k`` distinct items from ``population``."""
    pool = list(population)
    if k > len(pool):
        raise ValueError(f"cannot sample {k} items from population of {len(pool)}")
    idx = rng.choice(len(pool), size=k, replace=False)
    return [pool[i] for i in idx]
