"""Small shared utilities: RNG handling, validation, an indexed heap, tables.

These are deliberately dependency-light; everything in :mod:`repro.utils`
may be imported by any other subpackage without creating cycles.
"""

from repro.utils.rng import as_rng, spawn_rngs, derive_seed
from repro.utils.heap import IndexedMinHeap, LazyMinHeap
from repro.utils.validation import (
    check_cost_array,
    check_node_index,
    check_probability,
    check_positive,
    check_non_negative,
)
from repro.utils.tables import ascii_table, format_float, series_table

__all__ = [
    "as_rng",
    "spawn_rngs",
    "derive_seed",
    "IndexedMinHeap",
    "LazyMinHeap",
    "check_cost_array",
    "check_node_index",
    "check_probability",
    "check_positive",
    "check_non_negative",
    "ascii_table",
    "format_float",
    "series_table",
]
