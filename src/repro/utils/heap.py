"""Heap data structures used by the shortest-path and payment algorithms.

Two flavours are provided:

* :class:`IndexedMinHeap` — a binary min-heap over integer keys in
  ``[0, capacity)`` supporting ``decrease_key`` in O(log n). This is the
  textbook priority queue Dijkstra wants; keeping our own implementation
  (rather than ``heapq`` with lazy deletion) makes the pure-Python
  reference Dijkstra allocation-free per relaxation and easy to reason
  about in tests.

* :class:`LazyMinHeap` — a thin wrapper over ``heapq`` with lazy deletion
  by a caller-supplied validity predicate. Step 5 of Algorithm 1 (the
  crossing-edge sweep) uses it: every edge is inserted at most once and
  invalidated once, matching the paper's "an edge is added to H at most
  once and deleted from H once".
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterator

import numpy as np

__all__ = ["IndexedMinHeap", "LazyMinHeap"]


class IndexedMinHeap:
    """Binary min-heap over integer items ``0..capacity-1`` with decrease-key.

    Items not currently in the heap have position ``-1``. Priorities are
    floats. The heap never holds duplicates of an item.
    """

    __slots__ = ("_heap", "_pos", "_prio", "_size")

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity}")
        self._heap = np.empty(capacity, dtype=np.int64)
        self._pos = np.full(capacity, -1, dtype=np.int64)
        self._prio = np.empty(capacity, dtype=np.float64)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __contains__(self, item: int) -> bool:
        return self._pos[item] >= 0

    def priority(self, item: int) -> float:
        """Current priority of ``item`` (which must be in the heap)."""
        if self._pos[item] < 0:
            raise KeyError(f"item {item} not in heap")
        return float(self._prio[item])

    def push(self, item: int, priority: float) -> None:
        """Insert ``item``; if present, behave like ``decrease_key`` when
        the new priority is lower (higher priorities are ignored)."""
        if self._pos[item] >= 0:
            if priority < self._prio[item]:
                self.decrease_key(item, priority)
            return
        i = self._size
        self._heap[i] = item
        self._pos[item] = i
        self._prio[item] = priority
        self._size += 1
        self._sift_up(i)

    def decrease_key(self, item: int, priority: float) -> None:
        """Lower the priority of an item already in the heap."""
        pos = self._pos[item]
        if pos < 0:
            raise KeyError(f"item {item} not in heap")
        if priority > self._prio[item]:
            raise ValueError(
                f"decrease_key with larger priority for item {item}: "
                f"{priority} > {self._prio[item]}"
            )
        self._prio[item] = priority
        self._sift_up(int(pos))

    def pop(self) -> tuple[int, float]:
        """Remove and return ``(item, priority)`` with the smallest priority."""
        if self._size == 0:
            raise IndexError("pop from empty heap")
        top = int(self._heap[0])
        prio = float(self._prio[top])
        self._size -= 1
        last = int(self._heap[self._size])
        self._pos[top] = -1
        if self._size > 0:
            self._heap[0] = last
            self._pos[last] = 0
            self._sift_down(0)
        return top, prio

    def peek(self) -> tuple[int, float]:
        """Return (but do not remove) the minimum ``(item, priority)``."""
        if self._size == 0:
            raise IndexError("peek on empty heap")
        top = int(self._heap[0])
        return top, float(self._prio[top])

    # -- internal sifting ---------------------------------------------------

    def _sift_up(self, i: int) -> None:
        heap, pos, prio = self._heap, self._pos, self._prio
        item = heap[i]
        p = prio[item]
        while i > 0:
            parent = (i - 1) >> 1
            if prio[heap[parent]] <= p:
                break
            heap[i] = heap[parent]
            pos[heap[i]] = i
            i = parent
        heap[i] = item
        pos[item] = i

    def _sift_down(self, i: int) -> None:
        heap, pos, prio = self._heap, self._pos, self._prio
        size = self._size
        item = heap[i]
        p = prio[item]
        while True:
            left = 2 * i + 1
            if left >= size:
                break
            child = left
            right = left + 1
            if right < size and prio[heap[right]] < prio[heap[left]]:
                child = right
            if prio[heap[child]] >= p:
                break
            heap[i] = heap[child]
            pos[heap[i]] = i
            i = child
        heap[i] = item
        pos[item] = i


class LazyMinHeap:
    """``heapq`` wrapper with lazy deletion.

    Entries are ``(priority, payload)``. ``pop_valid`` discards entries for
    which ``is_valid(payload)`` is false and returns the first valid
    minimum (or ``None`` when exhausted). ``peek_valid`` is the
    non-destructive variant used by Algorithm 1's sweep, where an entry
    stays valid across several levels ``l``.
    """

    __slots__ = ("_heap", "_counter")

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, object]] = []
        self._counter = 0  # tie-breaker keeps payloads un-compared

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, priority: float, payload: object) -> None:
        """Insert an entry with the given priority."""
        heapq.heappush(self._heap, (priority, self._counter, payload))
        self._counter += 1

    def pop_valid(self, is_valid: Callable[[object], bool]):
        """Pop the minimum valid entry as ``(priority, payload)`` or ``None``."""
        while self._heap:
            priority, _, payload = heapq.heappop(self._heap)
            if is_valid(payload):
                return priority, payload
        return None

    def peek_valid(self, is_valid: Callable[[object], bool]):
        """Drop invalid minima, then return the min entry without removal."""
        while self._heap:
            priority, _, payload = self._heap[0]
            if is_valid(payload):
                return priority, payload
            heapq.heappop(self._heap)
        return None

    def drain(self) -> Iterator[tuple[float, object]]:
        """Yield all remaining entries in priority order (for debugging)."""
        while self._heap:
            priority, _, payload = heapq.heappop(self._heap)
            yield priority, payload
