"""Input validation helpers shared across the library.

The graph classes and mechanisms validate their inputs eagerly so that a
bad cost vector or node index fails at construction with a precise error
instead of surfacing later as a wrong payment.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidGraphError, NodeNotFoundError

__all__ = [
    "check_cost_array",
    "check_node_index",
    "check_probability",
    "check_positive",
    "check_non_negative",
    "as_float_array",
    "as_int_array",
]


def as_float_array(values, name: str = "array") -> np.ndarray:
    """Coerce ``values`` to a contiguous 1-D float64 array."""
    arr = np.ascontiguousarray(values, dtype=np.float64)
    if arr.ndim != 1:
        raise InvalidGraphError(f"{name} must be 1-D, got shape {arr.shape}")
    return arr


def as_int_array(values, name: str = "array") -> np.ndarray:
    """Coerce ``values`` to a contiguous 1-D int64 array."""
    arr = np.ascontiguousarray(values, dtype=np.int64)
    if arr.ndim != 1:
        raise InvalidGraphError(f"{name} must be 1-D, got shape {arr.shape}")
    return arr


def check_cost_array(
    costs, n: int | None = None, name: str = "costs", allow_inf: bool = False
) -> np.ndarray:
    """Validate a cost vector: finite (unless ``allow_inf``), non-negative.

    Returns the validated float64 copy. Infinite entries model unreachable
    links in the link-cost model of Section III.F and are allowed only when
    ``allow_inf`` is set.
    """
    arr = as_float_array(costs, name)
    if n is not None and arr.shape[0] != n:
        raise InvalidGraphError(
            f"{name} has length {arr.shape[0]}, expected {n}"
        )
    if np.isnan(arr).any():
        raise InvalidGraphError(f"{name} contains NaN")
    if not allow_inf and np.isinf(arr).any():
        raise InvalidGraphError(f"{name} contains infinite entries")
    if (arr < 0).any():
        bad = int(np.argmax(arr < 0))
        raise InvalidGraphError(
            f"{name} contains a negative entry at index {bad}: {arr[bad]}"
        )
    return arr


def check_node_index(node: int, n: int) -> int:
    """Validate that ``node`` is a valid index for a graph with ``n`` nodes."""
    node = int(node)
    if not 0 <= node < n:
        raise NodeNotFoundError(node, n)
    return node


def check_probability(value: float, name: str = "probability") -> float:
    """Validate a probability in [0, 1]."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return value


def check_positive(value: float, name: str = "value") -> float:
    """Validate a strictly positive finite number."""
    value = float(value)
    if not np.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be a finite positive number, got {value}")
    return value


def check_non_negative(value: float, name: str = "value") -> float:
    """Validate a non-negative finite number."""
    value = float(value)
    if not np.isfinite(value) or value < 0:
        raise ValueError(f"{name} must be a finite non-negative number, got {value}")
    return value
