"""Plain-text table rendering for experiment output.

The benchmark harness prints the same series the paper plots in Figure 3;
these helpers render them as aligned ASCII tables (and Markdown rows for
EXPERIMENTS.md) without pulling in any plotting dependency.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

__all__ = ["format_float", "ascii_table", "series_table", "markdown_table"]


def format_float(value: float, digits: int = 4) -> str:
    """Format a float compactly; integers render without a trailing '.0'."""
    if value is None:
        return "-"
    value = float(value)
    if np.isnan(value):
        return "nan"
    if np.isinf(value):
        return "inf" if value > 0 else "-inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.{digits}g}"


def _stringify(cell, digits: int) -> str:
    if isinstance(cell, (float, np.floating)):
        return format_float(cell, digits)
    if isinstance(cell, (int, np.integer)):
        return str(int(cell))
    return str(cell)


def ascii_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str | None = None,
    digits: int = 4,
) -> str:
    """Render an aligned ASCII table.

    >>> print(ascii_table(["n", "ratio"], [[100, 1.5], [200, 1.45]]))
    n    ratio
    ---  -----
    100  1.5
    200  1.45
    """
    str_rows = [[_stringify(c, digits) for c in row] for row in rows]
    headers = [str(h) for h in headers]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def series_table(
    x_name: str,
    x_values: Sequence,
    series: Mapping[str, Sequence[float]],
    title: str | None = None,
    digits: int = 4,
) -> str:
    """Render one x-column plus one column per named series.

    This is the canonical rendering of a Figure-3 panel: ``x`` is the
    number of nodes (or hop distance) and each series is a curve.
    """
    names = list(series)
    for name in names:
        if len(series[name]) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(series[name])} points, "
                f"expected {len(x_values)}"
            )
    rows = [
        [x] + [series[name][i] for name in names]
        for i, x in enumerate(x_values)
    ]
    return ascii_table([x_name] + names, rows, title=title, digits=digits)


def markdown_table(
    headers: Sequence[str], rows: Sequence[Sequence], digits: int = 4
) -> str:
    """Render a GitHub-flavoured Markdown table (for EXPERIMENTS.md)."""
    str_rows = [[_stringify(c, digits) for c in row] for row in rows]
    head = "| " + " | ".join(str(h) for h in headers) + " |"
    sep = "|" + "|".join("---" for _ in headers) + "|"
    body = ["| " + " | ".join(row) + " |" for row in str_rows]
    return "\n".join([head, sep] + body)
