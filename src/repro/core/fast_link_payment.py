"""Algorithm 1 adapted to the link-cost model (Section III.F, last claim).

The paper: "the fast payment scheme based on Algorithm 1 can be modified
to compute the payment in time O(n log n + m) when each node is an agent
in a link-weighted directed network". This module implements that
modification for **symmetric** link costs (the paper's first simulation:
UDG with cost ``d^kappa`` is symmetric by construction). The machinery is
the same as :mod:`repro.core.fast_payment` with edge weights instead of
node-cost accounting:

* levels come from the source-rooted SPT exactly as before (Lemmas 1-2
  hold verbatim for undirected edge-weighted graphs — their proofs only
  use path-swap cost inequalities);
* a crossing edge ``(u, v)`` with ``level(u) < l < level(v)`` contributes
  ``L(u) + w(u, v) + R(v)``;
* the per-level boundary Dijkstra closes through ``w(x, y) + R(y)`` of
  higher-level neighbours ``y``.

For genuinely *asymmetric* digraphs (the heterogeneous second-simulation
topologies) the replacement-path lemmas do not carry over one-to-one; use
:func:`repro.core.link_vcg.link_vcg_payments` (per-relay removal) or the
batch :func:`~repro.core.link_vcg.all_sources_link_payments` there. The
constructor rejects asymmetric inputs rather than silently miscomputing.

Property-tested against the per-removal oracle in
``tests/test_fast_link_payment.py``.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.core.mechanism import (
    UnicastPayment,
    resolve_backend,
    resolve_monopoly_policy,
    spt_backend_for,
)
from repro.errors import DisconnectedError, InvalidGraphError, MonopolyError
from repro.graph.dijkstra import link_weighted_spt
from repro.graph.link_graph import LinkWeightedDigraph
from repro.obs.metrics import REGISTRY as _metrics
from repro.obs.tracing import TRACER as _tracer
from repro.utils.heap import LazyMinHeap
from repro.utils.validation import check_node_index

__all__ = ["fast_link_vcg_payments", "check_symmetric"]


def check_symmetric(dg: LinkWeightedDigraph, tol: float = 1e-12) -> None:
    """Raise unless every arc has an equal-weight reverse arc."""
    rev = dg.reverse()
    if not (
        np.array_equal(dg.indptr, rev.indptr)
        and np.array_equal(dg.indices, rev.indices)
        and np.allclose(dg.weights, rev.weights, atol=tol, rtol=0.0)
    ):
        raise InvalidGraphError(
            "fast link payments require symmetric link costs; this digraph "
            "is asymmetric — use link_vcg_payments instead"
        )


def fast_link_vcg_payments(
    dg: LinkWeightedDigraph,
    source: int,
    target: int,
    on_monopoly: str = "raise",
    backend: str = "auto",
) -> UnicastPayment:
    """All relay payments of one request in O(n log n + m), link model.

    Returns the same :class:`UnicastPayment` as
    :func:`~repro.core.link_vcg.link_vcg_payments` (relay-cost
    convention), computed without per-relay Dijkstras. (The pre-facade
    keyword ``monopoly=`` finished its deprecation cycle and is no
    longer accepted.)
    """
    source = check_node_index(source, dg.n)
    target = check_node_index(target, dg.n)
    resolve_backend(backend)
    resolve_monopoly_policy(on_monopoly)
    backend = spt_backend_for(backend)
    check_symmetric(dg)
    if source == target:
        return UnicastPayment(source, target, (), 0.0, {}, scheme="link-vcg")
    with _metrics.timed("fast_link_payment.time"), _tracer.span(
        "fast_link_payment", n=dg.n, source=source, target=target
    ):
        return _fast_link_vcg_payments_impl(
            dg, source, target, on_monopoly, backend
        )


def _fast_link_vcg_payments_impl(
    dg: LinkWeightedDigraph,
    source: int,
    target: int,
    on_monopoly: str,
    backend: str,
) -> UnicastPayment:
    if _metrics.enabled:
        _metrics.add("fast_link_payment.runs", 1)
    with _tracer.span("fast_link_payment.spt_build"):
        spt_i = link_weighted_spt(dg, source, direction="from", backend=backend)
        if not spt_i.reachable(target):
            raise DisconnectedError(source, target)
        spt_j = link_weighted_spt(dg, target, direction="from", backend=backend)
        path = spt_i.path_from_root(target)
        s = len(path) - 1
        lcp = float(spt_i.dist[target])
        relay_cost = lcp - dg.arc_weight(path[0], path[1])
    if s <= 1:
        return UnicastPayment(
            source, target, tuple(path), relay_cost, {}, scheme="link-vcg"
        )

    with _tracer.span("fast_link_payment.table_sweep"):
        L = spt_i.dist  # distance from source (symmetric weights)
        R = spt_j.dist  # distance to target
        levels = spt_i.branch_labels(path)
        on_path = np.zeros(dg.n, dtype=bool)
        on_path[np.asarray(path, dtype=np.int64)] = True

        # per-level regions (steps 3-4)
        region_nodes: dict[int, list[int]] = {}
        for x in range(dg.n):
            lx = int(levels[x])
            if 1 <= lx <= s - 1 and not on_path[x]:
                region_nodes.setdefault(lx, []).append(x)
        c_minus = np.full(s, np.inf)
        region_total = 0
        for l, members in region_nodes.items():
            region_total += len(members)
            c_minus[l] = _region_candidate(dg, members, l, levels, L, R)

        # crossing-edge sweep (step 5)
        by_start: dict[int, list[tuple[float, int]]] = {}
        seen_pairs: set[tuple[int, int]] = set()
        crossing_edges = 0
        for u, v, w in dg.arc_iter():
            if u > v:
                continue  # each undirected edge once
            lu, lv = int(levels[u]), int(levels[v])
            if lu < 0 or lv < 0:
                continue
            if lu > lv:
                u, v, lu, lv = v, u, lv, lu
            if lv - lu < 2 or (u, v) in seen_pairs:
                continue
            seen_pairs.add((u, v))
            value = float(L[u] + w + R[v])
            if np.isfinite(value):
                by_start.setdefault(lu + 1, []).append((value, lv))
                crossing_edges += 1

    with _tracer.span("fast_link_payment.payment_assembly"):
        heap = LazyMinHeap()
        payments: dict[int, float] = {}
        for l in range(1, s):
            for value, lv in by_start.get(l, ()):
                heap.push(value, lv)
            entry = heap.peek_valid(lambda lv, _l=l: lv > _l)
            best = entry[0] if entry is not None else np.inf
            avoid = min(best, float(c_minus[l]))
            r_l, nxt = path[l], path[l + 1]
            if not np.isfinite(avoid):
                if on_monopoly == "raise":
                    raise MonopolyError(source, target, r_l)
                payments[r_l] = float("inf")
                continue
            # Section III.F payment: used-link cost + detour improvement.
            payments[r_l] = dg.arc_weight(r_l, nxt) + (avoid - lcp)
    if _metrics.enabled:
        _metrics.add("fast_link_payment.path_hops", s)
        _metrics.add("fast_link_payment.crossing_edges", crossing_edges)
        _metrics.add("fast_link_payment.region_nodes", region_total)
    return UnicastPayment(
        source, target, tuple(path), relay_cost, payments, scheme="link-vcg"
    )


def _region_candidate(
    dg: LinkWeightedDigraph,
    members: list[int],
    l: int,
    levels: np.ndarray,
    L: np.ndarray,
    R: np.ndarray,
) -> float:
    """Boundary Dijkstra over one level-``l`` region, edge-weighted.

    ``D(x)`` = cheapest continuation ``x -> target`` avoiding ``r_l``
    through levels ``>= l`` (closure via ``R`` at the first higher-level
    neighbour). Returns ``min L(u) + w(u, x) + D(x)`` over region members
    ``x`` and their lower-level neighbours ``u``.
    """
    in_region = set(members)
    dist: dict[int, float] = {}
    pq: list[tuple[float, int]] = []
    for x in members:
        heads, wts = dg.out_neighbors(x)
        best = np.inf
        for y, w in zip(heads, wts):
            if levels[y] > l:
                cand = w + R[y]
                if cand < best:
                    best = cand
        if np.isfinite(best):
            dist[x] = float(best)
            heapq.heappush(pq, (float(best), x))

    settled: set[int] = set()
    while pq:
        dx, x = heapq.heappop(pq)
        if x in settled or dx > dist.get(x, np.inf):
            continue
        settled.add(x)
        heads, wts = dg.out_neighbors(x)
        for z, w in zip(heads, wts):
            z = int(z)
            if z in in_region and z not in settled:
                cand = dx + float(w)
                if cand < dist.get(z, np.inf):
                    dist[z] = cand
                    heapq.heappush(pq, (cand, z))

    best = np.inf
    for x, dx in dist.items():
        heads, wts = dg.out_neighbors(x)
        for u, w in zip(heads, wts):
            if 0 <= levels[u] < l:
                cand = float(L[u]) + float(w) + dx
                if cand < best:
                    best = cand
    return float(best)
