"""All-to-all traffic: the paper's "easy generalization" (Section II.B/D).

The body of the paper fixes the destination to the access point, noting
"it is not very different to generalize to arbitrary node between any
pair" and that the Nisan-Ronen result "can be easily extended to deal
with all-to-all traffics". This module does both:

* :func:`pairwise_vcg_payments` — price any set of ordered pairs with
  Algorithm 1 (one O(n log n + m) pass per distinct source);
* :class:`TrafficMatrix` — per-pair traffic intensities ``T[i, j]``
  (Feigenbaum et al.'s model, quoted in II.D);
* :func:`network_economy` — aggregate the per-packet payments over a
  traffic matrix into each node's *income* (earned relaying), *spend*
  (paid as a source), *energy cost* (true cost of the packets it
  relayed) and *profit* — the quantities a device owner actually cares
  about when deciding whether to join the network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

import numpy as np

from repro.core.fast_payment import fast_vcg_payments
from repro.core.mechanism import UnicastPayment, spt_backend_for
from repro.errors import InvalidGraphError
from repro.graph.dijkstra import (
    ShortestPathTree,
    node_weighted_spt,
    node_weighted_spt_many,
)
from repro.graph.node_graph import NodeWeightedGraph
from repro.obs.metrics import REGISTRY as _metrics
from repro.utils.validation import check_node_index

__all__ = [
    "pairwise_vcg_payments",
    "TrafficMatrix",
    "NodeEconomy",
    "NetworkEconomy",
    "network_economy",
]


def pairwise_vcg_payments(
    g: NodeWeightedGraph,
    pairs: Iterable[tuple[int, int]],
    on_monopoly: str = "inf",
    backend: str = "auto",
    spt_cache: dict[int, ShortestPathTree] | None = None,
) -> dict[tuple[int, int], UnicastPayment]:
    """VCG payments for arbitrary ordered source-target pairs.

    Results are computed with Algorithm 1, memoized per pair, and —
    crucially for batch workloads — the shortest path tree of every
    distinct *endpoint* is built once and shared across all pairs that
    touch it (an SPT rooted at ``x`` serves both roles, because paths
    are undirected). Pricing ``k`` pairs over ``e`` distinct endpoints
    therefore costs ``e`` Dijkstras plus ``k`` linear-time Algorithm-1
    passes: one O(n log n + m) pass per distinct endpoint, not per pair.

    ``spt_cache`` lets a long-lived caller (the
    :class:`~repro.engine.PricingEngine`) share its endpoint SPT cache:
    pre-populated entries are reused, missing roots are built here and
    left in the mapping for the caller to keep. The trees must belong to
    *this* graph and the caller's ``backend``.

    In the node-cost model the payment is direction-symmetric (the path
    cost counts internal nodes only), but both orientations are priced
    as requested — callers with symmetric traffic can halve the work by
    canonicalizing pairs themselves.
    """
    out: dict[tuple[int, int], UnicastPayment] = {}
    spts: dict[int, ShortestPathTree] = spt_cache if spt_cache is not None else {}
    spt_backend = spt_backend_for(backend)

    def spt_of(x: int) -> ShortestPathTree:
        spt = spts.get(x)
        if spt is None:
            spt = spts[x] = node_weighted_spt(g, x, backend=spt_backend)
            if _metrics.enabled:
                _metrics.add("allpairs.spt_builds", 1)
        return spt

    # Pre-build every distinct endpoint's SPT not already in the cache in
    # one batched multi-source solve (a single compiled call instead of
    # one Python round-trip per endpoint; bit-identical per-source trees).
    pair_list = [
        (check_node_index(i, g.n), check_node_index(j, g.n))
        for i, j in pairs
    ]
    missing = {x for ij in pair_list for x in ij if x not in spts}
    if len(missing) > 1:
        built = node_weighted_spt_many(g, sorted(missing), backend=spt_backend)
        spts.update(built)
        if _metrics.enabled:
            _metrics.add("allpairs.spt_builds", len(built))

    for i, j in pair_list:
        if (i, j) in out:
            continue
        out[(i, j)] = fast_vcg_payments(
            g,
            i,
            j,
            on_monopoly=on_monopoly,
            backend=backend,
            spt_source=spt_of(i),
            spt_target=spt_of(j),
        ).to_unicast_payment()
        if _metrics.enabled:
            _metrics.add("allpairs.pairs_priced", 1)
    return out


class TrafficMatrix:
    """Non-negative per-pair traffic intensities ``T[i, j]`` (packets).

    The diagonal must be zero. Sparse construction from triples is
    supported; :meth:`uniform` and :meth:`to_access_point` cover the two
    canonical workloads.
    """

    def __init__(self, matrix: np.ndarray) -> None:
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise InvalidGraphError(
                f"traffic matrix must be square, got {matrix.shape}"
            )
        if (matrix < 0).any() or not np.isfinite(matrix).all():
            raise InvalidGraphError("traffic intensities must be finite and >= 0")
        if np.diagonal(matrix).any():
            raise InvalidGraphError("self-traffic (diagonal) must be zero")
        self.matrix = matrix
        self.matrix.setflags(write=False)

    @property
    def n(self) -> int:
        """Number of nodes."""
        return int(self.matrix.shape[0])

    @classmethod
    def from_triples(
        cls, n: int, triples: Iterable[tuple[int, int, float]]
    ) -> "TrafficMatrix":
        """Build from sparse ``(source, target, intensity)`` triples."""
        m = np.zeros((n, n))
        for i, j, t in triples:
            m[check_node_index(i, n), check_node_index(j, n)] += float(t)
        return cls(m)

    @classmethod
    def uniform(cls, n: int, intensity: float = 1.0) -> "TrafficMatrix":
        """All-to-all: every ordered pair exchanges ``intensity`` packets."""
        m = np.full((n, n), float(intensity))
        np.fill_diagonal(m, 0.0)
        return cls(m)

    @classmethod
    def to_access_point(
        cls, n: int, root: int = 0, intensity: float = 1.0
    ) -> "TrafficMatrix":
        """The paper's main scenario: everyone sends to the AP."""
        m = np.zeros((n, n))
        m[:, check_node_index(root, n)] = float(intensity)
        m[root, root] = 0.0
        return cls(m)

    def pairs(self) -> Iterable[tuple[int, int, float]]:
        """Yield every nonzero ``(source, target, intensity)`` entry.

        One vectorized gather — no per-element scalar indexing back into
        the matrix; the yielded values are plain Python ints/floats.
        """
        src, dst = np.nonzero(self.matrix)
        vals = self.matrix[src, dst]
        yield from zip(src.tolist(), dst.tolist(), vals.tolist())


@dataclass(frozen=True)
class NodeEconomy:
    """One node's books under a traffic pattern."""

    node: int
    income: float  # payments received for relaying
    spend: float  # payments made as a source
    energy_cost: float  # true cost of packets actually relayed
    packets_relayed: float

    @property
    def profit(self) -> float:
        """Relaying profit: income minus true relaying cost (the agent's
        utility from its relay role; its own traffic's value is private)."""
        return self.income - self.energy_cost

    @property
    def net_cash(self) -> float:
        """Income minus spend (cash-flow view)."""
        return self.income - self.spend


@dataclass(frozen=True)
class NetworkEconomy:
    """Network-wide aggregation of :class:`NodeEconomy` entries."""

    nodes: tuple[NodeEconomy, ...]
    blocked_pairs: tuple[tuple[int, int], ...]

    def node(self, i: int) -> NodeEconomy:
        """The books of one node."""
        return self.nodes[i]

    @property
    def total_payment(self) -> float:
        """Total payment across all relays."""
        return float(sum(e.spend for e in self.nodes))

    @property
    def total_energy(self) -> float:
        """Total true relaying cost across all nodes."""
        return float(sum(e.energy_cost for e in self.nodes))

    @property
    def overpayment_ratio(self) -> float:
        """Total payment divided by the corresponding true cost."""
        if self.total_energy <= 0:
            return float("nan")
        return self.total_payment / self.total_energy

    def gini_income(self) -> float:
        """Income inequality across relays (0 = equal, -> 1 = concentrated).

        Useful for spotting choke-point relays that capture most of the
        network's payments.
        """
        incomes = np.sort(np.array([e.income for e in self.nodes]))
        total = incomes.sum()
        if total <= 0:
            return 0.0
        n = incomes.size
        ranks = np.arange(1, n + 1)
        return float((2 * (ranks * incomes).sum()) / (n * total) - (n + 1) / n)


def network_economy(
    g: NodeWeightedGraph,
    traffic: TrafficMatrix,
    payments: Mapping[tuple[int, int], UnicastPayment] | None = None,
    backend: str = "auto",
) -> NetworkEconomy:
    """Aggregate VCG payments over a traffic matrix.

    Pairs whose route is monopolized (infinite payment) are skipped and
    reported in ``blocked_pairs`` — in a deployment those sessions simply
    cannot be priced and would be refused.

    When ``payments`` is not supplied, the pairs are priced here through
    the batched :func:`pairwise_vcg_payments` path with the given
    ``backend``. Callers that want parallel pricing compute payments via
    :func:`repro.api.price_all_pairs` (which fans out through the
    engine) and pass them in.
    """
    if traffic.n != g.n:
        raise InvalidGraphError(
            f"traffic matrix is {traffic.n}x{traffic.n} but the graph has "
            f"{g.n} nodes"
        )
    if payments is None:
        payments = pairwise_vcg_payments(
            g, ((i, j) for i, j, _ in traffic.pairs()), backend=backend
        )
    income = np.zeros(g.n)
    spend = np.zeros(g.n)
    energy = np.zeros(g.n)
    relayed = np.zeros(g.n)
    blocked: list[tuple[int, int]] = []
    for i, j, t in traffic.pairs():
        p = payments[(i, j)]
        if not np.isfinite(p.total_payment):
            blocked.append((i, j))
            continue
        spend[i] += t * p.total_payment
        for k in p.relays:
            income[k] += t * p.payment(k)
            energy[k] += t * float(g.costs[k])
            relayed[k] += t
    nodes = tuple(
        NodeEconomy(
            node=i,
            income=float(income[i]),
            spend=float(spend[i]),
            energy_cost=float(energy[i]),
            packets_relayed=float(relayed[i]),
        )
        for i in range(g.n)
    )
    return NetworkEconomy(nodes=nodes, blocked_pairs=tuple(blocked))
