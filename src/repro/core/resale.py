"""Resale-the-path collusion (Section III.H, Figure 4).

Even with truthful *declarations*, a source ``v_i`` and a neighbour
``v_j`` can collude at the *routing* stage: if ``v_i``'s total payment
exceeds what it would cost to hand the traffic to ``v_j`` — namely
``v_j``'s own total payment plus ``max(p_i^j, c_j)`` (the compensation
``v_j`` forgoes or spends by fronting the traffic) — the pair pockets the
difference

.. math::

    \\text{savings}(i, j) = p_i - (p_j + \\max(p_i^j, c_j)) > 0.

This module finds every such profitable pair on an instance. It does not
"fix" the issue (the paper leaves it open); it quantifies how often the
VCG payments admit resale, which the Figure-4 example and the
``collusion_and_security`` example script demonstrate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.core.mechanism import UnicastPayment
from repro.core.vcg_unicast import vcg_unicast_payments
from repro.graph.node_graph import NodeWeightedGraph
from repro.utils.validation import check_node_index

__all__ = ["ResaleOpportunity", "find_resale_opportunities", "resale_savings"]


@dataclass(frozen=True)
class ResaleOpportunity:
    """A profitable resale pair: ``source`` hands traffic to ``reseller``."""

    source: int
    reseller: int
    source_payment: float  # p_i: what the source pays going direct
    reseller_payment: float  # p_j: what the reseller pays for its own route
    compensation: float  # max(p_i^j, c_j)
    savings: float  # p_i - (p_j + compensation) > 0

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"source {self.source} resells via {self.reseller}: direct cost "
            f"{self.source_payment:.6g} vs resale "
            f"{self.reseller_payment + self.compensation:.6g} "
            f"(saves {self.savings:.6g})"
        )


def resale_savings(
    source_result: UnicastPayment,
    reseller_result: UnicastPayment,
    reseller_true_cost: float,
) -> float:
    """``p_i - (p_j + max(p_i^j, c_j))`` for a concrete pair of outcomes."""
    p_i = source_result.total_payment
    p_j = reseller_result.total_payment
    compensation = max(source_result.payment(reseller_result.source), reseller_true_cost)
    return p_i - (p_j + compensation)


def find_resale_opportunities(
    g: NodeWeightedGraph,
    root: int = 0,
    method: str = "fast",
    min_savings: float = 1e-9,
    payments: Mapping[int, UnicastPayment] | None = None,
) -> list[ResaleOpportunity]:
    """All profitable resale pairs toward the access point ``root``.

    For every source ``i`` and every neighbour ``j`` of ``i`` (with
    ``j != root``), check the Section III.H condition. ``payments`` may
    carry precomputed per-source outcomes (keyed by source) to avoid
    recomputation across calls; missing sources are computed on demand
    with :func:`vcg_unicast_payments`.

    Returns opportunities sorted by decreasing savings.
    """
    root = check_node_index(root, g.n)
    cache: dict[int, UnicastPayment] = dict(payments or {})

    def outcome(i: int) -> UnicastPayment:
        """Mechanism outcome for one source (cached)."""
        if i not in cache:
            cache[i] = vcg_unicast_payments(
                g, i, root, method=method, on_monopoly="inf"
            )
        return cache[i]

    found = []
    for i in range(g.n):
        if i == root:
            continue
        res_i = outcome(i)
        p_i = res_i.total_payment
        if not np.isfinite(p_i):
            continue
        for j in g.neighbors(i):
            j = int(j)
            if j == root or j == i:
                continue
            res_j = outcome(j)
            if not np.isfinite(res_j.total_payment):
                continue
            savings = resale_savings(res_i, res_j, float(g.costs[j]))
            if savings > min_savings:
                found.append(
                    ResaleOpportunity(
                        source=i,
                        reseller=j,
                        source_payment=p_i,
                        reseller_payment=res_j.total_payment,
                        compensation=max(res_i.payment(j), float(g.costs[j])),
                        savings=savings,
                    )
                )
    found.sort(key=lambda o: -o.savings)
    return found
