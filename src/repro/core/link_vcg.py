"""The Section III.F mechanism: node agents with link-cost vector types.

With power-controlled radios, node ``v_k``'s private type is the vector of
its outgoing link costs. The mechanism computes the least cost *directed*
path ``P(v_i, v_0, d)`` and pays each relay ``v_k`` on it

.. math::

    p_i^k(d) = d_{k, next(k)} + \\Delta_{i,k}, \\qquad
    \\Delta_{i,k} = ||P(v_i, v_0, d |^k \\infty)|| - ||P(v_i, v_0, d)||

where ``d |^k inf`` removes all of ``v_k``'s links (the node-avoiding
path). The scheme is VCG, hence truthful even though types are vectors —
a node's valuation depends only on which of its own links the output uses.

Two entry points:

* :func:`link_vcg_payments` — one source, with explicit per-relay
  avoiding-path Dijkstras. Clear, used for small cases and as the oracle.
* :func:`all_sources_link_payments` — every source toward one access
  point at once. The avoiding distances for *all* sources under the
  removal of ``v_k`` come from a single reverse Dijkstra, so the whole
  table costs one compiled Dijkstra per interior tree node. This is the
  engine behind the Figure-3 sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

import numpy as np

from repro.core.mechanism import (
    UnicastPayment,
    resolve_backend,
    resolve_monopoly_policy,
    spt_backend_for,
)
from repro.errors import DisconnectedError, MonopolyError
from repro.graph.avoiding import (
    all_sources_removal_distances,
    avoiding_distance,
)
from repro.graph.dijkstra import link_weighted_spt
from repro.graph.link_graph import LinkWeightedDigraph
from repro.utils.validation import check_node_index

__all__ = [
    "link_vcg_payments",
    "all_sources_link_payments",
    "LinkPaymentTable",
    "relay_link_utility",
]


def link_vcg_payments(
    dg: LinkWeightedDigraph,
    source: int,
    target: int,
    on_monopoly: str = "raise",
    backend: str = "auto",
) -> UnicastPayment:
    """VCG outcome for one source in the link-cost model.

    ``lcp_cost`` in the returned :class:`UnicastPayment` is the **relay
    cost** of the route — the path weight minus the source's own first
    transmission — mirroring the node model's internal-cost convention
    (payments compensate relays; the source's own radio energy is not
    something it pays anyone for). (The pre-facade keyword
    ``monopoly=`` finished its deprecation cycle and is no longer
    accepted.)
    """
    source = check_node_index(source, dg.n)
    target = check_node_index(target, dg.n)
    resolve_backend(backend)
    resolve_monopoly_policy(on_monopoly)
    if source == target:
        return UnicastPayment(source, target, (), 0.0, {}, scheme="link-vcg")
    backend = spt_backend_for(backend)
    spt = link_weighted_spt(dg, source, direction="from", backend=backend)
    if not spt.reachable(target):
        raise DisconnectedError(source, target)
    path = spt.path_from_root(target)
    full_cost = float(spt.dist[target])
    payments: dict[int, float] = {}
    for idx in range(1, len(path) - 1):
        k = path[idx]
        nxt = path[idx + 1]
        detour = avoiding_distance(dg, source, target, k, backend=backend)
        if not np.isfinite(detour):
            if on_monopoly == "raise":
                raise MonopolyError(source, target, k)
            payments[k] = float("inf")
            continue
        payments[k] = dg.arc_weight(k, nxt) + (detour - full_cost)
    relay_cost = full_cost - dg.arc_weight(path[0], path[1])
    return UnicastPayment(
        source, target, tuple(path), relay_cost, payments, scheme="link-vcg"
    )


def relay_link_utility(
    dg_true: LinkWeightedDigraph, result: UnicastPayment, node: int
) -> float:
    """Utility of relay ``node``: payment minus the *true* cost of the arc
    the route uses at ``node`` (0 for off-path nodes)."""
    node = int(node)
    path = result.path
    if node not in path[1:-1]:
        return result.payment(node)
    idx = path.index(node)
    return result.payment(node) - dg_true.arc_weight(node, path[idx + 1])


@dataclass(frozen=True)
class LinkPaymentTable:
    """All-sources VCG payments toward one access point.

    Attributes
    ----------
    root:
        The access point ``v_0``.
    dist:
        ``dist[i]`` = weight of ``P(v_i, v_0, d)`` (``inf`` when ``i``
        cannot reach the root at all).
    first_hop_cost:
        ``first_hop_cost[i]`` = the source's own transmission cost on its
        route (0 for the root; ``inf`` when unreachable).
    payments:
        ``payments[i]`` = mapping relay -> payment for source ``i``.
        Entries may be ``inf`` when a relay is a monopoly for that source.
    parent:
        Next hop toward the root per source (-1 for root/unreachable) —
        the routing table the distributed protocol would install.
    """

    root: int
    dist: np.ndarray
    first_hop_cost: np.ndarray
    payments: tuple[Mapping[int, float], ...]
    parent: np.ndarray

    @property
    def n(self) -> int:
        """Number of nodes."""
        return int(self.dist.shape[0])

    def path(self, i: int) -> list[int]:
        """Route of source ``i``: ``i, ..., root``."""
        check_node_index(i, self.n)
        if not np.isfinite(self.dist[i]):
            raise DisconnectedError(i, self.root)
        out = [int(i)]
        while out[-1] != self.root:
            nxt = int(self.parent[out[-1]])
            if nxt < 0 or len(out) > self.n:  # pragma: no cover
                raise DisconnectedError(i, self.root)
            out.append(nxt)
        return out

    def relay_cost(self, i: int) -> float:
        """Relay cost of source ``i``'s route (path weight minus its own
        first transmission) — the denominator of the overpayment ratio."""
        return float(self.dist[i] - self.first_hop_cost[i])

    def path_cost(self, i: int) -> float:
        """Alias of :meth:`relay_cost` — the uniform
        :class:`~repro.core.mechanism.PaymentResult` accessor name."""
        return self.relay_cost(i)

    def to_dict(self) -> dict:
        """Tagged, versioned JSON-safe encoding (see :mod:`repro.io`)."""
        from repro import io

        return io.to_dict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "LinkPaymentTable":
        """Inverse of :meth:`to_dict`; rejects payloads of other types."""
        from repro import io

        return io.decode_as(cls, payload)

    def total_payment(self, i: int) -> float:
        """Total payment across all relays."""
        return float(sum(self.payments[i].values()))

    def is_monopolized(self, i: int) -> bool:
        """True when some relay of ``i`` has an infinite payment."""
        return any(not np.isfinite(p) for p in self.payments[i].values())

    def payment_result(self, i: int) -> UnicastPayment:
        """Per-source view as a :class:`UnicastPayment`."""
        return UnicastPayment(
            int(i),
            self.root,
            tuple(self.path(i)),
            self.relay_cost(i),
            dict(self.payments[i]),
            scheme="link-vcg",
        )

    def sources(self) -> Iterator[int]:
        """All nodes with a finite route to the root, except the root."""
        for i in range(self.n):
            if i != self.root and np.isfinite(self.dist[i]):
                yield i


def all_sources_link_payments(
    dg: LinkWeightedDigraph,
    root: int = 0,
    on_monopoly: str = "inf",
    backend: str = "auto",
) -> LinkPaymentTable:
    """VCG payments of every source toward ``root`` in one batch.

    The routes form the shortest path tree toward the root, so the set of
    relays that ever needs an avoiding distance is exactly the set of
    interior tree nodes; one reverse Dijkstra per such node (on a masked
    arc list, compiled) yields the avoiding distances of *all* sources
    simultaneously. Total cost: O(#interior · Dijkstra) instead of
    O(#sources · #relays · Dijkstra).

    ``on_monopoly`` follows the per-request entry points: the historical
    (and default) behavior records infinite payments; ``"raise"`` raises
    :class:`~repro.errors.MonopolyError` at the first monopolized source
    instead. The batch removal sweep is scipy-based regardless of
    ``backend``, which only selects the routing-tree Dijkstra kernel.
    """
    root = check_node_index(root, dg.n)
    resolve_monopoly_policy(on_monopoly)
    backend = spt_backend_for(backend)
    spt = link_weighted_spt(dg, root, direction="to", backend=backend)
    n = dg.n
    parent = spt.parent.copy()

    # Interior tree nodes = some node's next hop that is not the root.
    relays_needed = sorted(
        {
            int(parent[i])
            for i in range(n)
            if i != root and np.isfinite(spt.dist[i]) and int(parent[i]) != root
        }
    )
    removal = all_sources_removal_distances(dg, root, removed_nodes=relays_needed)
    removal_row = {k: removal[k] for k in relays_needed}

    first_hop_cost = np.full(n, np.inf)
    first_hop_cost[root] = 0.0
    payments: list[dict[int, float]] = [dict() for _ in range(n)]
    for i in range(n):
        if i == root or not np.isfinite(spt.dist[i]):
            continue
        route = spt.path_from_root(i)[::-1]  # i, ..., root
        first_hop_cost[i] = dg.arc_weight(route[0], route[1])
        base = float(spt.dist[i])
        for idx in range(1, len(route) - 1):
            k = route[idx]
            nxt = route[idx + 1]
            detour = float(removal_row[k][i])
            if not np.isfinite(detour) and on_monopoly == "raise":
                raise MonopolyError(i, root, k)
            delta = detour - base  # inf - finite stays inf (monopoly)
            payments[i][k] = dg.arc_weight(k, nxt) + delta

    return LinkPaymentTable(
        root=root,
        dist=spt.dist.copy(),
        first_hop_cost=first_hop_cost,
        payments=tuple(payments),
        parent=parent,
    )
