"""The Section III.A pricing mechanism on node-weighted graphs.

Output: the least cost path ``P(v_i, v_j, d)`` under the declared profile
``d``. Payment to an on-path relay ``v_k``:

.. math::

    p_i^k(d) = ||P_{-v_k}(v_i, v_j, d)|| - ||P(v_i, v_j, d)|| + d_k

and 0 to everyone else. This is a VCG mechanism, hence strategyproof and
individually rational (each relay is paid at least its declared cost).

``method="naive"`` runs one Dijkstra per on-path relay — the
O(n^2 log n + nm) baseline the paper mentions; ``method="fast"``
delegates to Algorithm 1 (:mod:`repro.core.fast_payment`), the paper's
O(n log n + m) contribution. Both produce identical payments (this is
property-tested).
"""

from __future__ import annotations

import numpy as np

from repro.core.mechanism import (
    MechanismSpec,
    UnicastPayment,
    resolve_backend,
    resolve_monopoly_policy,
    spt_backend_for,
)
from repro.errors import DisconnectedError, MonopolyError
from repro.graph.avoiding import avoiding_distance
from repro.graph.dijkstra import node_weighted_spt
from repro.graph.node_graph import NodeWeightedGraph
from repro.obs.metrics import REGISTRY as _metrics
from repro.utils.validation import check_node_index

__all__ = ["vcg_unicast_payments", "vcg_payment_to_node", "VCG_UNICAST"]


def vcg_unicast_payments(
    g: NodeWeightedGraph,
    source: int,
    target: int,
    method: str = "fast",
    backend: str = "auto",
    on_monopoly: str = "raise",
) -> UnicastPayment:
    """Full VCG outcome for one unicast request.

    Parameters
    ----------
    g:
        The communication graph carrying the *declared* cost profile
        (use :meth:`NodeWeightedGraph.with_declaration` to model lies).
    source, target:
        Endpoints; the paper's access point scenario is ``target = 0``.
    method:
        ``"fast"`` (Algorithm 1) or ``"naive"`` (per-relay Dijkstra).
        (The pre-facade spelling ``algorithm=`` finished its
        deprecation cycle and is no longer accepted.)
    on_monopoly:
        What to do when some relay's removal disconnects the endpoints
        (excluded by the paper's biconnectivity assumption):
        ``"raise"`` raises :class:`~repro.errors.MonopolyError`,
        ``"inf"`` records an infinite payment.
    """
    source = check_node_index(source, g.n)
    target = check_node_index(target, g.n)
    if method not in ("fast", "naive"):
        from repro.errors import InvalidRequestError

        raise InvalidRequestError(
            f"method must be 'fast' or 'naive', got {method!r}"
        )
    resolve_backend(backend)
    resolve_monopoly_policy(on_monopoly)
    if source == target:
        return UnicastPayment(source, target, (), 0.0, {})

    if method == "fast":
        from repro.core.fast_payment import fast_vcg_payments

        fast = fast_vcg_payments(
            g, source, target, on_monopoly=on_monopoly, backend=backend
        )
        return fast.to_unicast_payment()

    # The Dijkstra layer knows no "numpy" backend; map it exactly as the
    # Algorithm-1 entry point does so every backend name works here too.
    backend = spt_backend_for(backend)
    spt = node_weighted_spt(g, source, backend=backend)
    if not spt.reachable(target):
        raise DisconnectedError(source, target)
    path = spt.path_from_root(target)
    lcp_cost = float(spt.dist[target])
    payments: dict[int, float] = {}
    for k in path[1:-1]:
        # Each relay costs one avoiding-path Dijkstra — the O(n) rebuild
        # Algorithm 1 exists to avoid; the counter is what benchmark
        # write-ups cite when comparing the two methods.
        if _metrics.enabled:
            _metrics.add("vcg_unicast.avoiding_recomputations", 1)
        detour = avoiding_distance(g, source, target, k, backend=backend)
        if not np.isfinite(detour):
            if on_monopoly == "raise":
                raise MonopolyError(source, target, k)
            payments[k] = float("inf")
            continue
        payments[k] = detour - lcp_cost + float(g.costs[k])
    return UnicastPayment(source, target, tuple(path), lcp_cost, payments)


def vcg_payment_to_node(
    g: NodeWeightedGraph,
    source: int,
    target: int,
    node: int,
    backend: str = "auto",
) -> float:
    """Payment to a single node without computing the rest.

    Returns 0 when ``node`` is off the least cost path (by the definition
    in III.A), else ``||P_{-v_k}|| - ||P|| + d_k``. Raises
    :class:`MonopolyError` when the node is a monopoly.
    """
    node = check_node_index(node, g.n)
    backend = spt_backend_for(backend)
    spt = node_weighted_spt(g, source, backend=backend)
    if not spt.reachable(target):
        raise DisconnectedError(source, target)
    path = spt.path_from_root(target)
    if node not in path[1:-1]:
        return 0.0
    if _metrics.enabled:
        _metrics.add("vcg_unicast.avoiding_recomputations", 1)
    detour = avoiding_distance(g, source, target, node, backend=backend)
    if not np.isfinite(detour):
        raise MonopolyError(source, target, node)
    return float(detour - spt.dist[target] + g.costs[node])


#: Pluggable spec for the truthfulness harness and baseline comparisons.
VCG_UNICAST = MechanismSpec(
    name="vcg-unicast",
    compute=vcg_unicast_payments,
    properties=("strategyproof", "individually-rational", "lcp-output"),
)
