"""Collusion: the Section III.E analysis and schemes.

The plain VCG scheme of III.A assumes no collusion, and Theorem 7 shows
this is unavoidable *in general*: no mechanism that outputs the LCP is
2-agents strategyproof (a colluding pair can always transfer profit).
:func:`find_two_agent_collusion` finds concrete witnesses of this on any
instance — e.g. an off-path neighbour inflating its declared cost to pump
a path relay's VCG payment.

What *can* be done is resisting collusion inside fixed sets: paying

.. math::

    \\tilde p_i^k(d) = ||P_{-Q(v_k)}(v_i, v_j, d)|| - ||P(v_i, v_j, d)||
                       + x_k d_k

(with ``Q(v_k)`` a set containing ``v_k``, removal of which keeps the
endpoints connected). ``Q(v_k) = N(v_k)`` (the closed neighbourhood) is
the paper's headline scheme (Theorem 8). Note the term ``x_k d_k``:
off-path nodes are also paid the (non-negative) difference term, which
the paper points out "could be positive when node ``v_k`` has a
neighbour on the path" — the ``||P_{-N(v_k)}||`` term is what decouples a
node's payment from its neighbours' declarations.

**Reproduction finding (documented in DESIGN.md/EXPERIMENTS.md).** The
scheme, implemented exactly as stated, *does* deliver:

* single-agent strategyproofness and individual rationality;
* immunity to the paper's motivating attack — an **off-path** neighbour
  ``v_t`` of an on-path ``v_k`` inflating ``d_t`` to pump
  ``||P_{-v_k}||``: here ``p̃^k`` is independent of ``d_t`` outright.

It does **not** deliver full 2-agent strategyproofness for two adjacent
**on-path** relays: both shading to 0 shrinks the subtracted ``||P(d)||``
term by the partner's cost, raising each payment by exactly the partner's
declared reduction (joint gain ``c_k + c_l``). Theorem 8's proof
implicitly evaluates the welfare term at true costs, which a colluding
partner's declaration violates. ``tests/test_collusion.py`` carries the
minimal counterexample. The property strings on
:data:`NEIGHBOR_COLLUSION_VCG` reflect what is actually verified.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.core.mechanism import MechanismSpec, UnicastPayment, relay_utility
from repro.errors import MonopolyError
from repro.graph.avoiding import avoiding_set_distance
from repro.graph.dijkstra import node_weighted_spt
from repro.graph.node_graph import NodeWeightedGraph
from repro.utils.validation import check_node_index

__all__ = [
    "neighbor_collusion_payments",
    "group_collusion_payments",
    "find_two_agent_collusion",
    "CollusionWitness",
    "NEIGHBOR_COLLUSION_VCG",
]


def group_collusion_payments(
    g: NodeWeightedGraph,
    source: int,
    target: int,
    groups: Mapping[int, Iterable[int]] | None = None,
    on_monopoly: str = "raise",
    backend: str = "auto",
    include_zero: bool = False,
) -> UnicastPayment:
    """The generalized ``Q(v_k)`` scheme of Section III.E.

    Parameters
    ----------
    groups:
        ``k -> Q(v_k)`` (must contain ``k``). Defaults to the closed
        neighbourhoods ``N(v_k)``, i.e. :func:`neighbor_collusion_payments`.
    include_zero:
        Also record structurally-zero payments (off-path nodes whose
        ``Q``-removal does not change the LCP). Default records only the
        nonzero ones.

    Off-path nodes can legitimately receive a positive payment here; the
    returned :class:`UnicastPayment` therefore may pay nodes outside
    ``path``.
    """
    source = check_node_index(source, g.n)
    target = check_node_index(target, g.n)
    if on_monopoly not in ("raise", "inf"):
        raise ValueError(
            f"on_monopoly must be 'raise' or 'inf', got {on_monopoly!r}"
        )
    if groups is not None:
        for k, q in groups.items():
            if int(k) not in {int(v) for v in q}:
                raise ValueError(f"group Q(v_{k}) must contain node {k}")
    if source == target:
        return UnicastPayment(source, target, (), 0.0, {}, scheme="group-collusion")

    spt = node_weighted_spt(g, source, backend=backend)
    spt.require_reachable(target)
    path = spt.path_from_root(target)
    lcp_cost = float(spt.dist[target])
    on_path = set(path[1:-1])

    def default_group(k: int) -> set[int]:
        """The closed neighbourhood ``N(v_k)`` default group."""
        return set(int(v) for v in g.closed_neighborhood(k))

    candidates = _nodes_with_group_touching_path(g, groups, path, source, target)

    payments: dict[int, float] = {}
    for k in candidates:
        group = (
            set(int(v) for v in groups[k]) if groups is not None else default_group(k)
        )
        if k not in group:
            raise ValueError(f"group Q(v_{k}) must contain node {k}")
        group.discard(source)
        group.discard(target)
        if not group:
            continue
        detour = avoiding_set_distance(g, source, target, group, backend=backend)
        if not np.isfinite(detour):
            # The Section III.E precondition (G \ Q(v_k) connected) fails:
            # the group holds a joint monopoly and its payment is unbounded.
            if on_monopoly == "raise":
                raise MonopolyError(source, target, sorted(group))
            payments[k] = float("inf")
            continue
        base = detour - lcp_cost
        pay = base + (float(g.costs[k]) if k in on_path else 0.0)
        if pay > 0 or include_zero or k in on_path:
            payments[k] = pay
    return UnicastPayment(
        source,
        target,
        tuple(path),
        lcp_cost,
        payments,
        scheme="group-collusion",
    )


def _nodes_with_group_touching_path(
    g: NodeWeightedGraph,
    groups: Mapping[int, Iterable[int]] | None,
    path: Sequence[int],
    source: int,
    target: int,
) -> list[int]:
    """Nodes whose payment can be nonzero: ``Q(v_k)`` intersects the LCP
    interior (removing a group disjoint from the path leaves it intact,
    so the difference term vanishes and ``x_k = 0``)."""
    interior = set(path[1:-1])
    out = []
    for k in range(g.n):
        if k in (source, target):
            continue
        if groups is not None:
            if k not in groups:
                continue
            group = set(int(v) for v in groups[k])
        else:
            group = set(int(v) for v in g.closed_neighborhood(k))
        if group & interior:
            out.append(k)
    return out


def neighbor_collusion_payments(
    g: NodeWeightedGraph,
    source: int,
    target: int,
    on_monopoly: str = "raise",
    backend: str = "auto",
) -> UnicastPayment:
    """The paper's neighbour-collusion scheme: ``Q(v_k) = N(v_k)``.

    Implements Theorem 8's payment exactly as stated. See the module
    docstring for what this provably delivers versus what the paper
    claims. Requires ``G \\ N(v_k)`` to keep the endpoints connected
    whenever ``N(v_k)`` touches the path interior — check with
    :func:`repro.graph.connectivity.neighborhood_removal_safe`.
    """
    result = group_collusion_payments(
        g, source, target, groups=None, on_monopoly=on_monopoly, backend=backend
    )
    return UnicastPayment(
        result.source,
        result.target,
        result.path,
        result.lcp_cost,
        dict(result.payments),
        scheme="neighbor-collusion",
    )


@dataclass(frozen=True)
class CollusionWitness:
    """A concrete profitable 2-agent collusion against a mechanism.

    ``liar`` unilaterally declares ``declared_cost`` (instead of its true
    cost); the coalition ``{liar, beneficiary}``'s total utility rises by
    ``gain > 0`` — which the pair can split, so both strictly profit.
    """

    liar: int
    beneficiary: int
    declared_cost: float
    truthful_joint_utility: float
    colluding_joint_utility: float

    @property
    def gain(self) -> float:
        """Utility gained relative to the truthful baseline."""
        return self.colluding_joint_utility - self.truthful_joint_utility


def find_two_agent_collusion(
    g_true: NodeWeightedGraph,
    source: int,
    target: int,
    mechanism: MechanismSpec | None = None,
    scale_factors: Sequence[float] = (0.0, 0.25, 0.5, 2.0, 5.0, 20.0),
    tol: float = 1e-9,
) -> CollusionWitness | None:
    """Search for a Theorem-7 witness against ``mechanism`` (default: the
    plain VCG scheme of III.A).

    Strategy: every node ``t`` tries a grid of unilateral misdeclarations;
    for each, every other node ``k`` is checked as the beneficiary. This
    finds the canonical pattern — an off-path node inflating its cost to
    raise an on-path neighbour's payment — whenever the instance admits
    one. Returns ``None`` if no profitable pair exists on the grid (it
    does NOT prove the instance collusion-free).
    """
    if mechanism is None:
        from repro.core.vcg_unicast import VCG_UNICAST

        mechanism = VCG_UNICAST
    truthful = mechanism(g_true, source, target)
    base_util = {
        k: relay_utility(truthful, g_true.costs, k) for k in range(g_true.n)
    }
    for liar in range(g_true.n):
        if liar in (source, target):
            continue
        for factor in scale_factors:
            declared = float(g_true.costs[liar]) * factor
            if abs(declared - g_true.costs[liar]) < tol:
                continue
            declared_g = g_true.with_declaration(liar, declared)
            try:
                outcome = mechanism(declared_g, source, target)
            except MonopolyError:
                continue
            liar_util = relay_utility(outcome, g_true.costs, liar)
            for k in range(g_true.n):
                if k == liar or k in (source, target):
                    continue
                joint = liar_util + relay_utility(outcome, g_true.costs, k)
                joint_truth = base_util[liar] + base_util[k]
                if joint > joint_truth + max(tol, 1e-7 * abs(joint_truth)):
                    return CollusionWitness(
                        liar=liar,
                        beneficiary=k,
                        declared_cost=declared,
                        truthful_joint_utility=joint_truth,
                        colluding_joint_utility=joint,
                    )
    return None


#: Pluggable spec for the truthfulness harness. The collusion-resistance
#: property string names the *verified* guarantee (see module docstring):
#: pairs with an off-path member cannot profit; two adjacent on-path
#: relays still can, contradicting the paper's Theorem 8 as stated.
NEIGHBOR_COLLUSION_VCG = MechanismSpec(
    name="neighbor-collusion-vcg",
    compute=neighbor_collusion_payments,
    properties=(
        "strategyproof",
        "individually-rational",
        "off-path-neighbor-collusion-resistant",
        "lcp-output",
    ),
)
