"""The paper's contribution: truthful pricing mechanisms for unicast.

Public surface:

* :func:`~repro.core.vcg_unicast.vcg_unicast_payments` — the Section III.A
  mechanism on node-weighted graphs (``method="fast"`` uses Algorithm 1,
  ``method="naive"`` the per-removal Dijkstra oracle).
* :func:`~repro.core.link_vcg.link_vcg_payments` /
  :func:`~repro.core.link_vcg.all_sources_link_payments` — the Section
  III.F mechanism on link-weighted digraphs (the model of the evaluation).
* :func:`~repro.core.collusion.neighbor_collusion_payments` /
  :func:`~repro.core.collusion.group_collusion_payments` — the Section
  III.E collusion-resistant schemes.
* :mod:`~repro.core.truthfulness` — empirical IC/IR verification harness.
* :mod:`~repro.core.overpayment` — the TOR/IOR/worst metrics of III.G.
* :mod:`~repro.core.resale` — resale-the-path collusion analysis (III.H).
"""

from repro.core.mechanism import UnicastPayment, relay_utility, MechanismSpec
from repro.core.vcg_unicast import (
    vcg_unicast_payments,
    vcg_payment_to_node,
)
from repro.core.fast_payment import fast_vcg_payments, FastPaymentResult
from repro.core.link_vcg import (
    link_vcg_payments,
    all_sources_link_payments,
    LinkPaymentTable,
)
from repro.core.fast_link_payment import fast_link_vcg_payments
from repro.core.node_table import NodePaymentTable, all_sources_node_payments
from repro.core.allpairs import (
    TrafficMatrix,
    pairwise_vcg_payments,
    network_economy,
    NetworkEconomy,
)
from repro.core.collusion import (
    neighbor_collusion_payments,
    group_collusion_payments,
    find_two_agent_collusion,
)
from repro.core.truthfulness import (
    check_individual_rationality,
    check_strategyproof,
    check_group_strategyproof,
    DeviationReport,
)
from repro.core.overpayment import (
    OverpaymentSummary,
    overpayment_summary,
    per_hop_breakdown,
)
from repro.core.resale import find_resale_opportunities, ResaleOpportunity

__all__ = [
    "UnicastPayment",
    "relay_utility",
    "MechanismSpec",
    "vcg_unicast_payments",
    "vcg_payment_to_node",
    "fast_vcg_payments",
    "FastPaymentResult",
    "link_vcg_payments",
    "all_sources_link_payments",
    "LinkPaymentTable",
    "fast_link_vcg_payments",
    "NodePaymentTable",
    "all_sources_node_payments",
    "TrafficMatrix",
    "pairwise_vcg_payments",
    "network_economy",
    "NetworkEconomy",
    "neighbor_collusion_payments",
    "group_collusion_payments",
    "find_two_agent_collusion",
    "check_individual_rationality",
    "check_strategyproof",
    "check_group_strategyproof",
    "DeviationReport",
    "OverpaymentSummary",
    "overpayment_summary",
    "per_hop_breakdown",
    "find_resale_opportunities",
    "ResaleOpportunity",
]
