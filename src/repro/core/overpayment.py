"""Overpayment metrics (Section III.G).

For a source ``v_i`` paying ``p_i`` in total for a route of (relay) cost
``c(i, 0)``, the evaluation tracks:

* **TOR** (total overpayment ratio): ``sum_i p_i / sum_i c(i, 0)``;
* **IOR** (individual overpayment ratio): ``mean_i p_i / c(i, 0)``;
* **worst ratio**: ``max_i p_i / c(i, 0)``;

and, for Figure 3(d), the same ratios bucketed by the source's hop
distance to the access point.

Sources are excluded (and counted) when the ratio is undefined:
one-hop sources have no relays (``c(i, 0) = 0``; nothing is paid either),
and monopolized sources have an infinite payment (ruled out by the
paper's biconnectivity assumption, but possible in the sparse
heterogeneous topologies of the second simulation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

import numpy as np

from repro.core.link_vcg import LinkPaymentTable
from repro.core.mechanism import UnicastPayment

__all__ = [
    "OverpaymentSummary",
    "overpayment_summary",
    "per_hop_breakdown",
    "HopBucket",
]


@dataclass(frozen=True)
class OverpaymentSummary:
    """Aggregate overpayment metrics for one network instance."""

    n_sources: int
    total_payment: float
    total_cost: float
    ior: float
    worst: float
    worst_source: int
    skipped_trivial: int
    skipped_monopoly: int

    @property
    def tor(self) -> float:
        """Total overpayment ratio ``sum p_i / sum c(i, 0)``."""
        if self.total_cost <= 0:
            return float("nan")
        return self.total_payment / self.total_cost

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.n_sources} sources: TOR {self.tor:.4f}, IOR {self.ior:.4f}, "
            f"worst {self.worst:.4f} (source {self.worst_source}); skipped "
            f"{self.skipped_trivial} one-hop + {self.skipped_monopoly} monopolized"
        )


def _iter_source_ratios(results: Iterable[UnicastPayment]):
    for r in results:
        total = r.total_payment
        cost = r.lcp_cost
        yield r.source, total, cost


def overpayment_summary(
    results: Iterable[UnicastPayment] | LinkPaymentTable,
) -> OverpaymentSummary:
    """Compute TOR / IOR / worst over per-source payment results.

    Accepts either an iterable of :class:`UnicastPayment` or a whole
    :class:`~repro.core.link_vcg.LinkPaymentTable`.
    """
    if isinstance(results, LinkPaymentTable):
        table = results
        results = (table.payment_result(i) for i in table.sources())

    total_payment = 0.0
    total_cost = 0.0
    ratios = []
    sources = []
    skipped_trivial = 0
    skipped_monopoly = 0
    for source, payment, cost in _iter_source_ratios(results):
        if not np.isfinite(payment):
            skipped_monopoly += 1
            continue
        if cost <= 0:
            skipped_trivial += 1
            continue
        total_payment += payment
        total_cost += cost
        ratios.append(payment / cost)
        sources.append(source)
    if not ratios:
        return OverpaymentSummary(
            n_sources=0,
            total_payment=0.0,
            total_cost=0.0,
            ior=float("nan"),
            worst=float("nan"),
            worst_source=-1,
            skipped_trivial=skipped_trivial,
            skipped_monopoly=skipped_monopoly,
        )
    ratios_arr = np.asarray(ratios)
    worst_idx = int(np.argmax(ratios_arr))
    return OverpaymentSummary(
        n_sources=len(ratios),
        total_payment=total_payment,
        total_cost=total_cost,
        ior=float(ratios_arr.mean()),
        worst=float(ratios_arr.max()),
        worst_source=sources[worst_idx],
        skipped_trivial=skipped_trivial,
        skipped_monopoly=skipped_monopoly,
    )


@dataclass(frozen=True)
class HopBucket:
    """Overpayment statistics for sources at one hop distance."""

    hops: int
    count: int
    mean_ratio: float
    max_ratio: float


def per_hop_breakdown(
    table: LinkPaymentTable | Iterable[UnicastPayment],
    max_hops: int | None = None,
) -> list[HopBucket]:
    """Figure 3(d): overpayment ratio bucketed by hop distance to the root.

    The hop distance of a source is the edge count of its route. Sources
    with undefined ratios are skipped as in :func:`overpayment_summary`.
    """
    if isinstance(table, LinkPaymentTable):
        results: Iterable[UnicastPayment] = (
            table.payment_result(i) for i in table.sources()
        )
    else:
        results = table
    buckets: Mapping[int, list[float]] = {}
    for r in results:
        if not np.isfinite(r.total_payment) or r.lcp_cost <= 0:
            continue
        hops = len(r.path) - 1
        if max_hops is not None and hops > max_hops:
            continue
        buckets.setdefault(hops, []).append(r.total_payment / r.lcp_cost)
    out = []
    for hops in sorted(buckets):
        vals = np.asarray(buckets[hops])
        out.append(
            HopBucket(
                hops=hops,
                count=int(vals.shape[0]),
                mean_ratio=float(vals.mean()),
                max_ratio=float(vals.max()),
            )
        )
    return out
