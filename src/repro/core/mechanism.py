"""Mechanism-design primitives shared by all pricing schemes.

The standard model (Section II.A): agents hold private types, a mechanism
maps declared types to an *output* (here: the routing path) and a
*payment* per agent; agent utility is ``valuation + payment``. For unicast
relaying the valuation of agent ``k`` is ``-c_k`` when it relays and 0
otherwise, so ``u^k = p^k - x_k * c_k``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Protocol, runtime_checkable

import numpy as np

__all__ = [
    "UnicastPayment",
    "relay_utility",
    "MechanismSpec",
    "PaymentResult",
    "resolve_backend",
    "resolve_monopoly_policy",
    "spt_backend_for",
    "BACKENDS",
    "MONOPOLY_POLICIES",
]

#: Every kernel backend a pricing entry point accepts. ``"auto"`` picks
#: the compiled scipy path when available; ``"python"`` is the scalar
#: oracle; ``"numpy"`` runs the vectorized Algorithm-1 kernels over the
#: pure-Python SPT builder (see :mod:`repro.core.fast_payment`).
BACKENDS: tuple[str, ...] = ("auto", "python", "scipy", "numpy")

#: What to do when a relay's removal disconnects the endpoints.
MONOPOLY_POLICIES: tuple[str, ...] = ("raise", "inf")


def resolve_backend(backend: str) -> str:
    """Validate a ``backend=`` keyword shared by every pricing entry point.

    Returns the backend unchanged; raises
    :class:`~repro.errors.InvalidRequestError` (a ``ValueError``
    subclass) on anything outside :data:`BACKENDS`. Centralizing the
    check keeps the error message (and the accepted set) identical
    across the node and link entry points.
    """
    if backend not in BACKENDS:
        from repro.errors import InvalidRequestError

        raise InvalidRequestError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    return backend


def spt_backend_for(backend: str) -> str:
    """The Dijkstra backend matching a pricing ``backend``.

    The SPT layer knows ``"auto"``/``"python"``/``"scipy"`` only;
    ``"numpy"`` (vectorized payment kernels) deliberately runs over the
    pure-Python SPT builder so kernel comparisons are apples-to-apples.
    """
    return "python" if resolve_backend(backend) in ("python", "numpy") else backend


def resolve_monopoly_policy(on_monopoly: str) -> str:
    """Validate an ``on_monopoly=`` keyword (``"raise"`` or ``"inf"``).

    Raises :class:`~repro.errors.InvalidRequestError` (a ``ValueError``
    subclass) on anything else.
    """
    if on_monopoly not in MONOPOLY_POLICIES:
        from repro.errors import InvalidRequestError

        raise InvalidRequestError(
            f"on_monopoly must be 'raise' or 'inf', got {on_monopoly!r}"
        )
    return on_monopoly


# The PR-4 ``warn_renamed_kwarg`` shim (``algorithm=``/``monopoly=``)
# completed its deprecation cycle in PR-9 and is gone; the renamed
# keywords now fail with a plain TypeError like any unknown kwarg.


@runtime_checkable
class PaymentResult(Protocol):
    """What every per-request pricing outcome exposes.

    :class:`UnicastPayment` and
    :class:`~repro.core.fast_payment.FastPaymentResult` implement it
    directly; the batch :class:`~repro.core.link_vcg.LinkPaymentTable`
    exposes the same shape per source via
    :meth:`~repro.core.link_vcg.LinkPaymentTable.payment_result` (and
    shares the ``to_dict``/``from_dict`` serialization contract).
    """

    @property
    def path(self) -> tuple[int, ...]: ...

    @property
    def payments(self) -> Mapping[int, float]: ...

    @property
    def path_cost(self) -> float: ...

    def to_dict(self) -> dict: ...


@dataclass(frozen=True)
class UnicastPayment:
    """The outcome of a unicast pricing mechanism for one source.

    Attributes
    ----------
    source, target:
        The communicating endpoints (target is usually the access point).
    path:
        The chosen route, source first. Empty when ``source == target``.
    lcp_cost:
        Cost of the route under the declared profile, using the owning
        model's convention (internal-node cost for the node model, relay
        arc cost for the link model — the source's own expense is never
        part of it, matching Section II.C).
    payments:
        Mapping node id -> payment from the source. VCG pays only on-path
        relays; the Section III.E schemes may also pay off-path nodes, so
        the mapping is not restricted to ``path``. Zero payments may be
        omitted.
    scheme:
        Short identifier of the producing scheme (``"vcg"``,
        ``"neighbor-collusion"``, ...), for reporting.
    """

    source: int
    target: int
    path: tuple[int, ...]
    lcp_cost: float
    payments: Mapping[int, float]
    scheme: str = "vcg"

    def __post_init__(self) -> None:
        object.__setattr__(self, "path", tuple(int(v) for v in self.path))
        object.__setattr__(
            self,
            "payments",
            {int(k): float(v) for k, v in dict(self.payments).items()},
        )

    @property
    def relays(self) -> tuple[int, ...]:
        """Internal nodes of the route (the nodes VCG pays)."""
        return self.path[1:-1] if len(self.path) > 2 else ()

    def payment(self, node: int) -> float:
        """Payment to ``node`` (0 when the scheme pays it nothing)."""
        return self.payments.get(int(node), 0.0)

    @property
    def path_cost(self) -> float:
        """Cost of the chosen route (alias of ``lcp_cost``; the uniform
        :class:`PaymentResult` accessor shared by every result type)."""
        return self.lcp_cost

    @property
    def total_payment(self) -> float:
        """``p_i`` of Section III.G: the source's total outlay."""
        return float(sum(self.payments.values()))

    def to_dict(self) -> dict:
        """Tagged, versioned JSON-safe encoding (see :mod:`repro.io`)."""
        from repro import io

        return io.to_dict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "UnicastPayment":
        """Inverse of :meth:`to_dict`; rejects payloads of other types."""
        from repro import io

        return io.decode_as(cls, payload)

    @property
    def overpayment_ratio(self) -> float:
        """``p_i / c(i, 0)`` — the per-source ratio behind IOR/TOR.

        ``nan`` when the route has no relays (a direct link costs and pays
        nothing; such sources are excluded from the paper's averages).
        """
        if self.lcp_cost <= 0:
            return float("nan")
        return self.total_payment / self.lcp_cost

    @property
    def overpayment(self) -> float:
        """Absolute overpayment ``p_i - c(i, 0)`` (>= 0 for VCG schemes)."""
        return self.total_payment - self.lcp_cost

    def on_path(self, node: int) -> bool:
        """True if the node lies on the chosen route."""
        return int(node) in self.path

    def describe(self) -> str:
        """One-line human-readable summary."""
        route = " -> ".join(map(str, self.path)) if self.path else "(empty)"
        return (
            f"[{self.scheme}] {self.source} => {self.target}: route {route}; "
            f"cost {self.lcp_cost:.6g}, pays {self.total_payment:.6g}"
        )


def relay_utility(
    result: UnicastPayment, true_costs: np.ndarray | Mapping[int, float], node: int
) -> float:
    """Utility ``u^k = p^k - x_k * c_k`` of agent ``node`` under ``result``.

    ``true_costs`` is indexed by node id; in the link model pass the true
    cost of the specific arc the path uses at ``node`` (helper:
    :func:`repro.core.link_vcg.relay_link_utility`).
    """
    node = int(node)
    cost = float(true_costs[node])
    used = node in result.relays
    return result.payment(node) - (cost if used else 0.0)


@dataclass(frozen=True)
class MechanismSpec:
    """A pluggable unicast mechanism: name + payment function.

    ``compute(graph, source, target)`` must return a
    :class:`UnicastPayment`. The truthfulness harness
    (:mod:`repro.core.truthfulness`) and the baseline comparisons both
    operate on this interface, so the paper's scheme, the collusion
    variants and the baselines are interchangeable test subjects.
    """

    name: str
    compute: Callable[..., UnicastPayment]
    properties: tuple[str, ...] = field(default_factory=tuple)

    def __call__(self, graph, source: int, target: int, **kwargs) -> UnicastPayment:
        return self.compute(graph, source, target, **kwargs)
