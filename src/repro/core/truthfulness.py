"""Empirical verification of mechanism properties (IC, IR, group-IC).

VCG truthfulness is a theorem, not a property of our *code* — an
implementation bug (an off-by-one in the avoiding path, a wrong sign in
the payment) silently breaks it. This harness treats any
:class:`~repro.core.mechanism.MechanismSpec` as a black box and hammers it
with deviations:

* :func:`check_individual_rationality` — every agent's utility at the
  truthful profile is non-negative;
* :func:`check_strategyproof` — no unilateral misdeclaration (grid of
  scale factors plus targeted values) beats truthtelling;
* :func:`check_group_strategyproof` — no *joint* deviation by a given
  coalition raises the coalition's total utility (the paper's k-agents
  strategyproofness, Definition 1).

The property tests use these against the III.A scheme (must pass IC/IR,
must FAIL pair-IC per Theorem 7) and the III.E scheme (must also pass
pair-IC for neighbouring pairs).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Sequence


from repro.core.mechanism import MechanismSpec, relay_utility
from repro.errors import MonopolyError
from repro.graph.node_graph import NodeWeightedGraph

__all__ = [
    "DeviationReport",
    "check_individual_rationality",
    "check_strategyproof",
    "check_group_strategyproof",
    "check_link_strategyproof",
    "default_deviations",
]

#: Multiplicative deviations tried per agent, by default: shading down to
#: free-riding, and inflating up to near-monopoly pricing.
DEFAULT_SCALE_FACTORS: tuple[float, ...] = (0.0, 0.2, 0.5, 0.9, 1.1, 2.0, 5.0, 50.0)


def default_deviations(true_cost: float) -> list[float]:
    """The declared costs an agent tries instead of ``true_cost``."""
    out = [true_cost * f for f in DEFAULT_SCALE_FACTORS]
    out.extend([true_cost + 1.0, max(true_cost - 1.0, 0.0)])
    return sorted({round(v, 12) for v in out if v >= 0})


@dataclass(frozen=True)
class Violation:
    """One deviation that (apparently) beat truthtelling."""

    agents: tuple[int, ...]
    declared: tuple[float, ...]
    truthful_utility: float
    deviating_utility: float

    @property
    def gain(self) -> float:
        """Utility gained relative to the truthful baseline."""
        return self.deviating_utility - self.truthful_utility


@dataclass(frozen=True)
class DeviationReport:
    """Outcome of a deviation sweep."""

    mechanism: str
    checked: int
    violations: tuple[Violation, ...] = field(default_factory=tuple)

    @property
    def ok(self) -> bool:
        """True when no violation was found."""
        return not self.violations

    def __bool__(self) -> bool:
        return self.ok

    def describe(self) -> str:
        """One-line human-readable summary."""
        if self.ok:
            return f"{self.mechanism}: {self.checked} deviations, none profitable"
        worst = max(self.violations, key=lambda v: v.gain)
        return (
            f"{self.mechanism}: {len(self.violations)} / {self.checked} "
            f"deviations profitable; worst: agents {worst.agents} declare "
            f"{worst.declared} and gain {worst.gain:.6g}"
        )


def check_individual_rationality(
    mechanism: MechanismSpec,
    g_true: NodeWeightedGraph,
    source: int,
    target: int,
    tol: float = 1e-9,
) -> DeviationReport:
    """Verify every agent has non-negative utility at the truthful profile."""
    result = mechanism(g_true, source, target)
    violations = []
    for k in range(g_true.n):
        if k in (source, target):
            continue
        u = relay_utility(result, g_true.costs, k)
        if u < -tol:
            violations.append(
                Violation(
                    agents=(k,),
                    declared=(float(g_true.costs[k]),),
                    truthful_utility=u,
                    deviating_utility=u,
                )
            )
    return DeviationReport(
        mechanism=f"{mechanism.name} [IR]",
        checked=g_true.n - 2,
        violations=tuple(violations),
    )


def check_strategyproof(
    mechanism: MechanismSpec,
    g_true: NodeWeightedGraph,
    source: int,
    target: int,
    agents: Iterable[int] | None = None,
    deviations: Sequence[float] | None = None,
    tol: float = 1e-7,
) -> DeviationReport:
    """Sweep unilateral deviations; report any that beat truthtelling.

    Utilities are always evaluated with **true** costs (an agent cannot
    change what relaying actually costs it, only what it claims).
    Deviations that create a monopoly are skipped — the truthful baseline
    assumed away monopolies, and an infinite payment to a *different*
    agent is not a deviation gain for this one.
    """
    truthful = mechanism(g_true, source, target)
    base = {
        k: relay_utility(truthful, g_true.costs, k) for k in range(g_true.n)
    }
    if agents is None:
        agents = [k for k in range(g_true.n) if k not in (source, target)]
    checked = 0
    violations = []
    for k in agents:
        devs = (
            deviations
            if deviations is not None
            else default_deviations(float(g_true.costs[k]))
        )
        for d in devs:
            if abs(d - g_true.costs[k]) < 1e-12:
                continue
            declared_g = g_true.with_declaration(k, d)
            try:
                outcome = mechanism(declared_g, source, target)
            except MonopolyError:
                continue
            checked += 1
            u = relay_utility(outcome, g_true.costs, k)
            if u > base[k] + tol:
                violations.append(
                    Violation(
                        agents=(k,),
                        declared=(float(d),),
                        truthful_utility=base[k],
                        deviating_utility=u,
                    )
                )
    return DeviationReport(
        mechanism=f"{mechanism.name} [IC]",
        checked=checked,
        violations=tuple(violations),
    )


def check_group_strategyproof(
    mechanism: MechanismSpec,
    g_true: NodeWeightedGraph,
    source: int,
    target: int,
    group: Sequence[int],
    deviations: Sequence[float] | None = None,
    max_combinations: int = 512,
    tol: float = 1e-7,
) -> DeviationReport:
    """Sweep *joint* deviations of ``group``; compare coalition utility.

    This operationalizes Definition 1 (k-agents strategyproofness): the
    coalition's summed utility under any joint misdeclaration must not
    exceed its truthful sum. The deviation grid is the cross product of
    each member's deviation list, truncated to ``max_combinations``.
    """
    group = [int(k) for k in group]
    for k in group:
        if k in (source, target):
            raise ValueError(f"group member {k} is an endpoint")
    truthful = mechanism(g_true, source, target)
    base_sum = sum(relay_utility(truthful, g_true.costs, k) for k in group)

    per_agent = [
        (
            deviations
            if deviations is not None
            else default_deviations(float(g_true.costs[k]))
        )
        for k in group
    ]
    checked = 0
    violations = []
    for combo in itertools.islice(itertools.product(*per_agent), max_combinations):
        if all(
            abs(d - g_true.costs[k]) < 1e-12 for d, k in zip(combo, group)
        ):
            continue
        costs = g_true.costs.copy()
        for k, d in zip(group, combo):
            costs[k] = d
        declared_g = g_true.with_costs(costs)
        try:
            outcome = mechanism(declared_g, source, target)
        except MonopolyError:
            continue
        checked += 1
        joint = sum(relay_utility(outcome, g_true.costs, k) for k in group)
        if joint > base_sum + tol:
            violations.append(
                Violation(
                    agents=tuple(group),
                    declared=tuple(float(d) for d in combo),
                    truthful_utility=base_sum,
                    deviating_utility=joint,
                )
            )
    return DeviationReport(
        mechanism=f"{mechanism.name} [group-IC {tuple(group)}]",
        checked=checked,
        violations=tuple(violations),
    )


def check_link_strategyproof(
    dg_true,
    source: int,
    target: int,
    agents: Iterable[int] | None = None,
    scale_factors: Sequence[float] = (0.0, 0.5, 0.9, 1.1, 2.0, 10.0),
    tol: float = 1e-7,
) -> DeviationReport:
    """IC sweep for the Section III.F mechanism (vector types).

    Each agent tries rescaling its entire declared cost *row* by the
    given factors (per-link deviations are a strict subset of what the
    VCG argument covers; row rescaling is the canonical family that can
    steer the output). Utilities use the true arc costs via
    :func:`repro.core.link_vcg.relay_link_utility`.
    """
    import numpy as _np

    from repro.core.link_vcg import link_vcg_payments, relay_link_utility
    from repro.errors import DisconnectedError

    truthful = link_vcg_payments(dg_true, source, target, on_monopoly="inf")
    base = {
        k: relay_link_utility(dg_true, truthful, k) for k in range(dg_true.n)
    }
    if agents is None:
        agents = [k for k in range(dg_true.n) if k not in (source, target)]
    checked = 0
    violations = []
    for k in agents:
        for factor in scale_factors:
            if abs(factor - 1.0) < 1e-12:
                continue
            row = dg_true.cost_row(k)
            finite = _np.isfinite(row)
            row[finite] *= factor
            row[k] = 0.0
            lied = dg_true.with_declaration(k, row)
            try:
                outcome = link_vcg_payments(lied, source, target, on_monopoly="inf")
            except DisconnectedError:
                continue
            checked += 1
            u = relay_link_utility(dg_true, outcome, k)
            if u > base[k] + tol:
                violations.append(
                    Violation(
                        agents=(int(k),),
                        declared=(float(factor),),
                        truthful_utility=base[k],
                        deviating_utility=u,
                    )
                )
    return DeviationReport(
        mechanism="link-vcg [IC, row rescaling]",
        checked=checked,
        violations=tuple(violations),
    )
