"""All-sources VCG payments in the node model (batch engine).

The mirror of :func:`repro.core.link_vcg.all_sources_link_payments` for
the Sections II-III.E scalar-cost model: every source's payments toward
one access point, computed with one *removal Dijkstra per interior
routing-tree node* instead of one Algorithm-1 run per source. For the
"everyone talks to the AP" workload this is the cheapest way to price
the whole network (the routes share the SPT, so the avoiding distances
are shared too), and it powers the node-model network-wide analyses
(resale scans, economies, sensitivity sweeps).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

import numpy as np

from repro.core.mechanism import UnicastPayment
from repro.errors import DisconnectedError
from repro.graph.dijkstra import node_weighted_spt
from repro.graph.node_graph import NodeWeightedGraph
from repro.utils.validation import check_node_index

__all__ = ["NodePaymentTable", "all_sources_node_payments"]


@dataclass(frozen=True)
class NodePaymentTable:
    """All-sources payments toward one access point (node model).

    ``dist[i]`` is the internal-node cost of ``i``'s route (the paper's
    ``c(i, 0)``); ``payments[i]`` maps relay -> payment; ``parent[i]`` is
    the next hop toward the root.
    """

    root: int
    dist: np.ndarray
    payments: tuple[Mapping[int, float], ...]
    parent: np.ndarray

    @property
    def n(self) -> int:
        """Number of nodes."""
        return int(self.dist.shape[0])

    def path(self, i: int) -> list[int]:
        """Route of one source toward the root (source first)."""
        check_node_index(i, self.n)
        if not np.isfinite(self.dist[i]):
            raise DisconnectedError(i, self.root)
        out = [int(i)]
        while out[-1] != self.root:
            nxt = int(self.parent[out[-1]])
            if nxt < 0 or len(out) > self.n:  # pragma: no cover
                raise DisconnectedError(i, self.root)
            out.append(nxt)
        return out

    def total_payment(self, i: int) -> float:
        """Total payment across all relays."""
        return float(sum(self.payments[i].values()))

    def payment_result(self, i: int) -> UnicastPayment:
        """Per-source view as a :class:`UnicastPayment`."""
        return UnicastPayment(
            int(i),
            self.root,
            tuple(self.path(i)),
            float(self.dist[i]),
            dict(self.payments[i]),
            scheme="vcg",
        )

    def sources(self) -> Iterator[int]:
        """All nodes with a finite route to the root (root excluded)."""
        for i in range(self.n):
            if i != self.root and np.isfinite(self.dist[i]):
                yield i


def all_sources_node_payments(
    g: NodeWeightedGraph, root: int = 0
) -> NodePaymentTable:
    """Price every source toward ``root`` in one batch.

    For each interior node ``k`` of the SPT toward the root, one Dijkstra
    on ``G \\ v_k`` (rooted at the access point — distances are symmetric
    in the undirected node model) yields ``d_{-k}(i)`` for **all** sources
    ``i`` simultaneously; the payment is then
    ``p_i^k = d_k + d_{-k}(i) - d(i)`` for every ``i`` whose route passes
    through ``k``. Monopoly relays produce infinite entries.
    """
    root = check_node_index(root, g.n)
    spt = node_weighted_spt(g, root, backend="auto")
    n = g.n
    parent = spt.parent.copy()

    # Interior tree nodes: some source's relay.
    kids = spt.children()
    interior = [
        k for k in range(n)
        if k != root and np.isfinite(spt.dist[k]) and kids[k]
    ]
    removal: dict[int, np.ndarray] = {}
    for k in interior:
        avoid = node_weighted_spt(g, root, forbidden=[k], backend="python")
        removal[k] = avoid.dist

    payments: list[dict[int, float]] = [dict() for _ in range(n)]
    for i in range(n):
        if i == root or not np.isfinite(spt.dist[i]):
            continue
        route = spt.path_from_root(i)[::-1]  # i ... root
        base = float(spt.dist[i])
        for k in route[1:-1]:
            detour = float(removal[k][i])
            payments[i][k] = float(g.costs[k]) + (detour - base)

    return NodePaymentTable(
        root=root,
        dist=spt.dist.copy(),
        payments=tuple(payments),
        parent=parent,
    )
