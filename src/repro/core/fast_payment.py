"""Algorithm 1: fast VCG payment computation in O(n log n + m).

The naive way to pay the relays of ``P(v_i, v_j, d)`` removes each relay
and re-runs Dijkstra — O(n) Dijkstras in the worst case. Section III.B
computes **all** the ``v_k``-avoiding path costs together, borrowing the
Hershberger–Suri replacement-path machinery, in a single
O(n log n + m) pass. This module implements it for the node-weighted
model; :func:`repro.core.link_vcg.link_vcg_payments` reuses it for the
link model through the tail-cost embedding.

How it works (notation of the paper, ``P = r_0 r_1 ... r_s``,
``r_0 = v_i``, ``r_s = v_j``):

1. Build ``SPT(v_i)`` and ``SPT(v_j)``; read off ``L(u)`` (cost
   ``v_i -> u``) and ``R(v)`` (cost ``v -> v_j``).
2. Assign every node its *level*: the index of the last path node on its
   ``SPT(v_i)`` tree path (step 2 of the paper; computed by
   :meth:`~repro.graph.spt.ShortestPathTree.branch_labels`). By Lemma 1 an
   optimal ``r_l``-avoiding path is a ``SPT(v_i)`` prefix through levels
   ``< l``, one crossing edge, then a suffix through levels ``>= l``.
3. For every level ``l``, compute ``R^{-l}(x)`` for the level-``l`` region
   (the subtree hanging off ``r_l``): the best ``x -> v_j`` continuation
   avoiding ``r_l``. The paper's step 3 processes nodes greedily; we run
   an equivalent boundary Dijkstra per region — regions are disjoint, so
   the total work stays O(n log n + m). The closure through a
   higher-level neighbour ``y`` uses ``R(y)``, which avoids ``r_l`` by
   Lemma 2.
4. Combine each region node with its best lower-level neighbour to get the
   per-level candidate ``c^{-l}`` (step 4).
5. Sweep ``l = 1 .. s-1`` with a lazy-deletion heap over crossing edges
   ``(u, v)`` with ``level(u) < l < level(v)``, keyed by
   ``L~(u) + R~(v)`` (step 5). Each edge enters and leaves the heap once.
6. ``||P_{-r_l}|| = min(heap minimum, c^{-l})`` and the payment follows
   (step 6).

Cost accounting: ``L~(u) = L(u) + c_u`` (0 for the source) and
``R~(v) = R(v) + c_v`` (0 for the target), so ``L~(u) + R~(v)`` is exactly
the internal-node cost of the spliced path.

Correctness is property-tested against the naive oracle on thousands of
random biconnected graphs (``tests/test_fast_payment.py``).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.core.mechanism import UnicastPayment
from repro.errors import DisconnectedError, MonopolyError
from repro.graph.dijkstra import node_weighted_spt
from repro.graph.node_graph import NodeWeightedGraph
from repro.obs.metrics import REGISTRY as _metrics
from repro.obs.tracing import TRACER as _tracer
from repro.utils.heap import LazyMinHeap
from repro.utils.validation import check_node_index

__all__ = ["fast_vcg_payments", "FastPaymentResult"]


@dataclass(frozen=True)
class FastPaymentResult:
    """Output of Algorithm 1, with the intermediates exposed for study.

    Attributes
    ----------
    path:
        The least cost path ``r_0 .. r_s`` (source first).
    lcp_cost:
        ``||P(v_i, v_j, d)||`` (internal-node cost).
    avoiding_costs:
        ``r_l -> ||P_{-r_l}(v_i, v_j, d)||`` for every relay; ``inf``
        marks a monopoly relay (only with ``on_monopoly="inf"``).
    payments:
        ``r_l -> p_i^{r_l}`` per step 6.
    levels:
        The step-2 level of every node (-1 for nodes unreachable from the
        source). Exposed because the distributed protocol and the tests
        reuse it.
    stats:
        Operation counts (heap pushes, region sizes) backing the
        complexity claims in the benchmark write-up.
    """

    source: int
    target: int
    path: tuple[int, ...]
    lcp_cost: float
    avoiding_costs: Mapping[int, float]
    payments: Mapping[int, float]
    levels: np.ndarray
    stats: Mapping[str, int] = field(default_factory=dict)

    def to_unicast_payment(self) -> UnicastPayment:
        """Convert to the generic :class:`UnicastPayment` form."""
        return UnicastPayment(
            self.source,
            self.target,
            self.path,
            self.lcp_cost,
            dict(self.payments),
            scheme="vcg",
        )


def fast_vcg_payments(
    g: NodeWeightedGraph,
    source: int,
    target: int,
    on_monopoly: str = "raise",
    backend: str = "auto",
) -> FastPaymentResult:
    """Run Algorithm 1. See the module docstring for the plan.

    Raises :class:`DisconnectedError` when the endpoints are disconnected
    and :class:`MonopolyError` for monopoly relays unless
    ``on_monopoly="inf"``.
    """
    source = check_node_index(source, g.n)
    target = check_node_index(target, g.n)
    if on_monopoly not in ("raise", "inf"):
        raise ValueError(
            f"on_monopoly must be 'raise' or 'inf', got {on_monopoly!r}"
        )
    if source == target:
        return FastPaymentResult(
            source, target, (), 0.0, {}, {}, np.full(g.n, -1, dtype=np.int64)
        )
    with _metrics.timed("fast_payment.time"), _tracer.span(
        "fast_payment", n=g.n, source=source, target=target
    ):
        return _fast_vcg_payments_impl(g, source, target, on_monopoly, backend)


def _fast_vcg_payments_impl(
    g: NodeWeightedGraph,
    source: int,
    target: int,
    on_monopoly: str,
    backend: str,
) -> FastPaymentResult:
    if _metrics.enabled:
        _metrics.add("fast_payment.runs", 1)
    # Steps 1-2: the two shortest path trees, the LCP, and the levels.
    with _tracer.span("fast_payment.spt_build"):
        spt_i = node_weighted_spt(g, source, backend=backend)
        if not spt_i.reachable(target):
            raise DisconnectedError(source, target)
        spt_j = node_weighted_spt(g, target, backend=backend)
        path = spt_i.path_from_root(target)
        s = len(path) - 1
        lcp_cost = float(spt_i.dist[target])

        costs = g.costs
        l_til = spt_i.dist + costs  # L~(u); source fixed below
        l_til[source] = 0.0
        r_til = spt_j.dist + costs  # R~(v); target fixed below
        r_til[target] = 0.0

        # Step 2: levels (branch labels along P in SPT(v_i)).
        levels = spt_i.branch_labels(path)

    if s <= 1:  # direct edge: nothing to pay
        return FastPaymentResult(
            source, target, tuple(path), lcp_cost, {}, {}, levels
        )

    # Steps 3-5 setup: regions and the crossing-edge table.
    with _tracer.span("fast_payment.table_sweep"):
        on_path = np.zeros(g.n, dtype=bool)
        on_path[np.asarray(path, dtype=np.int64)] = True

        # Steps 3-4: per-level boundary Dijkstra over the (disjoint) regions.
        region_nodes: dict[int, list[int]] = {}
        for x in range(g.n):
            lx = int(levels[x])
            if 1 <= lx <= s - 1 and not on_path[x]:
                region_nodes.setdefault(lx, []).append(x)

        c_minus = np.full(s, np.inf)  # c^{-l}, indexed by l (entries 1..s-1)
        region_total = 0
        for l, members in region_nodes.items():
            region_total += len(members)
            c_minus[l] = _region_candidate(
                g, members, l, levels, l_til, r_til
            )

        # Step 5: crossing-edge sweep with a lazy-deletion heap.
        by_start: dict[int, list[tuple[float, int]]] = {}
        heap_edges = 0
        for u, v in g.edge_iter():
            lu, lv = int(levels[u]), int(levels[v])
            if lu < 0 or lv < 0:
                continue
            if lu > lv:
                u, v, lu, lv = v, u, lv, lu
            if lv - lu < 2:
                continue  # no level strictly between: never a crossing edge
            value = float(l_til[u] + r_til[v])
            if not np.isfinite(value):
                continue
            # Valid for every removal level l with lu < l < lv; enters the
            # sweep at l = lu + 1 and lazily expires once l >= lv.
            by_start.setdefault(lu + 1, []).append((value, lv))
            heap_edges += 1

    with _tracer.span("fast_payment.payment_assembly"):
        heap = LazyMinHeap()
        avoiding: dict[int, float] = {}
        payments: dict[int, float] = {}
        for l in range(1, s):
            for value, lv in by_start.get(l, ()):
                heap.push(value, lv)
            entry = heap.peek_valid(lambda lv, _l=l: lv > _l)
            best = entry[0] if entry is not None else np.inf
            avoid = min(best, float(c_minus[l]))
            r_l = path[l]
            if not np.isfinite(avoid):
                if on_monopoly == "raise":
                    raise MonopolyError(source, target, r_l)
                avoiding[r_l] = float("inf")
                payments[r_l] = float("inf")
                continue
            avoiding[r_l] = avoid
            payments[r_l] = avoid - lcp_cost + float(costs[r_l])  # step 6

    stats = {
        "path_hops": s,
        "crossing_edges": heap_edges,
        "region_nodes": region_total,
        "regions": len(region_nodes),
    }
    if _metrics.enabled:
        _metrics.add("fast_payment.path_hops", s)
        _metrics.add("fast_payment.crossing_edges", heap_edges)
        _metrics.add("fast_payment.region_nodes", region_total)
    return FastPaymentResult(
        source,
        target,
        tuple(path),
        lcp_cost,
        avoiding,
        payments,
        levels,
        stats,
    )


def _region_candidate(
    g: NodeWeightedGraph,
    members: list[int],
    l: int,
    levels: np.ndarray,
    l_til: np.ndarray,
    r_til: np.ndarray,
) -> float:
    """Steps 3-4 for one level-``l`` region.

    Runs a Dijkstra over the region where the tentative value of a region
    node ``x`` is ``R~^{-l}(x)`` — ``c_x`` plus the cheapest continuation
    to the target through levels ``> l`` (closed through ``R~`` of the
    first higher-level neighbour, sound by Lemma 2) — and returns

        ``c^{-l} = min over region x, neighbours u with level(u) < l of
        L~(u) + R~^{-l}(x)``.

    Only region-internal edges are relaxed, so across all levels the work
    is bounded by the full edge set once.
    """
    costs = g.costs
    in_region = set(members)
    dist: dict[int, float] = {}
    pq: list[tuple[float, int]] = []
    for x in members:
        best_boundary = np.inf
        for y in g.neighbors(x):
            if levels[y] > l:
                ry = r_til[y]
                if ry < best_boundary:
                    best_boundary = ry
        if np.isfinite(best_boundary):
            d0 = float(costs[x] + best_boundary)
            dist[x] = d0
            heapq.heappush(pq, (d0, x))

    settled: set[int] = set()
    while pq:
        dx, x = heapq.heappop(pq)
        if x in settled or dx > dist.get(x, np.inf):
            continue
        settled.add(x)
        for z in g.neighbors(x):
            z = int(z)
            if z in in_region and z not in settled:
                cand = float(costs[z]) + dx
                if cand < dist.get(z, np.inf):
                    dist[z] = cand
                    heapq.heappush(pq, (cand, z))

    best = np.inf
    for x, dx in dist.items():
        for u in g.neighbors(x):
            if levels[u] >= 0 and levels[u] < l:
                cand = float(l_til[u]) + dx
                if cand < best:
                    best = cand
    return float(best)
