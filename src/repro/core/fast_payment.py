"""Algorithm 1: fast VCG payment computation in O(n log n + m).

The naive way to pay the relays of ``P(v_i, v_j, d)`` removes each relay
and re-runs Dijkstra — O(n) Dijkstras in the worst case. Section III.B
computes **all** the ``v_k``-avoiding path costs together, borrowing the
Hershberger–Suri replacement-path machinery, in a single
O(n log n + m) pass. This module implements it for the node-weighted
model; :func:`repro.core.link_vcg.link_vcg_payments` reuses it for the
link model through the tail-cost embedding.

How it works (notation of the paper, ``P = r_0 r_1 ... r_s``,
``r_0 = v_i``, ``r_s = v_j``):

1. Build ``SPT(v_i)`` and ``SPT(v_j)``; read off ``L(u)`` (cost
   ``v_i -> u``) and ``R(v)`` (cost ``v -> v_j``).
2. Assign every node its *level*: the index of the last path node on its
   ``SPT(v_i)`` tree path (step 2 of the paper; computed by
   :meth:`~repro.graph.spt.ShortestPathTree.branch_labels`). By Lemma 1 an
   optimal ``r_l``-avoiding path is a ``SPT(v_i)`` prefix through levels
   ``< l``, one crossing edge, then a suffix through levels ``>= l``.
3. For every level ``l``, compute ``R^{-l}(x)`` for the level-``l`` region
   (the subtree hanging off ``r_l``): the best ``x -> v_j`` continuation
   avoiding ``r_l``. The paper's step 3 processes nodes greedily; we run
   an equivalent boundary Dijkstra per region — regions are disjoint, so
   the total work stays O(n log n + m). The closure through a
   higher-level neighbour ``y`` uses ``R(y)``, which avoids ``r_l`` by
   Lemma 2.
4. Combine each region node with its best lower-level neighbour to get the
   per-level candidate ``c^{-l}`` (step 4).
5. Sweep ``l = 1 .. s-1`` with a lazy-deletion heap over crossing edges
   ``(u, v)`` with ``level(u) < l < level(v)``, keyed by
   ``L~(u) + R~(v)`` (step 5). Each edge enters and leaves the heap once.
6. ``||P_{-r_l}|| = min(heap minimum, c^{-l})`` and the payment follows
   (step 6).

Cost accounting: ``L~(u) = L(u) + c_u`` (0 for the source) and
``R~(v) = R(v) + c_v`` (0 for the target), so ``L~(u) + R~(v)`` is exactly
the internal-node cost of the spliced path.

Correctness is property-tested against the naive oracle on thousands of
random biconnected graphs (``tests/test_fast_payment.py``).

Kernels and backends
--------------------

The steps above exist in two implementations selected by ``backend``,
following the same convention as :mod:`repro.graph.dijkstra`:

* ``backend="python"`` — per-node/per-edge Python loops. The reference
  the property tests treat as the oracle.
* any other backend (``"auto"``, ``"scipy"``, ``"numpy"``) — the step-2
  region bucketing, the step-5 crossing-edge table and the step-3/4
  boundary/closing scans run as whole-array numpy expressions over the
  CSR adjacency (``arc_sources()``/``indices`` expansion plus ``levels``
  fancy indexing). ``"numpy"`` additionally forces the pure-Python SPT
  builder, which makes it the apples-to-apples vectorized counterpart of
  ``"python"`` in kernel benchmarks and exact-agreement tests.

Both produce bit-identical payments: every scalar reduction the numpy
kernels replace is a min/filter whose IEEE-754 result does not depend on
evaluation order.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.core.mechanism import (
    UnicastPayment,
    resolve_backend,
    resolve_monopoly_policy,
    spt_backend_for,
)
from repro.errors import DisconnectedError, MonopolyError
from repro.graph.dijkstra import node_weighted_spt
from repro.graph.node_graph import NodeWeightedGraph
from repro.graph.spt import ShortestPathTree
from repro.obs.metrics import REGISTRY as _metrics
from repro.obs.tracing import TRACER as _tracer
from repro.utils.heap import LazyMinHeap
from repro.utils.validation import check_node_index

__all__ = ["fast_vcg_payments", "FastPaymentResult"]


@dataclass(frozen=True)
class FastPaymentResult:
    """Output of Algorithm 1, with the intermediates exposed for study.

    Attributes
    ----------
    path:
        The least cost path ``r_0 .. r_s`` (source first).
    lcp_cost:
        ``||P(v_i, v_j, d)||`` (internal-node cost).
    avoiding_costs:
        ``r_l -> ||P_{-r_l}(v_i, v_j, d)||`` for every relay; ``inf``
        marks a monopoly relay (only with ``on_monopoly="inf"``).
    payments:
        ``r_l -> p_i^{r_l}`` per step 6.
    levels:
        The step-2 level of every node (-1 for nodes unreachable from the
        source). Exposed because the distributed protocol and the tests
        reuse it.
    stats:
        Operation counts (heap pushes, region sizes) backing the
        complexity claims in the benchmark write-up.
    """

    source: int
    target: int
    path: tuple[int, ...]
    lcp_cost: float
    avoiding_costs: Mapping[int, float]
    payments: Mapping[int, float]
    levels: np.ndarray
    stats: Mapping[str, int] = field(default_factory=dict)

    def to_unicast_payment(self) -> UnicastPayment:
        """Convert to the generic :class:`UnicastPayment` form."""
        return UnicastPayment(
            self.source,
            self.target,
            self.path,
            self.lcp_cost,
            dict(self.payments),
            scheme="vcg",
        )

    @property
    def path_cost(self) -> float:
        """Cost of the chosen route (alias of ``lcp_cost``; the uniform
        :class:`~repro.core.mechanism.PaymentResult` accessor)."""
        return self.lcp_cost

    def payment(self, node: int) -> float:
        """Payment to ``node`` (0 when it earns nothing)."""
        return float(self.payments.get(int(node), 0.0))

    def to_dict(self) -> dict:
        """Tagged, versioned JSON-safe encoding (see :mod:`repro.io`)."""
        from repro import io

        return io.to_dict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "FastPaymentResult":
        """Inverse of :meth:`to_dict`; rejects payloads of other types."""
        from repro import io

        return io.decode_as(cls, payload)


def fast_vcg_payments(
    g: NodeWeightedGraph,
    source: int,
    target: int,
    on_monopoly: str = "raise",
    backend: str = "auto",
    spt_source: ShortestPathTree | None = None,
    spt_target: ShortestPathTree | None = None,
) -> FastPaymentResult:
    """Run Algorithm 1. See the module docstring for the plan.

    ``spt_source``/``spt_target`` accept precomputed shortest path trees
    rooted at the endpoints (as built by
    :func:`repro.graph.dijkstra.node_weighted_spt` on the *same* graph)
    — batch callers like :func:`repro.core.allpairs.pairwise_vcg_payments`
    build each endpoint's SPT once and share it across every pair that
    touches the endpoint.

    Raises :class:`DisconnectedError` when the endpoints are disconnected
    and :class:`MonopolyError` for monopoly relays unless
    ``on_monopoly="inf"``.
    """
    source = check_node_index(source, g.n)
    target = check_node_index(target, g.n)
    resolve_monopoly_policy(on_monopoly)
    resolve_backend(backend)
    for spt, root in ((spt_source, source), (spt_target, target)):
        if spt is not None and (spt.root != root or spt.n != g.n):
            raise ValueError(
                f"precomputed SPT (root={spt.root}, n={spt.n}) does not "
                f"match endpoint {root} on a {g.n}-node graph"
            )
    if source == target:
        return FastPaymentResult(
            source, target, (), 0.0, {}, {}, np.full(g.n, -1, dtype=np.int64)
        )
    with _metrics.timed("fast_payment.time"), _tracer.span(
        "fast_payment", n=g.n, source=source, target=target
    ):
        return _fast_vcg_payments_impl(
            g, source, target, on_monopoly, backend, spt_source, spt_target
        )


def _fast_vcg_payments_impl(
    g: NodeWeightedGraph,
    source: int,
    target: int,
    on_monopoly: str,
    backend: str,
    spt_i: ShortestPathTree | None = None,
    spt_j: ShortestPathTree | None = None,
) -> FastPaymentResult:
    if _metrics.enabled:
        _metrics.add("fast_payment.runs", 1)
    vectorized = backend != "python"
    spt_backend = spt_backend_for(backend)
    # Steps 1-2: the two shortest path trees, the LCP, and the levels.
    with _tracer.span("fast_payment.spt_build"):
        if spt_i is None:
            spt_i = node_weighted_spt(g, source, backend=spt_backend)
        if not spt_i.reachable(target):
            raise DisconnectedError(source, target)
        if spt_j is None:
            spt_j = node_weighted_spt(g, target, backend=spt_backend)
        path = spt_i.path_from_root(target)
        s = len(path) - 1
        lcp_cost = float(spt_i.dist[target])

        costs = g.costs
        l_til = spt_i.dist + costs  # L~(u); source fixed below
        l_til[source] = 0.0
        r_til = spt_j.dist + costs  # R~(v); target fixed below
        r_til[target] = 0.0

        # Step 2: levels (branch labels along P in SPT(v_i)).
        levels = spt_i.branch_labels(path)

    if s <= 1:  # direct edge: nothing to pay
        return FastPaymentResult(
            source, target, tuple(path), lcp_cost, {}, {}, levels
        )

    # Steps 3-5 setup: regions and the crossing-edge table. Both kernels
    # produce ``c_minus`` plus the crossing-edge stream ``(starts,
    # values, expiries)`` sorted by entry level, consumed by the sweep.
    with _tracer.span("fast_payment.table_sweep"):
        on_path = np.zeros(g.n, dtype=bool)
        on_path[np.asarray(path, dtype=np.int64)] = True

        if vectorized:
            c_minus, region_total, n_regions = _regions_numpy(
                g, levels, on_path, s, l_til, r_til
            )
            starts, values, expiries = _crossing_edges_numpy(
                g, levels, l_til, r_til
            )
        else:
            c_minus, region_total, n_regions = _regions_python(
                g, levels, on_path, s, l_til, r_til
            )
            starts, values, expiries = _crossing_edges_python(
                g, levels, l_til, r_til
            )
        heap_edges = len(starts)

    with _tracer.span("fast_payment.payment_assembly"):
        # Step 5: per-level crossing-edge minima. An edge is valid for
        # every removal level l with lu < l < lv: it enters the sweep at
        # l = lu + 1 and expires once l >= lv.
        if vectorized:
            crossing_best = _crossing_minima_numpy(
                starts, values, expiries, s
            )
        else:
            crossing_best = _crossing_minima_heap(
                starts, values, expiries, s
            )
        avoiding: dict[int, float] = {}
        payments: dict[int, float] = {}
        for l in range(1, s):
            avoid = min(float(crossing_best[l]), float(c_minus[l]))
            r_l = path[l]
            if not np.isfinite(avoid):
                if on_monopoly == "raise":
                    raise MonopolyError(source, target, r_l)
                avoiding[r_l] = float("inf")
                payments[r_l] = float("inf")
                continue
            avoiding[r_l] = avoid
            payments[r_l] = avoid - lcp_cost + float(costs[r_l])  # step 6

    stats = {
        "path_hops": s,
        "crossing_edges": heap_edges,
        "region_nodes": region_total,
        "regions": n_regions,
    }
    if _metrics.enabled:
        _metrics.add("fast_payment.path_hops", s)
        _metrics.add("fast_payment.crossing_edges", heap_edges)
        _metrics.add("fast_payment.region_nodes", region_total)
    return FastPaymentResult(
        source,
        target,
        tuple(path),
        lcp_cost,
        avoiding,
        payments,
        levels,
        stats,
    )


# ---------------------------------------------------------------------------
# Scalar (oracle) kernels
# ---------------------------------------------------------------------------


def _regions_python(
    g: NodeWeightedGraph,
    levels: np.ndarray,
    on_path: np.ndarray,
    s: int,
    l_til: np.ndarray,
    r_til: np.ndarray,
) -> tuple[np.ndarray, int, int]:
    """Steps 3-4 with per-node Python loops: bucket the off-path nodes by
    level, then run one boundary Dijkstra per region."""
    region_nodes: dict[int, list[int]] = {}
    for x in range(g.n):
        lx = int(levels[x])
        if 1 <= lx <= s - 1 and not on_path[x]:
            region_nodes.setdefault(lx, []).append(x)

    c_minus = np.full(s, np.inf)  # c^{-l}, indexed by l (entries 1..s-1)
    region_total = 0
    for l, members in region_nodes.items():
        region_total += len(members)
        c_minus[l] = _region_candidate(g, members, l, levels, l_til, r_til)
    return c_minus, region_total, len(region_nodes)


def _crossing_edges_python(
    g: NodeWeightedGraph,
    levels: np.ndarray,
    l_til: np.ndarray,
    r_til: np.ndarray,
) -> tuple[list[int], list[float], list[int]]:
    """Step-5 table with a per-edge Python loop, as parallel lists
    ``(entry level, L~(u) + R~(v), expiry level)`` sorted by entry level."""
    by_start: dict[int, list[tuple[float, int]]] = {}
    for u, v in g.edge_iter():
        lu, lv = int(levels[u]), int(levels[v])
        if lu < 0 or lv < 0:
            continue
        if lu > lv:
            u, v, lu, lv = v, u, lv, lu
        if lv - lu < 2:
            continue  # no level strictly between: never a crossing edge
        value = float(l_til[u] + r_til[v])
        if not np.isfinite(value):
            continue
        by_start.setdefault(lu + 1, []).append((value, lv))
    starts: list[int] = []
    values: list[float] = []
    expiries: list[int] = []
    for start in sorted(by_start):
        for value, lv in by_start[start]:
            starts.append(start)
            values.append(value)
            expiries.append(lv)
    return starts, values, expiries


def _region_candidate(
    g: NodeWeightedGraph,
    members: list[int],
    l: int,
    levels: np.ndarray,
    l_til: np.ndarray,
    r_til: np.ndarray,
) -> float:
    """Steps 3-4 for one level-``l`` region.

    Runs a Dijkstra over the region where the tentative value of a region
    node ``x`` is ``R~^{-l}(x)`` — ``c_x`` plus the cheapest continuation
    to the target through levels ``> l`` (closed through ``R~`` of the
    first higher-level neighbour, sound by Lemma 2) — and returns

        ``c^{-l} = min over region x, neighbours u with level(u) < l of
        L~(u) + R~^{-l}(x)``.

    Only region-internal edges are relaxed, so across all levels the work
    is bounded by the full edge set once.
    """
    costs = g.costs
    in_region = set(members)
    dist: dict[int, float] = {}
    pq: list[tuple[float, int]] = []
    for x in members:
        best_boundary = np.inf
        for y in g.neighbors(x):
            if levels[y] > l:
                ry = r_til[y]
                if ry < best_boundary:
                    best_boundary = ry
        if np.isfinite(best_boundary):
            d0 = float(costs[x] + best_boundary)
            dist[x] = d0
            heapq.heappush(pq, (d0, x))

    settled: set[int] = set()
    while pq:
        dx, x = heapq.heappop(pq)
        if x in settled or dx > dist.get(x, np.inf):
            continue
        settled.add(x)
        for z in g.neighbors(x):
            z = int(z)
            if z in in_region and z not in settled:
                cand = float(costs[z]) + dx
                if cand < dist.get(z, np.inf):
                    dist[z] = cand
                    heapq.heappush(pq, (cand, z))

    best = np.inf
    for x, dx in dist.items():
        for u in g.neighbors(x):
            if levels[u] >= 0 and levels[u] < l:
                cand = float(l_til[u]) + dx
                if cand < best:
                    best = cand
    return float(best)


# ---------------------------------------------------------------------------
# Vectorized kernels
# ---------------------------------------------------------------------------


def _neighbor_closures(
    g: NodeWeightedGraph,
    levels: np.ndarray,
    l_til: np.ndarray,
    r_til: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-node boundary/closing minima for every region at once.

    A region node ``x`` sits at level ``l = levels[x]``, so its boundary
    closure (step 3: cheapest ``R~`` over neighbours with level > l) and
    its closing term (step 4: cheapest ``L~`` over neighbours with
    0 <= level < l) compare each neighbour's level against *x's own* —
    one whole-array pass over the CSR arcs covers all regions:

    * ``best_hi[x] = min(R~(y) : y ~ x, levels[y] > levels[x])``
    * ``best_lo[x] = min(L~(u) : u ~ x, 0 <= levels[u] < levels[x])``

    Minima are order-independent, so the values equal the scalar scans'
    bit for bit.
    """
    n = g.n
    best_hi = np.full(n, np.inf)
    best_lo = np.full(n, np.inf)
    arcs = g.indices
    if arcs.shape[0] == 0:
        return best_hi, best_lo
    src = g.arc_sources()
    l_src = levels[src]
    l_dst = levels[arcs]
    vals_hi = np.where(l_dst > l_src, r_til[arcs], np.inf)
    vals_lo = np.where((l_dst >= 0) & (l_dst < l_src), l_til[arcs], np.inf)
    # Per-node min over each CSR row. reduceat misbehaves on empty rows
    # (it returns the *next* row's first element) and rejects an offset
    # equal to len(vals), which trailing degree-0 nodes produce. Append
    # an inf sentinel — the identity for min — so every raw indptr
    # offset is a valid index and every non-empty row's segment stays
    # intact, then overwrite only the rows that actually have arcs.
    # (Clipping the offsets instead would silently drop the last arc of
    # the final non-empty row whenever trailing nodes have degree 0.)
    sentinel = np.array([np.inf])
    row_starts = g.indptr[:-1]
    has_arcs = g.degrees > 0
    best_hi[has_arcs] = np.minimum.reduceat(
        np.concatenate([vals_hi, sentinel]), row_starts
    )[has_arcs]
    best_lo[has_arcs] = np.minimum.reduceat(
        np.concatenate([vals_lo, sentinel]), row_starts
    )[has_arcs]
    return best_hi, best_lo


def _regions_numpy(
    g: NodeWeightedGraph,
    levels: np.ndarray,
    on_path: np.ndarray,
    s: int,
    l_til: np.ndarray,
    r_til: np.ndarray,
) -> tuple[np.ndarray, int, int]:
    """Steps 3-4, vectorized: mask + argsort bucketing instead of the
    per-node loop, shared closure arrays instead of per-member neighbour
    scans, and *one* batched scipy Dijkstra covering every region at
    once (regions are disjoint, so the merged call does the same bounded
    one-pass-over-the-edge-set work the per-region Dijkstras did)."""
    c_minus = np.full(s, np.inf)  # c^{-l}, indexed by l (entries 1..s-1)
    mask = (levels >= 1) & (levels <= s - 1) & ~on_path
    members_all = np.nonzero(mask)[0]
    if members_all.size == 0:
        return c_minus, 0, 0
    best_hi, best_lo = _neighbor_closures(g, levels, l_til, r_til)
    order = np.argsort(levels[members_all], kind="stable")
    members_all = members_all[order]
    member_levels = levels[members_all]
    run_breaks = np.nonzero(np.diff(member_levels))[0] + 1
    dist = _region_distances_scipy(g, mask, levels, members_all, best_hi)
    # Step 4: close every region node through its cheapest lower-level
    # neighbour; min per level-contiguous group. Unreached nodes carry
    # dist=inf and nodes without a lower neighbour carry best_lo=inf, so
    # they contribute +inf and drop out of the min, exactly like the
    # scalar scan that only visits reached nodes.
    vals = best_lo[members_all] + dist
    group_starts = np.concatenate([np.zeros(1, dtype=np.int64), run_breaks])
    c_minus[member_levels[group_starts]] = np.minimum.reduceat(
        vals, group_starts
    )
    return c_minus, int(members_all.size), int(group_starts.shape[0])


def _region_distances_scipy(
    g: NodeWeightedGraph,
    mask: np.ndarray,
    levels: np.ndarray,
    members: np.ndarray,
    best_hi: np.ndarray,
) -> np.ndarray:
    """All the step-3 boundary Dijkstras in a single scipy call.

    Regions are pairwise disjoint and only region-internal edges are
    relaxed, so gluing them into one graph — region nodes, arcs kept
    only when both endpoints share a level, one virtual source whose
    out-arcs carry each member's seed ``c_x + best_hi[x]`` — leaves the
    regions disconnected from each other, and one Dijkstra from the
    virtual source computes every region's ``R~^{-l}`` vector at once.

    Bit-identity with the scalar region Dijkstra: relaxation adds the
    head cost to the accumulated distance in both (IEEE addition is
    commutative, so ``c_z + d_x == d_x + c_z`` bit for bit), seeds are
    the same numpy float64 sums, and with monotone non-negative addition
    the settled distances do not depend on tie-breaking order. Zero
    weights use the same ``1e-300`` arc nudge / ``<1e-250`` clip
    convention as the scipy SPT backend (an exact 0 in CSR data reads as
    a missing arc).
    """
    from scipy.sparse import csr_matrix
    from scipy.sparse.csgraph import dijkstra as sp_dijkstra

    nm = members.shape[0]
    loc = np.full(g.n, -1, dtype=np.int64)
    loc[members] = np.arange(nm, dtype=np.int64)
    src = g.arc_sources()
    dst = g.indices
    keep = mask[src] & mask[dst]
    keep &= levels[src] == levels[dst]
    rows = loc[src[keep]]
    cols = loc[dst[keep]]
    data = g.costs[dst[keep]].copy()  # relax by head cost, as the oracle
    seed_idx = np.nonzero(np.isfinite(best_hi[members]))[0]
    seed_w = (g.costs[members] + best_hi[members])[seed_idx]
    rows = np.concatenate([rows, np.full(seed_idx.shape[0], nm)])
    cols = np.concatenate([cols, seed_idx])
    data = np.concatenate([data, seed_w])
    data[data <= 0.0] = 1e-300
    matrix = csr_matrix((data, (rows, cols)), shape=(nm + 1, nm + 1))
    dist = sp_dijkstra(matrix, directed=True, indices=nm)[:nm]
    dist[dist < 1e-250] = 0.0
    return dist


def _crossing_edges_numpy(
    g: NodeWeightedGraph,
    levels: np.ndarray,
    l_til: np.ndarray,
    r_til: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Step-5 table as whole-array numpy filters over the CSR arcs.

    Returns the same ``(entry level, value, expiry level)`` stream as
    :func:`_crossing_edges_python`, in the same order: the ``src < dst``
    arc mask enumerates undirected edges exactly in ``edge_iter`` order,
    and the stable sort groups them by entry level without reshuffling.
    """
    arcs = g.indices
    empty = np.empty(0, dtype=np.int64)
    if arcs.shape[0] == 0:
        return empty, np.empty(0), empty
    src = g.arc_sources()
    keep = src < arcs
    u = src[keep]
    v = arcs[keep]
    lu = levels[u]
    lv = levels[v]
    swap = lu > lv
    u_low = np.where(swap, v, u)
    v_high = np.where(swap, u, v)
    l_low = np.minimum(lu, lv)
    l_high = np.maximum(lu, lv)
    value = l_til[u_low] + r_til[v_high]
    crossing = (l_low >= 0) & (l_high - l_low >= 2) & np.isfinite(value)
    starts = l_low[crossing] + 1
    order = np.argsort(starts, kind="stable")
    return starts[order], value[crossing][order], l_high[crossing][order]


def _crossing_minima_heap(starts, values, expiries, s: int) -> np.ndarray:
    """Per-level minimum over the valid crossing edges, as a
    lazy-deletion heap sweep (the step-5 structure the paper describes:
    each edge enters and leaves the heap once)."""
    best = np.full(s, np.inf)
    heap = LazyMinHeap()
    heap_edges = len(starts)
    next_edge = 0
    for l in range(1, s):
        while next_edge < heap_edges and starts[next_edge] <= l:
            heap.push(float(values[next_edge]), int(expiries[next_edge]))
            next_edge += 1
        entry = heap.peek_valid(lambda lv, _l=l: lv > _l)
        if entry is not None:
            best[l] = entry[0]
    return best


def _crossing_minima_numpy(
    starts: np.ndarray,
    values: np.ndarray,
    expiries: np.ndarray,
    s: int,
) -> np.ndarray:
    """Per-level minimum over the valid crossing edges, vectorized.

    Expands each edge into its validity levels ``start .. expiry-1``
    (one ``np.repeat`` incidence stream), then takes grouped minima —
    no per-edge Python heap traffic. Minimum is order-independent, so
    the result matches the heap sweep bit for bit. Falls back to the
    heap when the summed validity spans blow up past the O(E log E)
    regime (long paths crossed by long edges), keeping the worst case
    bounded.
    """
    best = np.full(s, np.inf)
    n_edges = int(len(starts))
    if n_edges == 0:
        return best
    lengths = expiries - starts
    total = int(lengths.sum())
    if total > 4 * n_edges + 65536:
        return _crossing_minima_heap(starts, values, expiries, s)
    offsets = np.cumsum(lengths) - lengths
    pos = np.arange(total, dtype=np.int64) - np.repeat(offsets, lengths)
    idx = np.repeat(starts, lengths) + pos
    vals = np.repeat(values, lengths)
    order = np.argsort(idx, kind="stable")
    idx = idx[order]
    vals = vals[order]
    group_starts = np.concatenate(
        [np.zeros(1, dtype=np.int64), np.nonzero(np.diff(idx))[0] + 1]
    )
    best[idx[group_starts]] = np.minimum.reduceat(vals, group_starts)
    return best
