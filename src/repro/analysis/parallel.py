"""Parallel execution of embarrassingly-parallel sweep work.

The Figure-3 evaluation is a Monte-Carlo sweep whose instances are pure
functions of a seed derived with :func:`repro.utils.rng.derive_seed` —
parallel by construction. This module fans such tasks out over a
``concurrent.futures.ProcessPoolExecutor`` while preserving two
guarantees the serial path gives for free:

*determinism* — tasks are submitted in serial order and results are
reassembled in that order (``Executor.map`` preserves it), so for pure
task functions the ``jobs=N`` output is bit-identical to ``jobs=1``;

*observability* — each worker runs its task against its own (forked)
process-wide :data:`repro.obs.metrics.REGISTRY`; the per-task snapshot
travels back with the result and is merged into the parent registry
(:meth:`~repro.obs.metrics.MetricsRegistry.merge_snapshot`), so counters
and timers survive the fan-out. Tracing spans do **not** cross the
process boundary — a ``--trace-out`` trace of a parallel run covers the
parent process only.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Sequence

from repro.obs.logging import get_logger
from repro.obs.metrics import REGISTRY as _metrics

log = get_logger("analysis.parallel")

__all__ = ["resolve_jobs", "run_tasks"]

#: A task is ``(args, kwargs)``; the runner calls ``fn(*args, **kwargs)``.
Task = "tuple[tuple, dict]"


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``jobs`` parameter to a concrete worker count.

    ``None``, ``0`` and ``1`` mean serial; ``-1`` means one worker per
    CPU (``os.cpu_count()``); any other positive integer is taken as-is.
    Other negative values are an error.
    """
    if jobs is None or jobs == 0:
        return 1
    jobs = int(jobs)
    if jobs == -1:
        return os.cpu_count() or 1
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, -1 (all cores) or None, got {jobs}")
    return jobs


def _run_one(payload: tuple) -> tuple:
    """Worker entry point: run one task, capture its metrics snapshot.

    Must live at module level so it pickles under every multiprocessing
    start method. ``collect`` carries the parent registry's enabled flag;
    the worker's registry is reset around every task so each snapshot
    covers exactly one task, whatever the executor's chunking did.
    """
    fn, args, kwargs, collect = payload
    if collect:
        _metrics.reset()
        _metrics.enable()
    try:
        result = fn(*args, **kwargs)
        snapshot = _metrics.snapshot() if collect else None
    finally:
        if collect:
            _metrics.disable()
            _metrics.reset()
    return result, snapshot


def run_tasks(
    fn: Callable[..., Any],
    tasks: Sequence[tuple[tuple, dict]],
    jobs: int | None = None,
    chunksize: int = 1,
) -> list:
    """Run ``fn(*args, **kwargs)`` for every task, serially or in a pool.

    Results come back in task order. With ``jobs`` resolving to 1 (or at
    most one task) everything runs inline in this process — the exact
    serial code path, no pool, no pickling. Otherwise a process pool of
    ``min(jobs, len(tasks))`` workers executes the tasks and each
    worker-side metrics snapshot is merged into the parent registry.

    ``fn``, every task's arguments, and every result must be picklable
    (module-level functions and plain-data dataclasses are).
    """
    n_jobs = resolve_jobs(jobs)
    tasks = list(tasks)
    if n_jobs == 1 or len(tasks) <= 1:
        return [fn(*args, **kwargs) for args, kwargs in tasks]
    collect = _metrics.enabled
    workers = min(n_jobs, len(tasks))
    log.debug(
        "parallel fan-out",
        extra={"tasks": len(tasks), "workers": workers, "collect": collect},
    )
    payloads = [(fn, args, kwargs, collect) for args, kwargs in tasks]
    results: list = []
    with ProcessPoolExecutor(max_workers=workers) as pool:
        for result, snapshot in pool.map(_run_one, payloads, chunksize=chunksize):
            if snapshot is not None:
                _metrics.merge_snapshot(snapshot)
            results.append(result)
    return results
