"""Parallel execution of embarrassingly-parallel sweep work.

The Figure-3 evaluation is a Monte-Carlo sweep whose instances are pure
functions of a seed derived with :func:`repro.utils.rng.derive_seed` —
parallel by construction. This module fans such tasks out over a
``concurrent.futures.ProcessPoolExecutor`` while preserving two
guarantees the serial path gives for free:

*determinism* — tasks are submitted in serial order and results are
reassembled in that order (``Executor.map`` preserves it), so for pure
task functions the ``jobs=N`` output is bit-identical to ``jobs=1``;

*observability* — each worker runs its task against its own (forked)
process-wide :data:`repro.obs.metrics.REGISTRY`; the per-task snapshot
travels back with the result and is merged into the parent registry
(:meth:`~repro.obs.metrics.MetricsRegistry.merge_snapshot`), so counters
and timers survive the fan-out. Tracing spans do **not** cross the
process boundary — a ``--trace-out`` trace of a parallel run covers the
parent process only.
"""

from __future__ import annotations

import atexit
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Sequence

from repro.obs.logging import get_logger
from repro.obs.metrics import REGISTRY as _metrics

log = get_logger("analysis.parallel")

__all__ = ["resolve_jobs", "run_tasks", "get_pool", "shutdown_pool"]

#: A task is ``(args, kwargs)``; the runner calls ``fn(*args, **kwargs)``.
Task = "tuple[tuple, dict]"


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``jobs`` parameter to a concrete worker count.

    ``None``, ``0`` and ``1`` mean serial; ``-1`` means one worker per
    CPU (``os.cpu_count()``); any other positive integer is taken as-is.
    Other negative values are an error.
    """
    if jobs is None or jobs == 0:
        return 1
    jobs = int(jobs)
    if jobs == -1:
        return os.cpu_count() or 1
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, -1 (all cores) or None, got {jobs}")
    return jobs


def _run_one(payload: tuple) -> tuple:
    """Worker entry point: run one task, capture its metrics snapshot.

    Must live at module level so it pickles under every multiprocessing
    start method. ``collect`` carries the parent registry's enabled flag;
    the worker's registry is reset around every task so each snapshot
    covers exactly one task, whatever the executor's chunking did.
    """
    fn, args, kwargs, collect = payload
    if collect:
        _metrics.reset()
        _metrics.enable()
    try:
        result = fn(*args, **kwargs)
        snapshot = _metrics.snapshot() if collect else None
    finally:
        if collect:
            _metrics.disable()
            _metrics.reset()
    return result, snapshot


#: The module-level persistent pool: spawning worker processes costs a
#: fork + interpreter warm-up per worker, which dominates short batches.
#: The pool survives across ``run_tasks`` calls and is resized only when
#: a call asks for *more* workers than it has.
_POOL: ProcessPoolExecutor | None = None
_POOL_WORKERS = 0


def get_pool(workers: int) -> ProcessPoolExecutor:
    """The shared executor, grown to at least ``workers`` processes.

    A pool at least as wide as requested is reused as-is (counted in
    ``parallel.pool_reuses``); a narrower one is shut down and replaced.
    """
    global _POOL, _POOL_WORKERS
    if _POOL is not None and _POOL_WORKERS >= workers:
        if _metrics.enabled:
            _metrics.add("parallel.pool_reuses", 1)
        return _POOL
    if _POOL is not None:
        _POOL.shutdown(wait=True)
    log.debug("starting worker pool", extra={"workers": workers})
    _POOL = ProcessPoolExecutor(max_workers=workers)
    _POOL_WORKERS = workers
    return _POOL


def shutdown_pool() -> None:
    """Dispose of the persistent pool (idempotent; re-created on demand)."""
    global _POOL, _POOL_WORKERS
    if _POOL is not None:
        _POOL.shutdown(wait=True)
        _POOL = None
        _POOL_WORKERS = 0


atexit.register(shutdown_pool)


def run_tasks(
    fn: Callable[..., Any],
    tasks: Sequence[tuple[tuple, dict]],
    jobs: int | None = None,
    chunksize: int | None = None,
) -> list:
    """Run ``fn(*args, **kwargs)`` for every task, serially or in a pool.

    Results come back in task order. With ``jobs`` resolving to 1 (or at
    most one task) everything runs inline in this process — the exact
    serial code path, no pool, no pickling. Otherwise the persistent
    pool (see :func:`get_pool`) executes the tasks and each worker-side
    metrics snapshot is merged into the parent registry.

    ``chunksize=None`` auto-tunes to ``max(1, len(tasks) // (4 *
    workers))`` — many-small-task sweeps stop paying one IPC round-trip
    per task while keeping ~4 chunks per worker for load balance. Pass
    an explicit value to override.

    ``fn``, every task's arguments, and every result must be picklable
    (module-level functions and plain-data dataclasses are). Large
    shared inputs — the graph, above all — should travel as a
    :class:`repro.analysis.shm.ArenaHandle` instead of by value.

    A worker crash surfaces as ``BrokenProcessPool``; the poisoned pool
    is discarded so the next call starts from a fresh one.
    """
    n_jobs = resolve_jobs(jobs)
    tasks = list(tasks)
    if n_jobs == 1 or len(tasks) <= 1:
        return [fn(*args, **kwargs) for args, kwargs in tasks]
    collect = _metrics.enabled
    workers = min(n_jobs, len(tasks))
    if chunksize is None:
        chunksize = max(1, len(tasks) // (4 * workers))
    log.debug(
        "parallel fan-out",
        extra={
            "tasks": len(tasks),
            "workers": workers,
            "chunksize": chunksize,
            "collect": collect,
        },
    )
    payloads = [(fn, args, kwargs, collect) for args, kwargs in tasks]
    results: list = []
    pool = get_pool(workers)
    try:
        for result, snapshot in pool.map(
            _run_one, payloads, chunksize=chunksize
        ):
            if snapshot is not None:
                _metrics.merge_snapshot(snapshot)
            results.append(result)
    except BrokenProcessPool:
        shutdown_pool()
        raise
    return results
