"""Pricing churn under mobility (extension experiment).

The distributed protocol converges on a *static* network (Section III.C);
under mobility the routing tree and every payment may change each epoch.
This experiment quantifies that: it advances a mobility model over a UDG
deployment and measures, per epoch transition,

* **route churn** — the fraction of sources whose next hop or full route
  changed;
* **payment churn** — the mean relative change of per-source total
  payments (over sources priced in both epochs);
* **repriced fraction** — sources whose payment changed at all (they
  need a fresh stage-2 run even if their route survived, because a
  *detour* moved).

The takeaway mirrors ad hoc networking folklore: even modest motion
forces near-global repricing, because VCG payments depend on the best
*alternative* paths, which are more fragile than the routes themselves.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.link_vcg import all_sources_link_payments
from repro.utils.rng import as_rng
from repro.wireless.energy import PowerModel
from repro.wireless.geometry import PAPER_REGION, Region, pairwise_distances, uniform_points
from repro.wireless.mobility import mobility_trace
from repro.wireless.topology import build_link_digraph, udg_adjacency

__all__ = ["EpochTransition", "ChurnResult", "mobility_churn_experiment"]


@dataclass(frozen=True)
class EpochTransition:
    """Churn metrics between two consecutive epochs."""

    epoch: int
    sources_compared: int
    route_churn: float
    next_hop_churn: float
    payment_churn: float  # mean |delta p| / p over compared sources
    repriced_fraction: float


@dataclass(frozen=True)
class ChurnResult:
    """Churn metrics across all epoch transitions of one run."""
    transitions: tuple[EpochTransition, ...]

    def mean(self, field: str) -> float:
        """Mean of one transition metric across all transitions."""
        vals = [getattr(t, field) for t in self.transitions]
        return float(np.mean(vals)) if vals else float("nan")

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{len(self.transitions)} transitions: route churn "
            f"{self.mean('route_churn'):.2%}, next-hop churn "
            f"{self.mean('next_hop_churn'):.2%}, payment churn "
            f"{self.mean('payment_churn'):.2%}, repriced "
            f"{self.mean('repriced_fraction'):.2%}"
        )


def _price_epoch(points: np.ndarray, range_m: float, kappa: float):
    dist = pairwise_distances(points)
    adj = udg_adjacency(dist, range_m)
    model = PowerModel(alpha=0.0, beta=1.0, kappa=kappa)
    dg = build_link_digraph(points, model, adj)
    return all_sources_link_payments(dg, root=0)


def mobility_churn_experiment(
    model,
    n: int = 120,
    epochs: int = 5,
    range_m: float = 300.0,
    kappa: float = 2.0,
    region: Region = PAPER_REGION,
    seed=None,
) -> ChurnResult:
    """Run the churn experiment; see the module docstring for metrics.

    Sources unreachable (or monopolized) in either epoch of a transition
    are excluded from that transition's comparison.
    """
    rng = as_rng(seed)
    points0 = uniform_points(region, n, seed=rng)
    transitions = []
    prev_table = None
    for epoch, pts in enumerate(
        mobility_trace(model, points0, epochs, seed=rng)
    ):
        table = _price_epoch(pts, range_m, kappa)
        if prev_table is not None:
            transitions.append(
                _compare(epoch, prev_table, table)
            )
        prev_table = table
    return ChurnResult(transitions=tuple(transitions))


def _compare(epoch: int, old, new) -> EpochTransition:
    compared = 0
    route_changed = 0
    hop_changed = 0
    repriced = 0
    rel_deltas = []
    common = set(old.sources()) & set(new.sources())
    for i in common:
        p_old = old.total_payment(i)
        p_new = new.total_payment(i)
        if not (np.isfinite(p_old) and np.isfinite(p_new)) or p_old <= 0:
            continue
        compared += 1
        if old.path(i) != new.path(i):
            route_changed += 1
        if int(old.parent[i]) != int(new.parent[i]):
            hop_changed += 1
        if abs(p_new - p_old) > 1e-9:
            repriced += 1
            rel_deltas.append(abs(p_new - p_old) / p_old)
        else:
            rel_deltas.append(0.0)
    denom = max(compared, 1)
    return EpochTransition(
        epoch=epoch,
        sources_compared=compared,
        route_churn=route_changed / denom,
        next_hop_churn=hop_changed / denom,
        payment_churn=float(np.mean(rel_deltas)) if rel_deltas else 0.0,
        repriced_fraction=repriced / denom,
    )
