"""Experiment harness: sweeps, aggregation, figure series, reporting.

The evaluation (Section III.G / Figure 3) is a family of parameter sweeps
over random wireless instances. :mod:`~repro.analysis.experiments` runs
one (deployment kind, n, kappa) point over many seeded instances;
:mod:`~repro.analysis.figures` assembles the exact series each Figure-3
panel plots; :mod:`~repro.analysis.reporting` renders them as text/markdown
tables (the repository's substitute for the paper's plots).
:mod:`~repro.analysis.chaos` stress-tests the distributed protocol under
injected message loss (correctness rate and message overhead per loss
probability).
"""

from repro.analysis.stats import Stats, aggregate
from repro.analysis.parallel import resolve_jobs, run_tasks
from repro.analysis.experiments import (
    InstanceMetrics,
    SweepPoint,
    SweepResult,
    run_overpayment_instance,
    sweep_overpayment,
)
from repro.analysis.figures import (
    FigureSeries,
    fig3a,
    fig3b,
    fig3c,
    fig3d,
    fig3e,
    fig3f,
    ALL_FIGURES,
)
from repro.analysis.reporting import render_ascii, render_markdown
from repro.analysis.churn import ChurnResult, mobility_churn_experiment
from repro.analysis.sensitivity import RangePoint, range_sensitivity
from repro.analysis.diagnostics import (
    frugality_summary,
    gap_by_hops,
    relay_gaps,
)
from repro.analysis.chaos import (
    ChaosPoint,
    ChaosResult,
    chaos_convergence_experiment,
)

__all__ = [
    "Stats",
    "aggregate",
    "InstanceMetrics",
    "SweepPoint",
    "SweepResult",
    "run_overpayment_instance",
    "sweep_overpayment",
    "FigureSeries",
    "fig3a",
    "fig3b",
    "fig3c",
    "fig3d",
    "fig3e",
    "fig3f",
    "ALL_FIGURES",
    "render_ascii",
    "render_markdown",
    "ChurnResult",
    "mobility_churn_experiment",
    "frugality_summary",
    "gap_by_hops",
    "relay_gaps",
    "ChaosPoint",
    "ChaosResult",
    "chaos_convergence_experiment",
    "RangePoint",
    "range_sensitivity",
    "resolve_jobs",
    "run_tasks",
]
