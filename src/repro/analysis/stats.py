"""Aggregation across random instances.

The paper reports "the average and the maximum ... taken over 100 random
instances"; :class:`Stats` carries those plus dispersion so benches can
also print confidence intervals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

__all__ = ["Stats", "aggregate"]


@dataclass(frozen=True)
class Stats:
    """Summary statistics of one metric over instances (NaNs dropped)."""

    n: int
    mean: float
    std: float
    min: float
    max: float

    @property
    def sem(self) -> float:
        """Standard error of the mean."""
        if self.n <= 1:
            return float("nan")
        return self.std / np.sqrt(self.n)

    def ci95(self) -> tuple[float, float]:
        """Normal-approximation 95% confidence interval for the mean."""
        half = 1.96 * self.sem
        return (self.mean - half, self.mean + half)

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"mean {self.mean:.4g} +- {self.sem:.2g} "
            f"(min {self.min:.4g}, max {self.max:.4g}, n={self.n})"
        )


_EMPTY = Stats(n=0, mean=float("nan"), std=float("nan"), min=float("nan"), max=float("nan"))


def aggregate(values: Iterable[float]) -> Stats:
    """Aggregate a metric over instances, ignoring NaNs.

    Infinite values are kept (they surface as an infinite mean — a
    monopoly slipping into a metric should be loud, not averaged away).
    """
    arr = np.asarray(list(values), dtype=np.float64)
    arr = arr[~np.isnan(arr)]
    if arr.size == 0:
        return _EMPTY
    if np.isinf(arr).any():
        # A monopoly leaked into the metric: keep it loud in mean/max but
        # leave dispersion undefined rather than warn on inf - inf.
        std = float("nan")
    else:
        std = float(arr.std(ddof=1)) if arr.size > 1 else 0.0
    return Stats(
        n=int(arr.size),
        mean=float(arr.mean()),
        std=std,
        min=float(arr.min()),
        max=float(arr.max()),
    )
