"""Overpayment diagnostics: *why* Figure 3(d) looks the way it does.

The paper's explanation of the hop-distance effect: "for node closer to
the source node, the second shortest path could be much larger than the
shortest path, which in turn incurs large overpayment; for node far away
from the source, the second shortest path has total cost almost the same
as the shortest path". The quantity behind this is each relay's *detour
gap*

    ``gap_k = p_i^k - d_{k,next} = ||P_{-k}|| - ||P||``

(the marginal value of the relay's existence). This module extracts the
gap structure from a priced network so the benches can verify the
explanation, not just the headline curve:

* :func:`relay_gaps` — every (source, relay) gap with its context;
* :func:`gap_by_hops` — relative gap statistics bucketed by the source's
  hop distance (the mechanism behind Figure 3(d)'s decaying maximum);
* :func:`frugality_summary` — network-level decomposition of the total
  payment into true-cost reimbursement + gap premium.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.core.link_vcg import LinkPaymentTable

__all__ = ["RelayGap", "relay_gaps", "GapBucket", "gap_by_hops", "frugality_summary", "FrugalitySummary"]


@dataclass(frozen=True)
class RelayGap:
    """One relay's detour gap within one source's route."""

    source: int
    relay: int
    hops: int  # the source's route length (edges)
    link_cost: float  # cost of the link the route uses at the relay
    gap: float  # payment - link_cost = detour improvement

    @property
    def payment(self) -> float:
        """Payment to one participant (0 when unpaid)."""
        return self.link_cost + self.gap

    @property
    def relative_gap(self) -> float:
        """Gap normalized by the used link cost (scale-free)."""
        if self.link_cost <= 0:
            return float("nan")
        return self.gap / self.link_cost


def relay_gaps(table: LinkPaymentTable, dg) -> Iterator[RelayGap]:
    """Yield the gap of every (source, relay) pair with finite payment."""
    for i in table.sources():
        route = table.path(i)
        hops = len(route) - 1
        for idx in range(1, len(route) - 1):
            k, nxt = route[idx], route[idx + 1]
            pay = table.payments[i].get(k)
            if pay is None or not np.isfinite(pay):
                continue
            link = dg.arc_weight(k, nxt)
            yield RelayGap(
                source=int(i),
                relay=int(k),
                hops=hops,
                link_cost=float(link),
                gap=float(pay - link),
            )


@dataclass(frozen=True)
class GapBucket:
    """Gap statistics for sources at one hop distance."""

    hops: int
    count: int
    mean_relative_gap: float
    max_relative_gap: float


def gap_by_hops(table: LinkPaymentTable, dg) -> list[GapBucket]:
    """Relative detour gaps bucketed by the source's hop distance.

    The paper's claim translates to: the *maximum* relative gap decays
    with hop distance while the mean stays comparatively flat — long
    routes average out the second-path oscillation.
    """
    buckets: dict[int, list[float]] = {}
    for g in relay_gaps(table, dg):
        rel = g.relative_gap
        if np.isfinite(rel):
            buckets.setdefault(g.hops, []).append(rel)
    out = []
    for hops in sorted(buckets):
        vals = np.asarray(buckets[hops])
        out.append(
            GapBucket(
                hops=hops,
                count=int(vals.size),
                mean_relative_gap=float(vals.mean()),
                max_relative_gap=float(vals.max()),
            )
        )
    return out


@dataclass(frozen=True)
class FrugalitySummary:
    """Where the money goes: reimbursement vs premium.

    ``total_payment = total_link_cost + total_gap`` — the gap share is
    the true "price of truthfulness" (a perfectly informed dictator would
    pay only the link costs).
    """

    total_payment: float
    total_link_cost: float
    total_gap: float
    relays_paid: int

    @property
    def premium_share(self) -> float:
        """Fraction of the total payment that is pure incentive premium."""
        if self.total_payment <= 0:
            return float("nan")
        return self.total_gap / self.total_payment

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.relays_paid} relay payments: {self.total_payment:.1f} "
            f"total = {self.total_link_cost:.1f} reimbursement + "
            f"{self.total_gap:.1f} premium "
            f"({self.premium_share:.1%} of the money is incentive)"
        )


def frugality_summary(table: LinkPaymentTable, dg) -> FrugalitySummary:
    """Decompose the network's total payment (see class docstring)."""
    total_pay = total_link = total_gap = 0.0
    count = 0
    for g in relay_gaps(table, dg):
        total_pay += g.payment
        total_link += g.link_cost
        total_gap += g.gap
        count += 1
    return FrugalitySummary(
        total_payment=total_pay,
        total_link_cost=total_link,
        total_gap=total_gap,
        relays_paid=count,
    )
