"""Chaos experiment: protocol convergence under injected message loss.

Section III.C argues the iterative payment protocol is quiescent after at
most ``n`` rounds *on a reliable network*. This experiment measures what
the fault-tolerant runner (:mod:`repro.distributed.faults`) salvages when
that assumption is broken: for a sweep of loss probabilities it reruns
the two-stage protocol over seeded instances and reports

* **convergence rate** — fraction of runs reaching true quiescence (all
  retries resolved, nothing in flight);
* **clean rate** — fraction of runs with zero permanently failed
  deliveries and no node down at the end (for these, every payment
  provably equals the lossless value);
* **payment correctness rate** — fraction of payment entries that are
  both *resolved* (the run vouches for them) and equal to the lossless
  baseline; unresolved entries count as incorrect, so this is the
  end-to-end usable-output rate;
* **false positive rate** — resolved entries that differ from the
  baseline (the degradation report failed; expected 0 by construction);
* **message overhead** — attempted transmissions (broadcasts + unicasts,
  retransmissions included) relative to the lossless run of the same
  instance.

The sweep is deterministic: instance graphs and fault seeds derive from
the experiment seed via :func:`repro.utils.rng.derive_seed`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.distributed.faults import FaultPlan
from repro.distributed.payment_protocol import run_distributed_payments
from repro.graph.generators import random_biconnected_graph
from repro.utils.rng import derive_seed

__all__ = ["ChaosPoint", "ChaosResult", "chaos_convergence_experiment"]

_EPS = 1e-9


@dataclass(frozen=True)
class ChaosPoint:
    """Aggregated outcomes of all runs at one loss probability.

    Attributes:
        loss: Per-delivery drop probability of this sweep point.
        runs: Number of (instance, fault-seed) runs aggregated.
        converged_rate: Fraction of runs reaching true quiescence.
        clean_rate: Fraction of runs with no permanent failure (their
            payments are provably exact).
        correct_rate: Fraction of payment entries resolved *and* equal
            to the lossless baseline, over all entries of all runs.
        unresolved_rate: Fraction of entries flagged unresolved.
        false_rate: Fraction of entries resolved but *wrong* — a
            soundness violation of the degradation report (expected 0).
        overhead: Mean attempted-transmission count relative to the
            lossless run (1.0 at loss 0; grows with retransmissions).
        retransmissions: Mean retransmission count per run (both stages).
        rounds: Mean engine rounds per run (both stages summed).
        false_flags: Total punishment flags raised against honest nodes
            across all runs (expected 0).
    """

    loss: float
    runs: int
    converged_rate: float
    clean_rate: float
    correct_rate: float
    unresolved_rate: float
    false_rate: float
    overhead: float
    retransmissions: float
    rounds: float
    false_flags: int


@dataclass(frozen=True)
class ChaosResult:
    """A full loss sweep: one :class:`ChaosPoint` per loss probability."""

    nodes: int
    instances: int
    repeats: int
    points: tuple[ChaosPoint, ...]

    def rows(self) -> list[list]:
        """Table rows for :func:`repro.utils.tables.ascii_table`."""
        return [
            [
                f"{p.loss:.2f}",
                f"{p.converged_rate:.0%}",
                f"{p.clean_rate:.0%}",
                f"{p.correct_rate:.1%}",
                f"{p.false_rate:.1%}",
                f"{p.overhead:.2f}x",
                round(p.retransmissions, 1),
                round(p.rounds, 1),
                p.false_flags,
            ]
            for p in self.points
        ]

    def describe(self) -> str:
        """One-line human-readable summary of the sweep."""
        lo, hi = self.points[0], self.points[-1]
        return (
            f"chaos sweep on {self.nodes}-node instances "
            f"({self.instances} graphs x {self.repeats} fault seeds): "
            f"correctness {lo.correct_rate:.1%} @ loss {lo.loss:g} -> "
            f"{hi.correct_rate:.1%} @ loss {hi.loss:g}, "
            f"overhead up to {max(p.overhead for p in self.points):.2f}x"
        )


def _attempts(result) -> int:
    """Attempted transmissions of a two-stage run (both stages)."""
    total = 0
    for st in (result.spt.stats, result.stats):
        total += st.broadcasts + st.unicasts + st.retransmissions
    return total


def chaos_convergence_experiment(
    nodes: int = 16,
    losses=(0.0, 0.05, 0.1, 0.2, 0.3),
    instances: int = 3,
    repeats: int = 3,
    seed: int = 0,
    max_delay: int = 0,
    duplicate: float = 0.0,
    max_retries: int | None = None,
    max_rounds: int = 10_000,
) -> ChaosResult:
    """Sweep loss probability and measure what the protocol salvages.

    Args:
        nodes: Node count of each random biconnected instance.
        losses: Loss probabilities to sweep (0.0 is a useful control —
            it must come out with correctness 1.0 and overhead 1.0).
        instances: Distinct random graphs per sweep point.
        repeats: Fault seeds per graph (loss 0 runs once per graph —
            repeats would be identical).
        seed: Experiment seed; graphs and fault seeds derive from it.
        max_delay: Extra delay bound forwarded to the fault plan.
        duplicate: Duplication probability forwarded to the fault plan.
        max_retries: Per-message retry budget (``None`` = default).
        max_rounds: Engine round cap per stage.

    Returns:
        A :class:`ChaosResult` with one aggregated point per loss value.
    """
    graphs = [
        random_biconnected_graph(
            nodes, extra_edge_prob=0.25, seed=derive_seed(seed, "chaos-graph", i)
        )
        for i in range(instances)
    ]
    baselines = [run_distributed_payments(g, max_rounds=max_rounds) for g in graphs]
    base_attempts = [_attempts(b) for b in baselines]

    points = []
    for li, loss in enumerate(losses):
        n_runs = 0
        converged = clean = 0
        entries = correct = unresolved = wrong = 0
        overheads: list[float] = []
        retx: list[float] = []
        rounds: list[float] = []
        flags = 0
        reps = 1 if loss == 0.0 and max_delay == 0 and duplicate == 0.0 else repeats
        for gi, (g, base) in enumerate(zip(graphs, baselines)):
            for rep in range(reps):
                plan = FaultPlan(
                    loss=float(loss),
                    max_delay=int(max_delay),
                    duplicate=float(duplicate),
                    seed=derive_seed(seed, "chaos-run", li, gi, rep),
                )
                res = run_distributed_payments(
                    g, faults=plan, max_retries=max_retries, max_rounds=max_rounds
                )
                n_runs += 1
                report = res.fault_report
                if report is None:  # null plan: lossless by construction
                    converged += 1
                    clean += 1
                    run_ok = True
                else:
                    spt_report = res.spt.fault_report
                    run_ok = report.converged and spt_report.converged
                    converged += bool(run_ok)
                    clean += bool(report.clean and spt_report.clean)
                for i in range(g.n):
                    for k, want in base.prices[i].items():
                        entries += 1
                        if not res.is_resolved(i, k):
                            unresolved += 1
                        elif abs(res.payment(i, k) - want) <= _EPS:
                            correct += 1
                        else:
                            wrong += 1
                overheads.append(_attempts(res) / base_attempts[gi])
                retx.append(
                    res.spt.stats.retransmissions + res.stats.retransmissions
                )
                rounds.append(res.spt.stats.rounds + res.stats.rounds)
                flags += len(res.all_flags)
        points.append(
            ChaosPoint(
                loss=float(loss),
                runs=n_runs,
                converged_rate=converged / n_runs,
                clean_rate=clean / n_runs,
                correct_rate=correct / entries,
                unresolved_rate=unresolved / entries,
                false_rate=wrong / entries,
                overhead=float(np.mean(overheads)),
                retransmissions=float(np.mean(retx)),
                rounds=float(np.mean(rounds)),
                false_flags=flags,
            )
        )
    return ChaosResult(
        nodes=nodes,
        instances=instances,
        repeats=repeats,
        points=tuple(points),
    )
