"""Rendering figure series for humans and for EXPERIMENTS.md."""

from __future__ import annotations

from typing import Iterable

from repro.analysis.figures import FigureSeries
from repro.utils.tables import markdown_table

__all__ = ["render_ascii", "render_markdown", "render_experiments_section"]


def render_ascii(series: FigureSeries, digits: int = 4) -> str:
    """Aligned plain-text table (what the benchmarks print)."""
    return series.render(digits=digits)


def render_markdown(series: FigureSeries, digits: int = 4) -> str:
    """GitHub-flavoured Markdown block for EXPERIMENTS.md."""
    names = list(series.series)
    rows = [
        [x] + [series.series[name][i] for name in names]
        for i, x in enumerate(series.x)
    ]
    table = markdown_table([series.x_name] + names, rows, digits=digits)
    lines = [f"### {series.figure}: {series.title}", "", table]
    if series.notes:
        lines.append("")
        lines.extend(f"*{note}*  " for note in series.notes)
    return "\n".join(lines)


def render_experiments_section(
    all_series: Iterable[FigureSeries], header: str | None = None
) -> str:
    """Concatenate markdown blocks for a batch of figures."""
    blocks = []
    if header:
        blocks.append(header)
    blocks.extend(render_markdown(s) for s in all_series)
    return "\n\n".join(blocks) + "\n"
