"""Zero-copy shared-memory graph arena for parallel fan-out.

The parallel paths (``Engine.price_many(jobs=N)``, evaluation sweeps)
used to pickle the full graph into every worker task: O(m) bytes
serialized, copied through a pipe and deserialized *per chunk*. Both
graph models are plain CSR arrays underneath, so the graph can instead
be exported **once** into a ``multiprocessing.shared_memory`` block and
workers can attach to it read-only by name — the task payload shrinks to
a tiny :class:`ArenaHandle` and the arrays are never copied at all (the
kernel maps the same physical pages into every worker).

Usage, parent side::

    with SharedGraphArena(graph) as arena:
        run_tasks(fn, [((arena.handle, chunk), {}) for chunk in chunks])

Worker side: call :func:`resolve_graph` on the first positional argument
— it returns real graphs unchanged and materializes handles by
attaching, so task functions accept either form.

Lifecycle guarantees
--------------------

* The exporting process owns the segment. ``close()`` (also run by the
  context manager and an ``atexit`` hook) unlinks it, so normal exit,
  exceptions and ``KeyboardInterrupt`` all clean ``/dev/shm``.
* Cleanup is guarded by the owner PID: forked workers inherit the
  arena object *and* its ``atexit`` registration, and must not unlink a
  segment they do not own.
* Workers attach lazily and cache a few attachments; Python's resource
  tracker is told to leave attached segments alone (it would otherwise
  unlink them when the *worker* exits).
* A crashed worker leaks nothing: it only ever held a mapping, and the
  owner's unlink still removes the name.
"""

from __future__ import annotations

import atexit
import os
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.graph.link_graph import LinkWeightedDigraph
from repro.graph.node_graph import NodeWeightedGraph
from repro.obs.logging import get_logger
from repro.obs.metrics import REGISTRY as _metrics

log = get_logger("analysis.shm")

__all__ = ["SharedGraphArena", "ArenaHandle", "attach", "resolve_graph"]

#: Recognizable prefix so a leaked segment in /dev/shm is attributable.
SEGMENT_PREFIX = "repro_arena_"


@dataclass(frozen=True)
class ArenaHandle:
    """Picklable description of an exported graph: the segment name plus
    the byte layout of each CSR field inside it."""

    name: str
    model: str  # "node" | "link"
    n: int
    #: ``(field, dtype, byte offset, element count)`` per array.
    layout: tuple[tuple[str, str, int, int], ...]
    #: PID of the exporting process (cleanup ownership; see ``attach``).
    owner_pid: int = -1

    @property
    def nbytes(self) -> int:
        """Total payload bytes described by the layout."""
        return sum(
            np.dtype(dtype).itemsize * count
            for _, dtype, _, count in self.layout
        )


def _graph_fields(graph) -> tuple[str, list[tuple[str, np.ndarray]]]:
    if isinstance(graph, NodeWeightedGraph):
        return "node", [
            ("costs", graph.costs),
            ("indptr", graph.indptr),
            ("indices", graph.indices),
        ]
    if isinstance(graph, LinkWeightedDigraph):
        return "link", [
            ("indptr", graph.indptr),
            ("indices", graph.indices),
            ("weights", graph.weights),
        ]
    raise TypeError(f"unsupported graph type {type(graph)!r}")


class SharedGraphArena:
    """Export a graph's CSR arrays into one shared-memory segment.

    The arena is a context manager; it also registers an ``atexit``
    unlink so a non-``with`` user (or an interrupted one) cannot leak
    the segment past process exit. Only the creating process (checked
    by PID) ever unlinks.
    """

    def __init__(self, graph) -> None:
        model, fields = _graph_fields(graph)
        offset = 0
        layout: list[tuple[str, str, int, int]] = []
        for field, arr in fields:
            layout.append((field, arr.dtype.str, offset, int(arr.shape[0])))
            offset += int(arr.nbytes)
        self._owner_pid = os.getpid()
        self._shm = shared_memory.SharedMemory(
            create=True,
            size=max(offset, 1),
            name=f"{SEGMENT_PREFIX}{os.getpid()}_{id(self):x}",
        )
        for (field, dtype, off, count), (_, arr) in zip(layout, fields):
            view = np.ndarray(
                (count,), dtype=np.dtype(dtype), buffer=self._shm.buf,
                offset=off,
            )
            view[:] = arr
            del view  # keep no live buffer views: close() must not fail
        self.handle = ArenaHandle(
            name=self._shm.name,
            model=model,
            n=int(graph.n),
            layout=tuple(layout),
            owner_pid=self._owner_pid,
        )
        atexit.register(self.close)
        if _metrics.enabled:
            _metrics.add("parallel.shm_arenas", 1)
            _metrics.add("parallel.shm_bytes", self.handle.nbytes)
        log.debug(
            "arena exported",
            extra={
                "name": self.handle.name,
                "model": model,
                "bytes": self.handle.nbytes,
            },
        )

    def close(self) -> None:
        """Unlink the segment (idempotent; no-op in forked children)."""
        shm = self._shm
        if shm is None or os.getpid() != self._owner_pid:
            return
        self._shm = None
        atexit.unregister(self.close)
        try:
            shm.close()
        except BufferError:  # someone still maps our buffer; unlink anyway
            pass
        try:
            shm.unlink()
        except FileNotFoundError:
            pass

    def __enter__(self) -> "SharedGraphArena":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass


def _shares_owner_tracker(owner_pid: int) -> bool:
    """Best-effort: does this process share the exporter's resource
    tracker? True for the exporter itself and for fork/forkserver
    workers (the tracker process predates the fork — pool setup starts
    it — and is inherited); False under spawn, where each process runs
    its own tracker."""
    if os.getpid() == owner_pid:
        return True
    try:
        import multiprocessing

        return multiprocessing.get_start_method(allow_none=True) != "spawn"
    except Exception:  # pragma: no cover - defensive
        return False


#: Worker-side attachment cache: segment name -> (SharedMemory, graph).
#: Sized for a handful of concurrent arenas; entries rotate out FIFO.
_ATTACHED: dict[str, tuple[shared_memory.SharedMemory, object]] = {}
_ATTACH_CAP = 8


def attach(handle: ArenaHandle):
    """Materialize a graph from a handle, zero-copy, cached per segment.

    The arrays returned point straight into the shared mapping (read
    only). Repeated tasks against the same arena reuse the mapping —
    attaching is a single ``shm_open``+``mmap``, no data moves.
    """
    cached = _ATTACHED.get(handle.name)
    if cached is not None:
        return cached[1]
    shm = shared_memory.SharedMemory(name=handle.name)
    # Python's resource tracker auto-registers every attach (there is no
    # ``track=False`` before 3.13). Under the fork start method all
    # workers inherit the *owner's* tracker process, whose registry is a
    # set keyed by name — so attach registrations collapse into the
    # owner's single entry and the owner's ``unlink`` balances them all.
    # Unregistering here would instead clobber that shared entry and
    # make the owner's unlink complain. Only a process with its *own*
    # tracker (spawn start method) must unregister, or its tracker will
    # unlink a segment it does not own when this process exits.
    if not _shares_owner_tracker(handle.owner_pid):
        try:
            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker internals moved
            pass
    arrays: dict[str, np.ndarray] = {}
    for field, dtype, offset, count in handle.layout:
        arr = np.ndarray(
            (count,), dtype=np.dtype(dtype), buffer=shm.buf, offset=offset
        )
        arr.setflags(write=False)
        arrays[field] = arr
    if handle.model == "node":
        graph = NodeWeightedGraph.from_csr(
            handle.n, arrays["costs"], arrays["indptr"], arrays["indices"]
        )
    else:
        graph = LinkWeightedDigraph.from_csr(
            handle.n, arrays["indptr"], arrays["indices"], arrays["weights"]
        )
    while len(_ATTACHED) >= _ATTACH_CAP:
        oldest = next(iter(_ATTACHED))
        old_shm, old_graph = _ATTACHED.pop(oldest)
        del old_graph
        try:
            old_shm.close()
        except BufferError:  # a task still holds views; drop the ref only
            pass
    _ATTACHED[handle.name] = (shm, graph)
    if _metrics.enabled:
        _metrics.add("parallel.shm_attaches", 1)
    return graph


def resolve_graph(obj):
    """Return ``obj`` itself unless it is an :class:`ArenaHandle`, in
    which case attach and return the shared graph. Task functions call
    this on their graph argument so they accept both forms."""
    if isinstance(obj, ArenaHandle):
        return attach(obj)
    return obj
