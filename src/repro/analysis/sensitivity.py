"""Sensitivity of the overpayment to network density (ablation).

The evaluation fixes the UDG transmission range at 300 m; this sweep
varies it. The mechanism's overpayment is an *alternatives* phenomenon —
each relay is paid the improvement over the best path that avoids it —
so density is the lever: more range, more neighbours, tighter detours,
smaller premiums. The ablation quantifies that intuition and locates the
sparse cliff where monopolies appear.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


from repro.analysis.stats import Stats, aggregate
from repro.core.link_vcg import all_sources_link_payments
from repro.core.overpayment import overpayment_summary
from repro.utils.rng import derive_seed
from repro.wireless.deployment import sample_udg_deployment

__all__ = ["RangePoint", "range_sensitivity"]


@dataclass(frozen=True)
class RangePoint:
    """Overpayment metrics at one transmission range."""

    range_m: float
    mean_degree: Stats
    ior: Stats
    tor: Stats
    monopoly_fraction: Stats  # fraction of sources skipped as monopolized

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"range {self.range_m:.0f} m: degree {self.mean_degree.mean:.1f}, "
            f"IOR {self.ior.mean:.3f}, TOR {self.tor.mean:.3f}, "
            f"monopolized {self.monopoly_fraction.mean:.1%}"
        )


def range_sensitivity(
    ranges_m: Sequence[float],
    n: int = 150,
    kappa: float = 2.0,
    instances: int = 5,
    base_seed: int = 77,
) -> list[RangePoint]:
    """Sweep the UDG transmission range; aggregate per-instance metrics."""
    if instances < 1:
        raise ValueError(f"need at least one instance, got {instances}")
    out = []
    for r in ranges_m:
        degrees, iors, tors, monos = [], [], [], []
        for idx in range(instances):
            seed = derive_seed(base_seed, "range-sweep", n, r, idx)
            dep = sample_udg_deployment(n, range_m=float(r), kappa=kappa, seed=seed)
            table = all_sources_link_payments(dep.digraph, root=0)
            summary = overpayment_summary(table)
            degrees.append(dep.mean_out_degree())
            iors.append(summary.ior)
            tors.append(summary.tor)
            priced = summary.n_sources + summary.skipped_monopoly
            monos.append(
                summary.skipped_monopoly / priced if priced else float("nan")
            )
        out.append(
            RangePoint(
                range_m=float(r),
                mean_degree=aggregate(degrees),
                ior=aggregate(iors),
                tor=aggregate(tors),
                monopoly_fraction=aggregate(monos),
            )
        )
    return out
