"""Overpayment sweeps over random wireless instances (Section III.G).

One *instance* = one seeded deployment + the all-sources VCG payment
table + the TOR/IOR/worst metrics (and optionally the per-hop buckets for
Figure 3(d)). One *sweep point* = many instances at a fixed
``(kind, n, kappa)``. One *sweep* = a list of points over growing ``n``.

Seeds are derived per (experiment label, n, instance index) with
:func:`repro.utils.rng.derive_seed`, so any single instance of any sweep
can be regenerated in isolation for debugging.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.core.link_vcg import all_sources_link_payments
from repro.core.overpayment import (
    HopBucket,
    OverpaymentSummary,
    overpayment_summary,
    per_hop_breakdown,
)
from repro.analysis.parallel import resolve_jobs, run_tasks
from repro.analysis.stats import Stats, aggregate
from repro.obs.logging import get_logger
from repro.obs.metrics import REGISTRY as _metrics
from repro.utils.rng import derive_seed
from repro.wireless.deployment import sample_deployment

log = get_logger("analysis.experiments")

__all__ = [
    "InstanceMetrics",
    "SweepPoint",
    "SweepResult",
    "run_overpayment_instance",
    "sweep_overpayment",
]


@dataclass(frozen=True)
class InstanceMetrics:
    """Metrics of a single random instance."""

    kind: str
    n: int
    kappa: float
    seed: int
    summary: OverpaymentSummary
    hop_buckets: tuple[HopBucket, ...] = ()
    resamples: int = 0
    dropped: int = 0

    @property
    def ior(self) -> float:
        """Individual overpayment ratio of this instance."""
        return self.summary.ior

    @property
    def tor(self) -> float:
        """Total overpayment ratio of this instance."""
        return self.summary.tor

    @property
    def worst(self) -> float:
        """Worst per-source overpayment ratio of this instance."""
        return self.summary.worst


def run_overpayment_instance(
    kind: str,
    n: int,
    kappa: float,
    seed: int,
    collect_hops: bool = False,
    **deploy_kwargs,
) -> InstanceMetrics:
    """Generate one deployment, price every source, compute the metrics.

    ``kind`` is ``"udg"`` (first simulation) or ``"heterogeneous"``
    (second simulation); extra ``deploy_kwargs`` go to the sampler
    (e.g. ``range_m`` for UDG).
    """
    with _metrics.timed("experiments.instance_time", always=True) as t:
        deployment = sample_deployment(
            kind, n, kappa=kappa, seed=seed, **deploy_kwargs
        )
        table = all_sources_link_payments(deployment.digraph, root=0)
        summary = overpayment_summary(table)
        buckets = tuple(per_hop_breakdown(table)) if collect_hops else ()
    log.debug(
        "instance priced",
        extra={
            "kind": kind,
            "n": n,
            "kappa": kappa,
            "seed": seed,
            "elapsed_s": round(t.elapsed, 6),
        },
    )
    if _metrics.enabled:
        _metrics.add("experiments.instances", 1)
    return InstanceMetrics(
        kind=kind,
        n=n,
        kappa=kappa,
        seed=seed,
        summary=summary,
        hop_buckets=buckets,
        resamples=deployment.resamples,
        dropped=deployment.dropped,
    )


@dataclass(frozen=True)
class SweepPoint:
    """All instances at one (kind, n, kappa) parameter point."""

    kind: str
    n: int
    kappa: float
    instances: tuple[InstanceMetrics, ...]

    def stat(self, metric: str) -> Stats:
        """Aggregate one of ``"ior"``, ``"tor"``, ``"worst"``."""
        return aggregate(getattr(m, metric) for m in self.instances)

    def merged_hop_buckets(self) -> list[HopBucket]:
        """Pool the per-hop ratios of every instance (Figure 3(d) style).

        Buckets are merged by hop count; the mean is weighted by each
        instance bucket's source count and the max is the overall max.
        """
        acc: Mapping[int, list[tuple[float, float, int]]] = {}
        for m in self.instances:
            for b in m.hop_buckets:
                acc.setdefault(b.hops, []).append(
                    (b.mean_ratio, b.max_ratio, b.count)
                )
        out = []
        for hops in sorted(acc):
            entries = acc[hops]
            total = sum(c for _, _, c in entries)
            mean = sum(m * c for m, _, c in entries) / total
            mx = max(x for _, x, _ in entries)
            out.append(
                HopBucket(hops=hops, count=total, mean_ratio=mean, max_ratio=mx)
            )
        return out


@dataclass(frozen=True)
class SweepResult:
    """A full sweep over ``n`` at fixed kind/kappa."""

    label: str
    kind: str
    kappa: float
    points: tuple[SweepPoint, ...] = field(default_factory=tuple)

    @property
    def n_values(self) -> list[int]:
        """The sweep's node counts, in order."""
        return [p.n for p in self.points]

    def series(self, metric: str, reducer: str = "mean") -> list[float]:
        """Extract a plottable series: ``reducer`` of ``metric`` per n."""
        return [getattr(p.stat(metric), reducer) for p in self.points]


def sweep_overpayment(
    label: str,
    kind: str,
    n_values: Sequence[int],
    kappa: float,
    instances: int,
    base_seed: int = 2004,
    collect_hops: bool = False,
    jobs: int | None = None,
    **deploy_kwargs,
) -> SweepResult:
    """Run the full sweep; the workhorse behind every Figure-3 panel.

    ``jobs`` fans the instances out over a process pool
    (:mod:`repro.analysis.parallel`): ``None``/``1`` runs serially,
    ``-1`` uses every core. Instances are pure functions of their
    derived seed and results are reassembled in seed-derivation order,
    so the ``SweepResult`` is bit-identical for every ``jobs`` value.
    """
    if instances < 1:
        raise ValueError(f"need at least one instance, got {instances}")
    n_jobs = resolve_jobs(jobs)
    tasks = []
    for n in n_values:
        log.info(
            "sweep point queued",
            extra={"label": label, "kind": kind, "n": int(n),
                   "kappa": float(kappa), "instances": instances,
                   "jobs": n_jobs},
        )
        for idx in range(instances):
            seed = derive_seed(base_seed, label, kind, n, kappa, idx)
            tasks.append((
                (kind, int(n), float(kappa), seed),
                {"collect_hops": collect_hops, **deploy_kwargs},
            ))
    metrics = run_tasks(run_overpayment_instance, tasks, jobs=n_jobs)
    points = []
    for i, n in enumerate(n_values):
        chunk = tuple(metrics[i * instances : (i + 1) * instances])
        points.append(
            SweepPoint(kind=kind, n=int(n), kappa=float(kappa), instances=chunk)
        )
    return SweepResult(label=label, kind=kind, kappa=float(kappa), points=tuple(points))
