"""Series builders for every panel of Figure 3.

Each ``fig3x`` function regenerates the data behind one panel of the
paper's Figure 3 and returns a :class:`FigureSeries` — x values plus the
named curves the panel plots. Defaults follow the paper (nodes 100..500
step 50, range 300 m, 100 instances) but the benchmarks scale them down
via arguments for CI-friendly runtimes.

Panel map (paper, Section III.G):

=======  ==================================================================
 panel    content
=======  ==================================================================
 3(a)     IOR vs TOR, UDG, kappa = 2 (the two are nearly identical)
 3(b)     average + worst overpayment ratio, UDG, kappa = 2
 3(c)     same as (b) with kappa = 2.5
 3(d)     overpayment ratio vs hop distance to the source (UDG, kappa = 2)
 3(e)     average + worst ratio, heterogeneous "random graph", kappa = 2
 3(f)     same as (e) with kappa = 2.5
=======  ==================================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.analysis.experiments import SweepResult, sweep_overpayment
from repro.utils.tables import series_table

__all__ = [
    "FigureSeries",
    "fig3a",
    "fig3b",
    "fig3c",
    "fig3d",
    "fig3e",
    "fig3f",
    "ALL_FIGURES",
    "PAPER_N_VALUES",
]

#: The node counts of the paper's sweeps ("100, 150, 200, ..., 500").
PAPER_N_VALUES: tuple[int, ...] = tuple(range(100, 501, 50))


@dataclass(frozen=True)
class FigureSeries:
    """The data behind one figure panel."""

    figure: str
    title: str
    x_name: str
    x: tuple
    series: Mapping[str, tuple]
    notes: tuple[str, ...] = field(default_factory=tuple)
    sweep: SweepResult | None = None

    def render(self, digits: int = 4) -> str:
        """Render the series as an aligned text table."""
        body = series_table(
            self.x_name,
            list(self.x),
            {k: list(v) for k, v in self.series.items()},
            title=f"{self.figure}: {self.title}",
            digits=digits,
        )
        if self.notes:
            body += "\n" + "\n".join(f"  note: {n}" for n in self.notes)
        return body


def _ratio_sweep_figure(
    figure: str,
    title: str,
    kind: str,
    kappa: float,
    n_values: Sequence[int],
    instances: int,
    seed: int,
    include_tor: bool,
    jobs: int | None = None,
    **deploy_kwargs,
) -> FigureSeries:
    sweep = sweep_overpayment(
        label=figure,
        kind=kind,
        n_values=n_values,
        kappa=kappa,
        instances=instances,
        base_seed=seed,
        jobs=jobs,
        **deploy_kwargs,
    )
    series: dict[str, tuple] = {}
    if include_tor:
        series["IOR"] = tuple(sweep.series("ior", "mean"))
        series["TOR"] = tuple(sweep.series("tor", "mean"))
    else:
        series["avg ratio (IOR)"] = tuple(sweep.series("ior", "mean"))
        series["avg worst ratio"] = tuple(sweep.series("worst", "mean"))
        series["max worst ratio"] = tuple(sweep.series("worst", "max"))
    notes = (
        f"{instances} instances per point, kind={kind}, kappa={kappa}",
        "ratios exclude one-hop sources and monopolized sources "
        "(see repro.core.overpayment)",
    )
    return FigureSeries(
        figure=figure,
        title=title,
        x_name="nodes",
        x=tuple(int(n) for n in n_values),
        series=series,
        notes=notes,
        sweep=sweep,
    )


def fig3a(
    n_values: Sequence[int] = PAPER_N_VALUES,
    instances: int = 100,
    seed: int = 2004,
    range_m: float = 300.0,
    jobs: int | None = None,
) -> FigureSeries:
    """Figure 3(a): IOR vs TOR on UDG with kappa = 2.

    The paper's observation: "these two metrics are almost the same and
    both of them are stable when the number of nodes increases" — the
    benchmark asserts exactly that shape.
    """
    return _ratio_sweep_figure(
        "fig3a", "IOR vs TOR (UDG, kappa=2)", "udg", 2.0,
        n_values, instances, seed, jobs=jobs, include_tor=True, range_m=range_m,
    )


def fig3b(
    n_values: Sequence[int] = PAPER_N_VALUES,
    instances: int = 100,
    seed: int = 2004,
    range_m: float = 300.0,
    jobs: int | None = None,
) -> FigureSeries:
    """Figure 3(b): average and worst overpayment ratio (UDG, kappa = 2)."""
    return _ratio_sweep_figure(
        "fig3b", "overpayment ratios (UDG, kappa=2)", "udg", 2.0,
        n_values, instances, seed, jobs=jobs, include_tor=False, range_m=range_m,
    )


def fig3c(
    n_values: Sequence[int] = PAPER_N_VALUES,
    instances: int = 100,
    seed: int = 2004,
    range_m: float = 300.0,
    jobs: int | None = None,
) -> FigureSeries:
    """Figure 3(c): average and worst overpayment ratio (UDG, kappa = 2.5)."""
    return _ratio_sweep_figure(
        "fig3c", "overpayment ratios (UDG, kappa=2.5)", "udg", 2.5,
        n_values, instances, seed, jobs=jobs, include_tor=False, range_m=range_m,
    )


def fig3d(
    n: int = 300,
    instances: int = 100,
    seed: int = 2004,
    range_m: float = 300.0,
    kappa: float = 2.0,
    jobs: int | None = None,
) -> FigureSeries:
    """Figure 3(d): overpayment ratio vs hop distance to the source.

    The paper's observation: the *average* per-hop ratio stays flat while
    the *maximum* decreases with hop distance (long paths smooth out the
    oscillation of the relay-cost difference).
    """
    sweep = sweep_overpayment(
        label="fig3d",
        kind="udg",
        n_values=[n],
        kappa=kappa,
        instances=instances,
        base_seed=seed,
        collect_hops=True,
        jobs=jobs,
        range_m=range_m,
    )
    buckets = sweep.points[0].merged_hop_buckets()
    return FigureSeries(
        figure="fig3d",
        title=f"overpayment vs hop distance (UDG, n={n}, kappa={kappa})",
        x_name="hops",
        x=tuple(b.hops for b in buckets),
        series={
            "avg ratio": tuple(b.mean_ratio for b in buckets),
            "max ratio": tuple(b.max_ratio for b in buckets),
            "sources": tuple(b.count for b in buckets),
        },
        notes=(f"{instances} instances pooled at n={n}",),
        sweep=sweep,
    )


def fig3e(
    n_values: Sequence[int] = PAPER_N_VALUES,
    instances: int = 100,
    seed: int = 2004,
    jobs: int | None = None,
) -> FigureSeries:
    """Figure 3(e): heterogeneous-range "random graph", kappa = 2.

    Per-node ranges U[100, 500] m and link costs ``c1 + c2 d^kappa`` with
    ``c1 ~ U[300, 500]``, ``c2 ~ U[10, 50]`` (the paper's 2 Mbps power
    figures).
    """
    return _ratio_sweep_figure(
        "fig3e", "overpayment ratios (random graph, kappa=2)",
        "heterogeneous", 2.0, n_values, instances, seed, include_tor=False,
        jobs=jobs,
    )


def fig3f(
    n_values: Sequence[int] = PAPER_N_VALUES,
    instances: int = 100,
    seed: int = 2004,
    jobs: int | None = None,
) -> FigureSeries:
    """Figure 3(f): heterogeneous-range "random graph", kappa = 2.5."""
    return _ratio_sweep_figure(
        "fig3f", "overpayment ratios (random graph, kappa=2.5)",
        "heterogeneous", 2.5, n_values, instances, seed, include_tor=False,
        jobs=jobs,
    )


#: Figure id -> builder, for the CLI and the reporting script.
ALL_FIGURES = {
    "fig3a": fig3a,
    "fig3b": fig3b,
    "fig3c": fig3c,
    "fig3d": fig3d,
    "fig3e": fig3e,
    "fig3f": fig3f,
}
