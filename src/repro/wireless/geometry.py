"""Planar geometry for wireless deployments.

The evaluation places nodes uniformly in a ``2000m x 2000m`` region
(Section III.G, first simulation); :class:`Region` generalizes to any
axis-aligned rectangle.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import as_rng

__all__ = ["Region", "uniform_points", "pairwise_distances", "PAPER_REGION"]


@dataclass(frozen=True)
class Region:
    """Axis-aligned rectangular deployment region, in metres."""

    width: float
    height: float

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError(
                f"region dimensions must be positive, got "
                f"{self.width} x {self.height}"
            )

    @property
    def area(self) -> float:
        """Region area in square metres."""
        return self.width * self.height

    @property
    def diameter(self) -> float:
        """Length of the region diagonal (an upper bound on any link)."""
        return float(np.hypot(self.width, self.height))

    def contains(self, points: np.ndarray) -> np.ndarray:
        """Boolean mask of points inside the region (inclusive borders)."""
        points = np.asarray(points, dtype=np.float64)
        return (
            (points[:, 0] >= 0)
            & (points[:, 0] <= self.width)
            & (points[:, 1] >= 0)
            & (points[:, 1] <= self.height)
        )


#: The region used by both simulations in Section III.G.
PAPER_REGION = Region(2000.0, 2000.0)


def uniform_points(region: Region, n: int, seed=None) -> np.ndarray:
    """``(n, 2)`` array of points uniform in ``region``."""
    if n < 0:
        raise ValueError(f"number of points must be non-negative, got {n}")
    rng = as_rng(seed)
    pts = rng.random((n, 2))
    pts[:, 0] *= region.width
    pts[:, 1] *= region.height
    return pts


def pairwise_distances(points: np.ndarray) -> np.ndarray:
    """Dense ``(n, n)`` Euclidean distance matrix (vectorized).

    For the evaluation sizes (n <= 500) the dense matrix is small
    (< 2 MB) and a single broadcasted expression beats any loop.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError(f"points must have shape (n, 2), got {points.shape}")
    diff = points[:, None, :] - points[None, :, :]
    return np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
