"""Node mobility models (extension; the paper assumes a static network).

Section III.C's convergence argument requires "the network is static";
any real ad hoc network drifts. This module provides two standard
mobility models so the analysis layer can quantify how much of the
pricing state survives between topology epochs (see
:mod:`repro.analysis.churn`):

* :class:`GaussianDrift` — each node takes an independent Gaussian step
  per epoch (Brownian-style local mobility; students walking between
  adjacent buildings);
* :class:`RandomWaypoint` — each node moves toward a private waypoint at
  a fixed speed, drawing a fresh waypoint on arrival (the classic ad hoc
  mobility benchmark model).

Both reflect positions back into the deployment region so the node
density stays comparable across epochs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import as_rng
from repro.wireless.geometry import Region

__all__ = ["GaussianDrift", "RandomWaypoint", "mobility_trace"]


def _reflect(points: np.ndarray, region: Region) -> np.ndarray:
    """Reflect coordinates back into the region (billiard boundary)."""
    out = points.copy()
    for dim, size in ((0, region.width), (1, region.height)):
        coord = np.mod(out[:, dim], 2 * size)
        coord = np.where(coord > size, 2 * size - coord, coord)
        out[:, dim] = coord
    return out


@dataclass
class GaussianDrift:
    """Independent Gaussian steps with standard deviation ``sigma`` metres."""

    region: Region
    sigma: float

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ValueError(f"sigma must be non-negative, got {self.sigma}")

    def step(self, points: np.ndarray, rng) -> np.ndarray:
        """Advance every node by one mobility epoch; returns new positions."""
        rng = as_rng(rng)
        moved = points + rng.normal(0.0, self.sigma, size=points.shape)
        return _reflect(moved, self.region)


@dataclass
class RandomWaypoint:
    """Move toward private waypoints at ``speed`` metres per epoch.

    State (the current waypoints) lives on the instance, so one model
    object drives one trace.
    """

    region: Region
    speed: float
    _waypoints: np.ndarray | None = None

    def __post_init__(self) -> None:
        if self.speed <= 0:
            raise ValueError(f"speed must be positive, got {self.speed}")

    def _ensure_waypoints(self, points: np.ndarray, rng) -> None:
        if self._waypoints is None or self._waypoints.shape != points.shape:
            self._waypoints = self._draw(points.shape[0], rng)

    def _draw(self, n: int, rng) -> np.ndarray:
        pts = rng.random((n, 2))
        pts[:, 0] *= self.region.width
        pts[:, 1] *= self.region.height
        return pts

    def step(self, points: np.ndarray, rng) -> np.ndarray:
        """Advance every node by one mobility epoch; returns new positions."""
        rng = as_rng(rng)
        self._ensure_waypoints(points, rng)
        delta = self._waypoints - points
        dist = np.linalg.norm(delta, axis=1)
        arrived = dist <= self.speed
        moved = points.copy()
        # nodes still travelling take a full-speed step toward the waypoint
        travelling = ~arrived & (dist > 0)
        moved[travelling] += (
            delta[travelling] / dist[travelling, None] * self.speed
        )
        # arrivals land exactly and draw a fresh waypoint
        moved[arrived] = self._waypoints[arrived]
        if arrived.any():
            self._waypoints[arrived] = self._draw(int(arrived.sum()), rng)
        return moved


def mobility_trace(model, points: np.ndarray, epochs: int, seed=None):
    """Yield ``epochs + 1`` position arrays: the initial one, then steps."""
    if epochs < 0:
        raise ValueError(f"epochs must be non-negative, got {epochs}")
    rng = as_rng(seed)
    current = np.asarray(points, dtype=np.float64).copy()
    yield current.copy()
    for _ in range(epochs):
        current = model.step(current, rng)
        yield current.copy()
