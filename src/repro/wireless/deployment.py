"""Complete, reproducible wireless deployments.

A :class:`Deployment` bundles everything an experiment instance needs —
points, ranges, power model, the resulting digraph — plus the seed path
that produced it, so any instance in a 100-instance sweep can be
regenerated in isolation.

The two samplers mirror the paper's two simulations (Section III.G) and
retry until the topology satisfies the mechanism's monopoly-freeness
precondition (every node reaches the access point even after any single
other node fails); the paper assumes biconnectivity outright, we make the
rejection loop explicit and record how many resamples were needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ExperimentError
from repro.graph.connectivity import single_failure_robust
from repro.graph.link_graph import LinkWeightedDigraph
from repro.utils.rng import as_rng
from repro.wireless.energy import PowerModel, paper_second_sim_model
from repro.wireless.geometry import PAPER_REGION, Region, uniform_points
from repro.wireless.topology import (
    build_link_digraph,
    heterogeneous_adjacency,
    udg_adjacency,
)
from repro.wireless.geometry import pairwise_distances

__all__ = [
    "Deployment",
    "sample_deployment",
    "sample_udg_deployment",
    "sample_heterogeneous_deployment",
]


@dataclass(frozen=True)
class Deployment:
    """A generated wireless instance.

    Attributes
    ----------
    points:
        ``(n, 2)`` node positions; node 0 is the access point ``v_0``.
    ranges:
        Length-``n`` transmission ranges (a constant vector for UDG).
    model:
        The :class:`~repro.wireless.energy.PowerModel` used for link costs.
    digraph:
        The Section III.F link-cost digraph.
    resamples:
        How many candidate deployments were rejected (for failing the
        single-failure robustness precondition) before this one.
    """

    points: np.ndarray
    ranges: np.ndarray
    model: PowerModel
    digraph: LinkWeightedDigraph
    resamples: int = 0
    kind: str = field(default="udg")
    dropped: int = 0

    @property
    def n(self) -> int:
        """Number of nodes."""
        return int(self.points.shape[0])

    @property
    def access_point(self) -> int:
        """The access point's node id (always 0)."""
        return 0

    def mean_out_degree(self) -> float:
        """Average number of outgoing links per node."""
        return self.digraph.num_arcs / max(self.n, 1)


def _is_feasible(dg: LinkWeightedDigraph, root: int) -> bool:
    return single_failure_robust(dg, root)


def sample_udg_deployment(
    n: int,
    *,
    range_m: float = 300.0,
    kappa: float = 2.0,
    region: Region = PAPER_REGION,
    seed=None,
    max_resamples: int = 200,
    require_robust: bool = False,
) -> Deployment:
    """First-simulation instance: UDG, cost ``d^kappa``.

    Defaults match the paper: range 300 m in a 2000 m x 2000 m region,
    ``kappa`` in {2, 2.5}. At the sparse end (n = 100 the expected degree
    is only ~7) a fully single-failure-robust placement is rare, so by
    default the sampler only prunes nodes that cannot reach the access
    point at all and leaves per-source monopolies to the metrics layer
    (which excludes and counts them, matching how the deployment module
    treats the heterogeneous topologies). ``require_robust=True`` restores
    strict rejection sampling for the paper's biconnectivity assumption —
    use it for the mechanism-theory experiments, not the ratio sweeps.
    """
    model = PowerModel(alpha=0.0, beta=1.0, kappa=kappa)
    rng = as_rng(seed)
    for attempt in range(max_resamples + 1):
        points = uniform_points(region, n, seed=rng)
        dist = pairwise_distances(points)
        adj = udg_adjacency(dist, range_m)
        dg = build_link_digraph(points, model, adj)
        if require_robust:
            if not _is_feasible(dg, root=0):
                continue
            kept_count = n
        else:
            reach = _reaches_root_mask(dg, root=0)
            kept = np.nonzero(reach)[0]
            if kept.shape[0] < max(3, n // 2):
                continue
            if kept.shape[0] < n:
                remap = {int(old): new for new, old in enumerate(kept)}
                points = points[kept]
                dg = LinkWeightedDigraph(
                    kept.shape[0],
                    (
                        (remap[u], remap[v], w)
                        for u, v, w in dg.arc_iter()
                        if u in remap and v in remap
                    ),
                )
            kept_count = kept.shape[0]
        return Deployment(
            points=points,
            ranges=np.full(points.shape[0], float(range_m)),
            model=model,
            digraph=dg,
            resamples=attempt,
            kind="udg",
            dropped=n - kept_count,
        )
    raise ExperimentError(
        f"no acceptable UDG deployment found in {max_resamples + 1} "
        f"attempts (n={n}, range={range_m} m, require_robust="
        f"{require_robust}); increase the range or node count"
    )


def sample_heterogeneous_deployment(
    n: int,
    *,
    range_bounds: tuple[float, float] = (100.0, 500.0),
    kappa: float = 2.0,
    c1_range: tuple[float, float] = (300.0, 500.0),
    c2_range: tuple[float, float] = (10.0, 50.0),
    region: Region = PAPER_REGION,
    seed=None,
    max_resamples: int = 200,
) -> Deployment:
    """Second-simulation instance: per-node ranges, cost ``c1 + c2 d^kappa``.

    Defaults match the paper: ranges ``U[100, 500]`` m, ``c1 ~ U[300, 500]``,
    ``c2 ~ U[10, 50]``. The resulting digraph is genuinely asymmetric.
    """
    lo, hi = range_bounds
    if not 0 < lo <= hi:
        raise ValueError(f"invalid range bounds {range_bounds}")
    rng = as_rng(seed)
    for attempt in range(max_resamples + 1):
        points = uniform_points(region, n, seed=rng)
        ranges = rng.uniform(lo, hi, size=n)
        model = paper_second_sim_model(
            n, kappa=kappa, c1_range=c1_range, c2_range=c2_range, seed=rng
        )
        dist = pairwise_distances(points)
        adj = heterogeneous_adjacency(dist, ranges)
        dg = build_link_digraph(points, model, adj)
        # Short-range nodes routinely cannot reach anyone at all in this
        # regime, so instead of rejecting until every node is robust (which
        # essentially never happens), keep the nodes that can reach the
        # access point and let the metrics layer exclude the remaining
        # per-source monopolies. Reject only topologies where fewer than
        # half of the nodes can reach the AP.
        reach = _reaches_root_mask(dg, root=0)
        kept = np.nonzero(reach)[0]
        if kept.shape[0] < max(3, n // 2):
            continue
        if kept.shape[0] < n:
            remap = {int(old): new for new, old in enumerate(kept)}
            points = points[kept]
            ranges = ranges[kept]
            alpha = np.asarray(model.alpha, dtype=np.float64)[kept]
            beta = np.asarray(model.beta, dtype=np.float64)[kept]
            model = PowerModel(alpha=alpha, beta=beta, kappa=model.kappa)
            dg = LinkWeightedDigraph(
                kept.shape[0],
                (
                    (remap[u], remap[v], w)
                    for u, v, w in dg.arc_iter()
                    if u in remap and v in remap
                ),
            )
        return Deployment(
            points=points,
            ranges=ranges,
            model=model,
            digraph=dg,
            resamples=attempt,
            kind="heterogeneous",
            dropped=n - kept.shape[0],
        )
    raise ExperimentError(
        f"no usable heterogeneous deployment found in "
        f"{max_resamples + 1} attempts (n={n}, ranges={range_bounds}); "
        "fewer than half the nodes could reach the access point"
    )


def _reaches_root_mask(dg: LinkWeightedDigraph, root: int) -> np.ndarray:
    """Mask of nodes with a directed path to ``root`` (reverse BFS)."""
    seen = np.zeros(dg.n, dtype=bool)
    seen[root] = True
    stack = [root]
    rev = dg.reverse()
    while stack:
        u = stack.pop()
        heads, _ = rev.out_neighbors(u)
        for w in heads:
            if not seen[w]:
                seen[w] = True
                stack.append(int(w))
    return seen


def sample_deployment(kind: str, n: int, **kwargs) -> Deployment:
    """Dispatch by kind: ``"udg"`` or ``"heterogeneous"``."""
    if kind == "udg":
        return sample_udg_deployment(n, **kwargs)
    if kind == "heterogeneous":
        return sample_heterogeneous_deployment(n, **kwargs)
    raise ValueError(f"unknown deployment kind {kind!r}")
