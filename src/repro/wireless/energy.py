"""Radio energy models (Section III.F/III.G).

The paper's power-attenuation model: the power needed to support a link
``e = (v_i, v_j)`` is ``alpha + beta * ||v_i v_j||^kappa`` where ``kappa``
(the path-loss exponent, typically 2..5) is environment-wide while
``alpha`` (receive/processing overhead) and ``beta`` (transmit gain) may
differ per node.

Two concrete instantiations reproduce the evaluation:

* first simulation — cost of forwarding from ``v_i`` to ``v_j`` is
  ``||v_i v_j||^kappa`` (``alpha = 0``, ``beta = 1``), range 300 m;
* second simulation — ``c1 + c2 * ||v_i v_j||^kappa`` with per-node
  ``c1 ~ U[300, 500]`` and ``c2 ~ U[10, 50]`` (values that "reflect the
  actual power cost in one second of a node to send data at 2 Mbps"),
  ranges per-node ``U[100, 500]`` m.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import as_rng

__all__ = [
    "PowerModel",
    "PAPER_FIRST_SIM",
    "paper_second_sim_model",
    "link_cost_matrix",
]


@dataclass(frozen=True)
class PowerModel:
    """Per-node affine power model ``cost(i, j) = alpha_i + beta_i * d^kappa``.

    ``alpha`` and ``beta`` are either scalars (shared by every node) or
    length-``n`` arrays. ``kappa`` is shared (paper assumption).
    """

    alpha: float | np.ndarray
    beta: float | np.ndarray
    kappa: float

    def __post_init__(self) -> None:
        if not 0 < self.kappa <= 10:
            raise ValueError(f"kappa must be in (0, 10], got {self.kappa}")
        for name in ("alpha", "beta"):
            val = np.asarray(getattr(self, name), dtype=np.float64)
            if (val < 0).any():
                raise ValueError(f"{name} must be non-negative")

    def costs(self, distances: np.ndarray) -> np.ndarray:
        """Cost matrix for a dense ``(n, n)`` distance matrix.

        Row ``i`` is node ``i``'s cost to transmit to each other node —
        its Section III.F type vector, before range truncation.
        """
        d = np.asarray(distances, dtype=np.float64)
        alpha = np.asarray(self.alpha, dtype=np.float64)
        beta = np.asarray(self.beta, dtype=np.float64)
        if alpha.ndim == 1:
            alpha = alpha[:, None]
        if beta.ndim == 1:
            beta = beta[:, None]
        return alpha + beta * d**self.kappa

    def with_kappa(self, kappa: float) -> "PowerModel":
        """Copy of the model with a different path-loss exponent."""
        return PowerModel(self.alpha, self.beta, kappa)


#: First simulation of Section III.G: cost = d^kappa (default kappa = 2).
PAPER_FIRST_SIM = PowerModel(alpha=0.0, beta=1.0, kappa=2.0)


def paper_second_sim_model(
    n: int,
    kappa: float = 2.0,
    c1_range: tuple[float, float] = (300.0, 500.0),
    c2_range: tuple[float, float] = (10.0, 50.0),
    seed=None,
) -> PowerModel:
    """Per-node model of the second simulation: ``c1 + c2 * d^kappa``.

    ``c1`` and ``c2`` are drawn uniformly per node from the paper's ranges
    (overridable for sensitivity studies).
    """
    rng = as_rng(seed)
    lo1, hi1 = c1_range
    lo2, hi2 = c2_range
    if lo1 > hi1 or lo2 > hi2 or lo1 < 0 or lo2 < 0:
        raise ValueError(
            f"invalid coefficient ranges c1={c1_range}, c2={c2_range}"
        )
    c1 = rng.uniform(lo1, hi1, size=n)
    c2 = rng.uniform(lo2, hi2, size=n)
    return PowerModel(alpha=c1, beta=c2, kappa=kappa)


def link_cost_matrix(
    distances: np.ndarray,
    model: PowerModel,
    adjacency: np.ndarray,
) -> np.ndarray:
    """Type matrix ``C`` with ``C[i, j] = cost(i, j)`` on links, ``inf`` off.

    ``adjacency`` is the boolean reachability matrix (``adjacency[i, j]``
    true when ``j`` is within ``i``'s transmission range). The diagonal is
    forced to 0, matching the paper's ``c_{i,i} = 0`` convention.
    """
    adjacency = np.asarray(adjacency, dtype=bool)
    costs = model.costs(distances)
    out = np.where(adjacency, costs, np.inf)
    np.fill_diagonal(out, 0.0)
    return out
