"""Wireless substrate: deployments, radio energy models, topologies.

Reproduces the physical layer the paper's evaluation (Section III.G)
assumes: nodes placed uniformly at random in a square region, links that
exist when the receiver is within the sender's transmission range, and
per-link power costs following the standard power-attenuation model
``alpha + beta * d^kappa``.
"""

from repro.wireless.geometry import (
    Region,
    pairwise_distances,
    uniform_points,
)
from repro.wireless.energy import (
    PowerModel,
    PAPER_FIRST_SIM,
    paper_second_sim_model,
    link_cost_matrix,
)
from repro.wireless.topology import (
    udg_adjacency,
    heterogeneous_adjacency,
    build_link_digraph,
    build_node_graph_from_udg,
)
from repro.wireless.deployment import (
    Deployment,
    sample_deployment,
    sample_udg_deployment,
    sample_heterogeneous_deployment,
)
from repro.wireless.devices import (
    DEVICE_CATALOG,
    DeviceClass,
    DeviceMix,
    sample_device_mix,
)
from repro.wireless.mobility import GaussianDrift, RandomWaypoint, mobility_trace

__all__ = [
    "Region",
    "pairwise_distances",
    "uniform_points",
    "PowerModel",
    "PAPER_FIRST_SIM",
    "paper_second_sim_model",
    "link_cost_matrix",
    "udg_adjacency",
    "heterogeneous_adjacency",
    "build_link_digraph",
    "build_node_graph_from_udg",
    "Deployment",
    "sample_deployment",
    "sample_udg_deployment",
    "sample_heterogeneous_deployment",
    "DEVICE_CATALOG",
    "DeviceClass",
    "DeviceMix",
    "sample_device_mix",
    "GaussianDrift",
    "RandomWaypoint",
    "mobility_trace",
]
