"""Device classes: heterogeneous node types (Section II.B).

"Each node v_i, depending on its type (e.g., laptop, PDA, cell phone),
is associated with an average cost c_i to forward a data packet." This
module provides a small catalog of device classes with plausible
relative relaying costs and battery budgets, and a sampler that draws a
mixed population — so experiments can study how the mechanism treats a
realistic device mix (cheap mains-powered laptops undercut battery-sipping
phones, earn the relay business, and spare the constrained devices).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import as_rng

__all__ = ["DeviceClass", "DEVICE_CATALOG", "sample_device_mix", "DeviceMix"]


@dataclass(frozen=True)
class DeviceClass:
    """One kind of participating device.

    ``cost_range`` is the per-packet relaying cost interval (the type the
    mechanism elicits); ``battery`` the energy budget in the same units
    (for the lifetime simulations).
    """

    name: str
    cost_range: tuple[float, float]
    battery: float

    def __post_init__(self) -> None:
        lo, hi = self.cost_range
        if not 0 <= lo <= hi:
            raise ValueError(f"invalid cost range {self.cost_range}")
        if self.battery <= 0:
            raise ValueError(f"battery must be positive, got {self.battery}")

    def draw_costs(self, count: int, rng) -> np.ndarray:
        """Sample per-packet relaying costs for this class."""
        lo, hi = self.cost_range
        return rng.uniform(lo, hi, size=count)


#: Plausible relative magnitudes: a plugged-in laptop relays almost for
#: free; a phone's radio time is precious.
DEVICE_CATALOG: dict[str, DeviceClass] = {
    "laptop": DeviceClass("laptop", cost_range=(0.5, 2.0), battery=2000.0),
    "pda": DeviceClass("pda", cost_range=(2.0, 6.0), battery=600.0),
    "phone": DeviceClass("phone", cost_range=(5.0, 12.0), battery=250.0),
}


@dataclass(frozen=True)
class DeviceMix:
    """A sampled population: per-node class labels, costs and batteries."""

    classes: tuple[str, ...]
    costs: np.ndarray
    batteries: np.ndarray

    @property
    def n(self) -> int:
        """Number of nodes."""
        return len(self.classes)

    def members(self, name: str) -> list[int]:
        """Node ids belonging to one device class."""
        return [i for i, c in enumerate(self.classes) if c == name]


def sample_device_mix(
    n: int,
    proportions: dict[str, float] | None = None,
    catalog: dict[str, DeviceClass] = DEVICE_CATALOG,
    seed=None,
) -> DeviceMix:
    """Draw a population of ``n`` devices.

    ``proportions`` maps class name -> weight (normalized internally);
    defaults to an even split over the catalog. Per-node costs come from
    the class's cost range; batteries are the class constant.
    """
    if n < 1:
        raise ValueError(f"need at least one device, got {n}")
    if proportions is None:
        proportions = {name: 1.0 for name in catalog}
    unknown = set(proportions) - set(catalog)
    if unknown:
        raise ValueError(f"unknown device classes: {sorted(unknown)}")
    names = sorted(proportions)
    weights = np.array([proportions[name] for name in names], dtype=float)
    if (weights < 0).any() or weights.sum() <= 0:
        raise ValueError("proportions must be non-negative and not all zero")
    weights = weights / weights.sum()
    rng = as_rng(seed)
    labels = rng.choice(len(names), size=n, p=weights)
    classes = tuple(names[int(l)] for l in labels)
    costs = np.empty(n)
    batteries = np.empty(n)
    for idx, name in enumerate(names):
        mask = labels == idx
        cls = catalog[name]
        costs[mask] = cls.draw_costs(int(mask.sum()), rng)
        batteries[mask] = cls.battery
    return DeviceMix(classes=classes, costs=costs, batteries=batteries)
