"""Topology construction from deployments.

Two reachability structures appear in the evaluation:

* **UDG** (unit-disk graph, first simulation): every node has the same
  transmission range, so links are symmetric and the topology is an
  undirected disk graph.
* **Heterogeneous ranges** (second simulation, the paper's "random
  graph"): each node draws its own range, so ``i`` may reach ``j``
  while ``j`` cannot reach ``i`` — a genuinely directed topology.
"""

from __future__ import annotations

import numpy as np

from repro.graph.link_graph import LinkWeightedDigraph
from repro.graph.node_graph import NodeWeightedGraph
from repro.wireless.energy import PowerModel, link_cost_matrix
from repro.wireless.geometry import pairwise_distances

__all__ = [
    "udg_adjacency",
    "heterogeneous_adjacency",
    "build_link_digraph",
    "build_node_graph_from_udg",
]


def udg_adjacency(distances: np.ndarray, range_m: float) -> np.ndarray:
    """Boolean UDG adjacency: ``d(i, j) <= range`` and ``i != j``."""
    if range_m <= 0:
        raise ValueError(f"transmission range must be positive, got {range_m}")
    adj = np.asarray(distances) <= range_m
    np.fill_diagonal(adj, False)
    return adj


def heterogeneous_adjacency(distances: np.ndarray, ranges: np.ndarray) -> np.ndarray:
    """Directed adjacency: ``adj[i, j]`` iff ``d(i, j) <= ranges[i]``.

    Asymmetric whenever two nodes have different ranges and their distance
    falls in between.
    """
    ranges = np.asarray(ranges, dtype=np.float64)
    if (ranges <= 0).any():
        raise ValueError("all transmission ranges must be positive")
    adj = np.asarray(distances) <= ranges[:, None]
    np.fill_diagonal(adj, False)
    return adj


def build_link_digraph(
    points: np.ndarray,
    model: PowerModel,
    adjacency: np.ndarray,
) -> LinkWeightedDigraph:
    """Assemble the Section III.F digraph from geometry + power model."""
    dist = pairwise_distances(points)
    matrix = link_cost_matrix(dist, model, adjacency)
    return LinkWeightedDigraph.from_cost_matrix(matrix)


def build_node_graph_from_udg(
    points: np.ndarray,
    range_m: float,
    node_costs: np.ndarray,
) -> NodeWeightedGraph:
    """Node-weighted UDG: same topology, scalar per-node relaying costs.

    Used by the Sections II–III.E model on wireless deployments (each node
    declares one scalar regardless of the receiving neighbour).
    """
    dist = pairwise_distances(points)
    adj = udg_adjacency(dist, range_m)
    src, dst = np.nonzero(np.triu(adj, k=1))
    return NodeWeightedGraph(
        len(points), zip(src.tolist(), dst.tolist()), node_costs
    )
