"""Command-line interface: ``repro-unicast`` / ``python -m repro.cli``.

Subcommands:

* ``demo`` — price one unicast request on a random instance and print the
  route, the payments and the truthfulness check.
* ``fig3a`` .. ``fig3f`` — regenerate one panel of the paper's Figure 3
  and print the series as a table (``--full`` uses the paper's scale:
  n = 100..500, 100 instances; ``--jobs N`` fans the sweep out over N
  worker processes with bit-identical results, ``-1`` = all cores).
* ``collusion`` — hunt for a Theorem-7 collusion witness on a random
  instance and show the neighbour scheme's premium.
* ``distributed`` — run the two-stage distributed protocol and diff it
  against the centralized payments; ``--loss``/``--delay``/``--dup``/
  ``--crash``/``--max-retries`` inject faults and report the outcome.
* ``chaos`` — sweep the message-loss probability and tabulate payment
  correctness and message overhead per loss level.
* ``engine`` — replay a seeded query/update workload through the caching
  :class:`~repro.engine.PricingEngine` (``--compare-naive`` shadow-checks
  every answer against from-scratch pricing and reports the speedup;
  ``--save-trace``/``--trace`` write and reuse JSON-lines traces;
  ``--serve PORT`` exposes live telemetry over HTTP — ``/metrics``,
  ``/healthz``, ``/snapshot``, ``/flight`` — while the replay runs,
  ``--serve-grace SECONDS`` keeps serving after it finishes;
  ``--checkpoint-dir DIR`` makes the engine durable — every mutation is
  write-ahead logged there with ``--fsync`` policy and a checkpoint is
  cut every ``--checkpoint-every`` updates — and ``--recover`` resumes
  from that directory instead of building a fresh engine).
* ``recover`` — inspect a checkpoint directory: list checkpoints and
  WAL segments, flag torn/corrupt records, and (``--verify``) perform a
  full dry-run recovery without touching the directory.
* ``serve`` — run the concurrent HTTP pricing service
  (:mod:`repro.service`): ``POST /v1/price``, ``/v1/price_many``,
  ``/v1/update`` and ``GET /v1/graph`` on a snapshot-isolated
  :class:`~repro.engine.PricingEngine`, plus the telemetry family
  (``/metrics`` ``/healthz`` ``/snapshot`` ``/flight``). ``--workers``
  / ``--queue-depth`` / ``--deadline`` tune admission control;
  ``--checkpoint-dir`` (+ ``--recover``) makes the engine durable
  exactly as for ``engine``; ``--duration SECONDS`` serves for a fixed
  window, otherwise SIGINT/SIGTERM drains in-flight requests, cuts a
  final checkpoint (durable engines) and exits cleanly. ``--chaos
  PLAN`` (or the ``REPRO_CHAOS`` env var) attaches a seeded
  fault-injection plan, ``--degrade`` enables degraded-mode serving
  (stale-but-stamped answers under overload/recovery).
* ``client`` — drive a running service through the resilient
  :class:`~repro.service.PricingClient` (seeded retries with full
  jitter, circuit breaker, deadline propagation, idempotency keys):
  a seeded read/write workload against ``--url``, with ``--verify``
  replaying the recorded update history through a serial oracle and
  exiting nonzero on any payment mismatch.

Global observability flags (accepted before or after the subcommand):
``--log-level LEVEL`` (structured key=value logs on stderr),
``--metrics`` (print an operation-count snapshot after the subcommand)
and ``--trace-out PATH`` (write a Chrome-loadable trace of the run).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.obs import logging as obs_logging
from repro.obs.metrics import REGISTRY
from repro.obs.tracing import TRACER

__all__ = ["main", "build_parser"]

_SMALL_N = (40, 70, 100)
_SMALL_INSTANCES = 5

_LOG_LEVELS = ("debug", "info", "warning", "error")

log = obs_logging.get_logger("cli")


def _add_obs_flags(parser: argparse.ArgumentParser, suppress: bool) -> None:
    """Attach the global observability flags.

    The same flags go on the top-level parser (with real defaults) and
    on every subparser (with ``SUPPRESS`` defaults, so an absent flag
    after the subcommand never clobbers one given before it) — both
    ``repro-unicast --metrics demo`` and ``repro-unicast demo
    --metrics`` work.
    """
    sup = argparse.SUPPRESS
    parser.add_argument(
        "--log-level",
        choices=_LOG_LEVELS,
        default=sup if suppress else "warning",
        help="stderr log level for structured key=value logs",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        default=sup if suppress else False,
        help="print a metrics snapshot after the subcommand",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        default=sup if suppress else None,
        help="write a Chrome trace-event JSON of the run to PATH",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse parser for the CLI."""
    parser = argparse.ArgumentParser(
        prog="repro-unicast",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    _add_obs_flags(parser, suppress=False)
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="price one unicast request")
    demo.add_argument("--nodes", type=int, default=30)
    demo.add_argument("--source", type=int, default=None)
    demo.add_argument("--seed", type=int, default=7)

    for fig in ("fig3a", "fig3b", "fig3c", "fig3d", "fig3e", "fig3f"):
        p = sub.add_parser(fig, help=f"regenerate {fig} of the paper")
        p.add_argument("--instances", type=int, default=None)
        p.add_argument("--seed", type=int, default=2004)
        p.add_argument(
            "--full",
            action="store_true",
            help="paper scale: n=100..500 step 50, 100 instances",
        )
        p.add_argument(
            "--jobs",
            type=int,
            default=None,
            metavar="N",
            help="worker processes for the sweep (-1 = all cores); "
            "results are bit-identical to the serial run",
        )
        if fig == "fig3d":
            p.add_argument("--nodes", type=int, default=None)
        else:
            p.add_argument(
                "--nodes",
                type=int,
                nargs="+",
                default=None,
                help="node counts for the sweep",
            )

    coll = sub.add_parser("collusion", help="find a Theorem-7 witness")
    coll.add_argument("--nodes", type=int, default=16)
    coll.add_argument("--seed", type=int, default=0)

    dist = sub.add_parser("distributed", help="run the two-stage protocol")
    dist.add_argument("--nodes", type=int, default=25)
    dist.add_argument("--seed", type=int, default=3)
    dist.add_argument("--secure", action="store_true")
    dist.add_argument(
        "--loss",
        type=float,
        default=0.0,
        help="per-delivery drop probability (enables fault injection)",
    )
    dist.add_argument(
        "--delay",
        type=int,
        default=0,
        metavar="R",
        help="delay each delivery by up to R extra rounds",
    )
    dist.add_argument(
        "--dup",
        type=float,
        default=0.0,
        help="per-delivery duplication probability",
    )
    dist.add_argument(
        "--crash",
        action="append",
        default=[],
        metavar="NODE:DOWN[:UP]",
        help="crash NODE at round DOWN (recover at UP); repeatable",
    )
    dist.add_argument(
        "--max-retries",
        type=int,
        default=None,
        help="per-message retransmission budget under faults",
    )
    dist.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed for the fault injection RNG",
    )

    chaos = sub.add_parser(
        "chaos", help="sweep message-loss probability, measure degradation"
    )
    chaos.add_argument("--nodes", type=int, default=16)
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument(
        "--losses",
        type=str,
        default="0,0.05,0.1,0.2,0.3",
        help="comma-separated loss probabilities to sweep",
    )
    chaos.add_argument("--instances", type=int, default=3)
    chaos.add_argument("--repeats", type=int, default=3)
    chaos.add_argument("--delay", type=int, default=0)
    chaos.add_argument("--dup", type=float, default=0.0)
    chaos.add_argument("--max-retries", type=int, default=None)

    econ = sub.add_parser(
        "economy", help="all-pairs traffic: incomes, spends, profits"
    )
    econ.add_argument("--nodes", type=int, default=20)
    econ.add_argument("--seed", type=int, default=0)
    econ.add_argument("--intensity", type=float, default=1.0)
    econ.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for pricing (-1 = all cores; results are "
        "bit-identical to --jobs 1)",
    )

    churn = sub.add_parser(
        "churn", help="pricing churn under mobility (extension experiment)"
    )
    churn.add_argument("--nodes", type=int, default=100)
    churn.add_argument("--epochs", type=int, default=4)
    churn.add_argument("--sigma", type=float, default=60.0)
    churn.add_argument("--seed", type=int, default=0)

    eng = sub.add_parser(
        "engine",
        help="replay a pricing workload through the caching engine",
    )
    eng.add_argument("--nodes", type=int, default=120)
    eng.add_argument("--seed", type=int, default=0)
    eng.add_argument(
        "--ops",
        type=int,
        default=400,
        help="workload length (queries + updates)",
    )
    eng.add_argument(
        "--update-frac",
        type=float,
        default=0.1,
        help="fraction of ops that re-declare a node cost",
    )
    eng.add_argument(
        "--target",
        type=int,
        default=0,
        help="query destination (-1 = random target per query)",
    )
    eng.add_argument(
        "--backend",
        choices=("auto", "python", "scipy", "numpy"),
        default="auto",
    )
    eng.add_argument(
        "--compare-naive",
        action="store_true",
        help="shadow-check every answer against from-scratch pricing "
        "and report the engine-vs-naive speedup",
    )
    eng.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="replay an existing JSON-lines trace instead of generating",
    )
    eng.add_argument(
        "--save-trace",
        metavar="PATH",
        default=None,
        help="write the generated workload as a JSON-lines trace",
    )
    eng.add_argument(
        "--serve",
        type=int,
        metavar="PORT",
        default=None,
        help="serve live telemetry (/metrics /healthz /snapshot /flight) "
        "on 127.0.0.1:PORT during the replay (0 = ephemeral port; "
        "implies metrics collection)",
    )
    eng.add_argument(
        "--serve-grace",
        type=float,
        metavar="SECONDS",
        default=0.0,
        help="keep the telemetry server up this long after the replay "
        "finishes (for a final scrape)",
    )
    eng.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        default=None,
        help="make the engine durable: write-ahead log every mutation "
        "under DIR and cut periodic checkpoints",
    )
    eng.add_argument(
        "--recover",
        action="store_true",
        help="resume from --checkpoint-dir (checkpoint + WAL replay) "
        "instead of building a fresh engine",
    )
    eng.add_argument(
        "--checkpoint-every",
        type=int,
        metavar="N",
        default=None,
        help="cut a checkpoint automatically every N logged updates",
    )
    eng.add_argument(
        "--fsync",
        choices=("always", "interval", "never"),
        default="interval",
        help="WAL durability policy (default: interval)",
    )

    rec = sub.add_parser(
        "recover",
        help="inspect (and optionally verify) an engine checkpoint dir",
    )
    rec.add_argument("dir", help="checkpoint directory to inspect")
    rec.add_argument(
        "--verify",
        action="store_true",
        help="perform a full dry-run recovery and report the outcome",
    )

    srv = sub.add_parser(
        "serve",
        help="run the concurrent HTTP pricing service",
    )
    srv.add_argument("--nodes", type=int, default=120)
    srv.add_argument("--seed", type=int, default=0)
    srv.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port for the pricing API (0 = ephemeral port)",
    )
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument(
        "--workers",
        type=int,
        default=4,
        metavar="N",
        help="pricing worker threads draining the admission queue",
    )
    srv.add_argument(
        "--queue-depth",
        type=int,
        default=64,
        metavar="N",
        help="admission queue bound; beyond it requests get HTTP 429",
    )
    srv.add_argument(
        "--deadline",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="default per-request deadline (exceeded = HTTP 504)",
    )
    srv.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for /v1/price_many batches "
        "(-1 = all cores)",
    )
    srv.add_argument(
        "--backend",
        choices=("auto", "python", "scipy", "numpy"),
        default="auto",
    )
    srv.add_argument(
        "--on-monopoly",
        choices=("raise", "inf"),
        default="inf",
        help="monopolized relays: record inf payments (default) or fail "
        "the request",
    )
    srv.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        default=None,
        help="make the engine durable: write-ahead log every mutation "
        "under DIR and cut periodic checkpoints",
    )
    srv.add_argument(
        "--recover",
        action="store_true",
        help="resume from --checkpoint-dir (checkpoint + WAL replay) "
        "instead of building a fresh engine",
    )
    srv.add_argument(
        "--checkpoint-every",
        type=int,
        metavar="N",
        default=None,
        help="cut a checkpoint automatically every N logged updates",
    )
    srv.add_argument(
        "--fsync",
        choices=("always", "interval", "never"),
        default="interval",
        help="WAL durability policy (default: interval)",
    )
    srv.add_argument(
        "--duration",
        type=float,
        metavar="SECONDS",
        default=None,
        help="serve this long then drain and exit (default: until "
        "SIGINT/SIGTERM)",
    )
    srv.add_argument(
        "--chaos",
        metavar="PLAN",
        default=None,
        help="attach a seeded fault-injection plan: inline JSON or a "
        "path to a JSON file (default: the REPRO_CHAOS env var; "
        "unset = no injection, byte-identical responses)",
    )
    srv.add_argument(
        "--degrade",
        action="store_true",
        help="enable degraded-mode serving: under queue saturation or "
        "mid-recovery, /v1/price may return the last-committed "
        "answer stamped degraded=true instead of a blind 429",
    )

    cli_client = sub.add_parser(
        "client",
        help="drive a pricing service through the resilient client",
    )
    cli_client.add_argument(
        "--url",
        required=True,
        help="base URL of a running service (e.g. http://127.0.0.1:8080)",
    )
    cli_client.add_argument("--requests", type=int, default=200)
    cli_client.add_argument("--seed", type=int, default=0)
    cli_client.add_argument(
        "--update-frac",
        type=float,
        default=0.1,
        metavar="P",
        help="fraction of operations that are cost re-declarations",
    )
    cli_client.add_argument(
        "--deadline",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="total per-call budget (attempts + backoff sleeps)",
    )
    cli_client.add_argument(
        "--max-retries",
        type=int,
        default=4,
        metavar="N",
        help="retry attempts after the first (capped exponential "
        "backoff with seeded full jitter)",
    )
    cli_client.add_argument(
        "--backoff-base", type=float, default=0.05, metavar="SECONDS"
    )
    cli_client.add_argument(
        "--backoff-cap", type=float, default=2.0, metavar="SECONDS"
    )
    cli_client.add_argument(
        "--no-breaker",
        action="store_true",
        help="disable the client-side circuit breaker",
    )
    cli_client.add_argument(
        "--verify",
        action="store_true",
        help="replay the recorded update history through a serial "
        "oracle and fail on any payment mismatch (assumes this "
        "client is the only writer)",
    )

    for p in sub.choices.values():
        _add_obs_flags(p, suppress=True)
    return parser


def _cmd_demo(args) -> int:
    from repro import generators, relay_utility, vcg_unicast_payments

    g = generators.random_biconnected_graph(args.nodes, seed=args.seed)
    source = args.source
    if source is None:
        source = args.nodes // 2
    result = vcg_unicast_payments(g, source, 0)
    print(result.describe())
    for k in result.relays:
        print(
            f"  relay {k}: declared cost {g.costs[k]:.4g}, "
            f"paid {result.payment(k):.4g}, "
            f"utility {relay_utility(result, g.costs, k):.4g}"
        )
    print(
        f"total payment {result.total_payment:.4g} for a path of cost "
        f"{result.lcp_cost:.4g} (overpayment ratio "
        f"{result.overpayment_ratio:.4g})"
    )
    return 0


def _cmd_figure(fig: str, args) -> int:
    from repro.analysis.figures import ALL_FIGURES, PAPER_N_VALUES

    builder = ALL_FIGURES[fig]
    kwargs: dict = {"seed": args.seed, "jobs": args.jobs}
    instances = args.instances
    if fig == "fig3d":
        if args.full:
            kwargs["n"] = args.nodes or 300
            kwargs["instances"] = instances or 100
        else:
            kwargs["n"] = args.nodes or 120
            kwargs["instances"] = instances or _SMALL_INSTANCES
    else:
        if args.full:
            kwargs["n_values"] = tuple(args.nodes) if args.nodes else PAPER_N_VALUES
            kwargs["instances"] = instances or 100
        else:
            kwargs["n_values"] = tuple(args.nodes) if args.nodes else _SMALL_N
            kwargs["instances"] = instances or _SMALL_INSTANCES
    log.info("figure build start", extra={"figure": fig, **kwargs})
    with REGISTRY.timed("cli.figure_time", always=True) as t:
        series = builder(**kwargs)
    log.info(
        "figure build done",
        extra={"figure": fig, "elapsed_s": round(t.elapsed, 3)},
    )
    print(series.render())
    print(f"  ({t.elapsed:.1f}s)")
    return 0


def _cmd_collusion(args) -> int:
    from repro import find_two_agent_collusion, generators, vcg_unicast_payments
    from repro.core.collusion import neighbor_collusion_payments

    g = generators.random_neighbor_safe_graph(args.nodes, seed=args.seed)
    source, target = args.nodes // 2, 0
    witness = find_two_agent_collusion(g, source, target)
    if witness is None:
        print("no collusion witness found on the deviation grid")
    else:
        print(
            f"Theorem-7 witness: node {witness.liar} declares "
            f"{witness.declared_cost:.4g}, coalition with node "
            f"{witness.beneficiary} gains {witness.gain:.4g}"
        )
    plain = vcg_unicast_payments(g, source, target)
    guarded = neighbor_collusion_payments(g, source, target)
    print(
        f"plain VCG total payment:      {plain.total_payment:.4g}\n"
        f"neighbour-scheme total:       {guarded.total_payment:.4g} "
        f"(premium {guarded.total_payment - plain.total_payment:.4g})"
    )
    return 0


def _parse_crash_spec(specs):
    """Parse repeated ``NODE:DOWN[:UP]`` CLI specs into CrashWindows."""
    from repro.distributed.faults import CrashWindow

    windows = []
    for spec in specs:
        parts = spec.split(":")
        if len(parts) not in (2, 3):
            raise SystemExit(f"bad --crash spec {spec!r}: want NODE:DOWN[:UP]")
        node, down = int(parts[0]), int(parts[1])
        up = int(parts[2]) if len(parts) == 3 else None
        windows.append(CrashWindow(node, down=down, up=up))
    return tuple(windows)


def _cmd_distributed(args) -> int:
    from repro import generators, vcg_unicast_payments
    from repro.distributed import FaultPlan, run_distributed_payments
    from repro.distributed.secure import run_secure_distributed_payments

    g = generators.random_biconnected_graph(args.nodes, seed=args.seed)
    plan = FaultPlan(
        loss=args.loss,
        max_delay=args.delay,
        duplicate=args.dup,
        crash=_parse_crash_spec(args.crash),
        seed=args.fault_seed,
    )
    faults = None if plan.is_null else plan
    if args.secure:
        result, reports = run_secure_distributed_payments(
            g, root=0, faults=faults, max_retries=args.max_retries
        )
        print(f"secure run: {len(reports)} audit findings")
    else:
        result = run_distributed_payments(
            g, root=0, faults=faults, max_retries=args.max_retries
        )
    stats = result.stats
    print(
        f"converged in {stats.rounds} rounds, "
        f"{stats.broadcasts} broadcasts, {stats.unicasts} unicasts"
    )
    if faults is not None:
        report = result.fault_report
        spt_stats = result.spt.stats
        print(
            f"fault outcome: {report.outcome} "
            f"(stage 1 {result.spt.fault_report.outcome}); "
            f"drops {spt_stats.drops + stats.drops}, "
            f"retransmissions "
            f"{spt_stats.retransmissions + stats.retransmissions}, "
            f"crashed rounds {spt_stats.crashed_rounds + stats.crashed_rounds}"
        )
        print(
            f"unresolved payment entries: {len(result.unresolved)}"
            + (f" {sorted(result.unresolved)}" if result.unresolved else "")
        )
    worst = 0.0
    skipped = 0
    for i in range(1, g.n):
        cent = vcg_unicast_payments(g, i, 0, on_monopoly="inf")
        for k in cent.relays:
            if not result.is_resolved(i, k):
                skipped += 1
                continue
            worst = max(worst, abs(result.payment(i, k) - cent.payment(k)))
    label = "resolved" if faults is not None else "all"
    print(
        f"max |distributed - centralized| payment difference "
        f"over {label} entries: {worst:.3g}"
        + (f" ({skipped} unresolved entries skipped)" if skipped else "")
    )
    return 0


def _cmd_chaos(args) -> int:
    from repro.analysis.chaos import chaos_convergence_experiment
    from repro.utils.tables import ascii_table

    losses = tuple(float(tok) for tok in args.losses.split(",") if tok.strip())
    result = chaos_convergence_experiment(
        nodes=args.nodes,
        losses=losses,
        instances=args.instances,
        repeats=args.repeats,
        seed=args.seed,
        max_delay=args.delay,
        duplicate=args.dup,
        max_retries=args.max_retries,
    )
    print(
        ascii_table(
            [
                "loss", "converged", "clean", "correct", "wrong",
                "overhead", "retx", "rounds", "false flags",
            ],
            result.rows(),
            title=result.describe(),
        )
    )
    return 0


def _cmd_economy(args) -> int:
    from repro import generators
    from repro.core.allpairs import TrafficMatrix, network_economy
    from repro.utils.tables import ascii_table

    g = generators.random_biconnected_graph(args.nodes, seed=args.seed)
    traffic = TrafficMatrix.uniform(g.n, intensity=args.intensity)
    payments = None
    if args.jobs not in (0, 1):
        # Fan the pricing out through the engine's shared-memory parallel
        # path; aggregation below stays serial and bit-identical.
        from repro import api

        payments = api.price_all_pairs(
            g,
            pairs=[(i, j) for i, j, _ in traffic.pairs()],
            jobs=args.jobs,
        )
    econ = network_economy(g, traffic, payments=payments)
    rows = [
        [e.node, round(e.packets_relayed), round(e.income, 2),
         round(e.spend, 2), round(e.profit, 2)]
        for e in sorted(econ.nodes, key=lambda e: -e.profit)
    ]
    print(
        ascii_table(
            ["node", "pkts relayed", "income", "spend", "profit"],
            rows,
            title=f"uniform all-to-all traffic on {g.n} nodes",
        )
    )
    print(
        f"overpayment ratio {econ.overpayment_ratio:.4f}; "
        f"income Gini {econ.gini_income():.4f}; "
        f"{len(econ.blocked_pairs)} blocked pairs"
    )
    return 0


def _cmd_churn(args) -> int:
    from repro.analysis.churn import mobility_churn_experiment
    from repro.wireless.geometry import PAPER_REGION
    from repro.wireless.mobility import GaussianDrift

    model = GaussianDrift(PAPER_REGION, sigma=args.sigma)
    result = mobility_churn_experiment(
        model, n=args.nodes, epochs=args.epochs, seed=args.seed
    )
    print(result.describe())
    for t in result.transitions:
        print(
            f"  epoch {t.epoch}: {t.sources_compared} sources, route churn "
            f"{t.route_churn:.1%}, repriced {t.repriced_fraction:.1%}"
        )
    return 0


def _cmd_engine(args) -> int:
    from repro import generators
    from repro.engine import (
        PricingEngine,
        generate_workload,
        load_trace,
        replay,
        save_trace,
    )

    if args.recover:
        if args.checkpoint_dir is None:
            raise SystemExit("--recover requires --checkpoint-dir")
        engine = PricingEngine.open(
            args.checkpoint_dir,
            backend=None if args.backend == "auto" else args.backend,
            fsync=args.fsync,
            checkpoint_every=args.checkpoint_every,
        )
        assert engine.last_recovery is not None
        print(engine.last_recovery.describe())
        g = engine.graph
    else:
        g = generators.random_biconnected_graph(args.nodes, seed=args.seed)
        engine = PricingEngine(
            g,
            backend=args.backend,
            on_monopoly="inf",
            checkpoint_dir=args.checkpoint_dir,
            fsync=args.fsync,
            checkpoint_every=args.checkpoint_every,
        )
    if args.trace is not None:
        ops = load_trace(args.trace)
        print(f"loaded {len(ops)} ops from {args.trace}")
    else:
        ops = generate_workload(
            g,
            n_ops=args.ops,
            update_frac=args.update_frac,
            seed=args.seed,
            target=None if args.target < 0 else args.target,
        )
    if args.save_trace is not None:
        save_trace(ops, args.save_trace)
        print(f"wrote {len(ops)} ops to {args.save_trace}")
    # Pay one-time costs (scipy import, first allocations) outside the
    # timed replay so the engine-vs-naive comparison is about pricing.
    from repro.graph.dijkstra import node_weighted_spt

    node_weighted_spt(g, 0, backend="auto")
    server = None
    metrics_were_enabled = REGISTRY.enabled
    if args.serve is not None:
        from repro.obs.server import TelemetryServer

        REGISTRY.enable()  # a scrape with nothing collected is useless
        server = TelemetryServer(
            port=args.serve,
            health=lambda: {
                "engine_version": engine.version,
                "model": engine.model,
                "nodes": engine.n,
                **engine.cache_sizes(),
            },
        ).start()
        print(
            f"telemetry serving on {server.url} "
            "(/metrics /healthz /snapshot /flight)"
        )
    log.info(
        "engine replay start",
        extra={"nodes": g.n, "ops": len(ops), "compare": args.compare_naive},
    )
    try:
        report = replay(engine, ops, compare=args.compare_naive)
    finally:
        engine.close()
        if server is not None:
            if args.serve_grace > 0:
                import time

                time.sleep(args.serve_grace)
            server.stop()
            if not metrics_were_enabled:
                REGISTRY.disable()
    print(report.describe())
    if report.mismatches:
        print(
            f"error: {report.mismatches} engine answers differ from "
            f"from-scratch pricing (e.g. {list(report.mismatch_keys)})",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_recover(args) -> int:
    from repro.engine import persist

    inventory = persist.scan(args.dir)
    print(inventory.describe())
    if not args.verify:
        return 0 if inventory.checkpoints else 1
    from repro.engine import PricingEngine

    try:
        engine = PricingEngine.open(args.dir, resume=False)
    except persist.PersistError as exc:
        print(f"verify FAILED: {exc}", file=sys.stderr)
        return 1
    assert engine.last_recovery is not None
    print("-- dry-run recovery --")
    print(engine.last_recovery.describe())
    print(
        f"recovered engine: {engine.n} nodes ({engine.model} model), "
        f"graph version {engine.version}"
    )
    return 0


def _cmd_serve(args) -> int:
    import signal
    import threading

    from repro import generators
    from repro.engine import PricingEngine
    from repro.errors import ReproError, error_code
    from repro.service import (
        ChaosPlan,
        DegradePolicy,
        PricingService,
        ServiceServer,
    )

    try:
        chaos = (
            ChaosPlan.from_spec(args.chaos)
            if args.chaos is not None
            else ChaosPlan.from_env()
        )
    except ReproError as exc:
        print(f"error [{error_code(exc)}]: {exc}", file=sys.stderr)
        return 1

    if args.recover:
        if args.checkpoint_dir is None:
            raise SystemExit("--recover requires --checkpoint-dir")
        engine = PricingEngine.open(
            args.checkpoint_dir,
            backend=None if args.backend == "auto" else args.backend,
            fsync=args.fsync,
            checkpoint_every=args.checkpoint_every,
        )
        assert engine.last_recovery is not None
        print(engine.last_recovery.describe())
    else:
        g = generators.random_biconnected_graph(args.nodes, seed=args.seed)
        engine = PricingEngine(
            g,
            backend=args.backend,
            on_monopoly=args.on_monopoly,
            checkpoint_dir=args.checkpoint_dir,
            fsync=args.fsync,
            checkpoint_every=args.checkpoint_every,
        )

    metrics_were_enabled = REGISTRY.enabled
    REGISTRY.enable()  # /metrics with nothing collected is useless
    stop = threading.Event()

    def _on_signal(signum, frame):  # noqa: ARG001 - signal API
        log.info("shutdown signal", extra={"signal": signum})
        stop.set()

    try:
        service = PricingService(
            engine,
            workers=args.workers,
            max_queue=args.queue_depth,
            deadline_s=args.deadline,
            jobs=args.jobs,
            degrade=DegradePolicy() if args.degrade else None,
        )
    except ReproError as exc:
        print(f"error [{error_code(exc)}]: {exc}", file=sys.stderr)
        if not metrics_were_enabled:
            REGISTRY.disable()
        engine.close()
        return 1
    server = ServiceServer(
        service, port=args.port, host=args.host, chaos=chaos
    ).start()
    notes = []
    if chaos is not None and not chaos.is_null:
        notes.append(f"CHAOS plan active (seed {chaos.seed})")
    if args.degrade:
        notes.append("degraded-mode serving enabled")
    suffix = ("; " + "; ".join(notes)) if notes else ""
    print(
        f"pricing service on {server.url} "
        "(POST /v1/price /v1/price_many /v1/update; "
        "GET /v1/graph /metrics /healthz /readyz); "
        f"Ctrl-C to drain and exit{suffix}",
        flush=True,
    )
    previous = {}
    for sig in (signal.SIGINT, signal.SIGTERM):
        previous[sig] = signal.signal(sig, _on_signal)
    try:
        stop.wait(timeout=args.duration)
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
        server.stop()
        service.close()  # drain: flush WAL + final checkpoint + close
        if not metrics_were_enabled:
            REGISTRY.disable()
    stats = service.stats
    print(
        f"drained after {stats.requests} requests, {stats.updates} updates "
        f"({stats.coalesced} coalesced, {stats.rejected} rejected, "
        f"{stats.timeouts} deadline-expired); final graph version "
        f"{engine.version}"
    )
    return 0


def _cmd_client(args) -> int:
    import time

    from repro.core.vcg_unicast import vcg_unicast_payments
    from repro.errors import ReproError, error_code
    from repro.service import BackoffPolicy, CircuitBreaker, PricingClient

    retry = BackoffPolicy(
        max_retries=args.max_retries,
        base_s=args.backoff_base,
        cap_s=args.backoff_cap,
    )
    breaker = None if args.no_breaker else CircuitBreaker()
    client = PricingClient(
        args.url,
        deadline_s=args.deadline,
        retry=retry,
        breaker=breaker,
        seed=args.seed,
    )
    try:
        head = client.graph()
    except ReproError as exc:
        print(f"error [{error_code(exc)}]: {exc}", file=sys.stderr)
        client.close()
        return 1
    g0, v0 = head.graph, head.graph_version
    n = g0.n
    can_write = head.model == "node" and args.update_frac > 0
    if args.update_frac > 0 and not can_write:
        print(
            "note: server runs the link model; running a read-only "
            "workload (cost updates need node ids)"
        )

    rng = np.random.default_rng(args.seed)
    records = []  # (s, t, version, payment, degraded)
    updates = []  # (version, node, value)
    failures = 0
    t0 = time.perf_counter()
    for _ in range(args.requests):
        try:
            if can_write and rng.random() < args.update_frac:
                node = int(rng.integers(0, n))
                value = float(rng.uniform(1.0, 10.0))
                resp = client.update_cost(node, value)
                updates.append((resp.graph_version, node, value))
            else:
                s = int(rng.integers(1, n))
                resp = client.price(s, 0)
                records.append(
                    (s, 0, resp.graph_version, resp.payment, resp.degraded)
                )
        except ReproError as exc:
            failures += 1
            log.warning(
                "client call failed",
                extra={"code": error_code(exc), "error": str(exc)},
            )
    elapsed = time.perf_counter() - t0
    stats = client.stats
    client.close()

    degraded = sum(1 for r in records if r[4])
    done = len(records) + len(updates)
    print(
        f"{done}/{args.requests} calls ok in {elapsed:.2f}s "
        f"({done / elapsed:.0f} req/s): {len(records)} priced "
        f"({degraded} degraded), {len(updates)} updates, "
        f"{failures} failed"
    )
    print(
        f"client: {stats.retries} retries, "
        f"{stats.transport_failures} transport failures, "
        f"{stats.server_errors} server 5xx, "
        f"{stats.short_circuits} breaker short-circuits, "
        f"{stats.idempotent_replays} idempotent replays"
    )
    if failures:
        return 1
    if not args.verify:
        return 0

    # Serial oracle replay (sole-writer assumption): rebuild the graph
    # at every version this client observed, recompute each distinct
    # (version, source, target) from scratch, demand bit-identity.
    def answer_key(p):
        return (p.path, p.lcp_cost, tuple(sorted(p.payments.items())))

    graph_at = {v0: g0}
    current = g0
    for version, node, value in sorted(set(updates)):
        current = current.with_declaration(node, value)
        graph_at[version] = current
    oracle = {}
    mismatches = unverifiable = 0
    for s, t, version, payment, _deg in records:
        if version not in graph_at:
            unverifiable += 1
            continue
        key = (version, s, t)
        if key not in oracle:
            want = vcg_unicast_payments(
                graph_at[version], s, t, method="fast", on_monopoly="inf"
            )
            oracle[key] = answer_key(want)
        if answer_key(payment) != oracle[key]:
            mismatches += 1
    print(
        f"verify: {len(oracle)} distinct (version, pair) keys, "
        f"{mismatches} mismatches, {unverifiable} unverifiable "
        "(version outside this client's history)"
    )
    return 0 if mismatches == 0 and unverifiable == 0 else 1


def _dispatch(args) -> int:
    if args.command == "demo":
        return _cmd_demo(args)
    if args.command in ("fig3a", "fig3b", "fig3c", "fig3d", "fig3e", "fig3f"):
        return _cmd_figure(args.command, args)
    if args.command == "collusion":
        return _cmd_collusion(args)
    if args.command == "distributed":
        return _cmd_distributed(args)
    if args.command == "chaos":
        return _cmd_chaos(args)
    if args.command == "economy":
        return _cmd_economy(args)
    if args.command == "churn":
        return _cmd_churn(args)
    if args.command == "engine":
        return _cmd_engine(args)
    if args.command == "recover":
        return _cmd_recover(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "client":
        return _cmd_client(args)
    raise AssertionError(f"unhandled command {args.command!r}")


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    np.set_printoptions(precision=4, suppress=True)
    obs_logging.configure(level=args.log_level)
    if args.metrics:
        REGISTRY.reset()
        REGISTRY.enable()
    if args.trace_out:
        TRACER.reset()
        TRACER.enable()
    try:
        rc = _dispatch(args)
    finally:
        if args.trace_out:
            TRACER.disable()
        if args.metrics:
            REGISTRY.disable()
    if args.trace_out:
        try:
            TRACER.export_chrome(args.trace_out)
        except OSError as exc:
            print(f"error: cannot write trace to {args.trace_out}: {exc}",
                  file=sys.stderr)
            return 1
        log.info(
            "trace written",
            extra={"path": args.trace_out, "spans": len(TRACER.records)},
        )
    if args.metrics:
        snapshot = REGISTRY.snapshot()
        print("-- metrics --")
        print(snapshot.render())
    return rc


if __name__ == "__main__":
    sys.exit(main())
