"""Session-by-session lifetime simulation.

For each session: ask every alive candidate relay whether it accepts
(given what the pricing scheme would pay it), route over the accepting
subgraph by least cost, drain batteries, move money, update policy state.
The result quantifies the throughput-vs-lifetime trade-off the paper's
introduction describes and the benches compare across policies.

Pricing schemes:

* ``"vcg"`` — the paper's mechanism: each relay on the chosen path is
  paid its VCG price (computed on the *current* alive-and-willing
  subgraph, so prices adapt as nodes die);
* ``"fixed"`` — the nuglet model: every relay earns ``fixed_price``;
* ``"none"`` — no payments (the policies must carry cooperation alone).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.accounting.sessions import Session
from repro.errors import DisconnectedError
from repro.graph.dijkstra import node_weighted_spt
from repro.graph.node_graph import NodeWeightedGraph
from repro.lifetime.battery import BatteryBank
from repro.lifetime.policies import RelayPolicy

__all__ = ["LifetimeResult", "simulate_lifetime"]


@dataclass
class LifetimeResult:
    """Aggregate outcome of one lifetime simulation."""

    sessions_attempted: int = 0
    sessions_delivered: int = 0
    sessions_blocked: int = 0  # no willing+alive route existed
    sessions_dead_source: int = 0  # the source itself was out of energy
    packets_delivered: float = 0.0
    total_energy_spent: float = 0.0
    total_payments: float = 0.0
    first_death_session: int | None = None
    deaths: int = 0
    deliveries_timeline: list[int] = field(default_factory=list)

    @property
    def delivery_ratio(self) -> float:
        """Delivered sessions as a fraction of attempts."""
        if self.sessions_attempted == 0:
            return float("nan")
        return self.sessions_delivered / self.sessions_attempted

    def describe(self) -> str:
        """One-line human-readable summary."""
        fd = (
            f"first death at session {self.first_death_session}"
            if self.first_death_session is not None
            else "no deaths"
        )
        return (
            f"{self.sessions_delivered}/{self.sessions_attempted} sessions "
            f"delivered ({self.delivery_ratio:.1%}), "
            f"{self.sessions_blocked} blocked, {self.deaths} nodes died "
            f"({fd}); energy {self.total_energy_spent:.1f}, "
            f"payments {self.total_payments:.1f}"
        )


def _willing_and_alive(
    g: NodeWeightedGraph,
    root: int,
    source: int,
    batteries: BatteryBank,
    policies: Sequence[RelayPolicy],
    offered: Callable[[int], float],
) -> np.ndarray:
    """Mask of nodes usable as relays for this session."""
    forbidden = np.zeros(g.n, dtype=bool)
    for k in range(g.n):
        if k in (root, source):
            continue
        if not batteries.alive(k):
            forbidden[k] = True
        elif not policies[k].accepts(float(g.costs[k]), offered(k)):
            forbidden[k] = True
    return forbidden


def simulate_lifetime(
    g: NodeWeightedGraph,
    workload: Iterable[Session],
    policies: Sequence[RelayPolicy],
    battery_capacity,
    root: int = 0,
    pricing: str = "vcg",
    fixed_price: float = 0.0,
) -> LifetimeResult:
    """Run the whole workload; see the module docstring for semantics.

    ``g.costs`` double as per-packet relay energy. The source also burns
    one cost-unit of its own energy per packet it originates (transmit
    energy), which is what eventually kills even non-cooperating nodes.
    """
    if pricing not in ("vcg", "fixed", "none"):
        raise ValueError(f"unknown pricing scheme {pricing!r}")
    if len(policies) != g.n:
        raise ValueError(f"need {g.n} policies, got {len(policies)}")
    batteries = BatteryBank(g.n, battery_capacity)
    result = LifetimeResult()

    for t, session in enumerate(workload):
        result.sessions_attempted += 1
        source = session.source
        if not batteries.alive(source):
            result.sessions_dead_source += 1
            result.deliveries_timeline.append(result.sessions_delivered)
            continue

        # What would each relay be offered? For acceptance we quote the
        # scheme's *guaranteed floor*: VCG pays at least the declared
        # cost, fixed pays the fixed price, none pays nothing.
        if pricing == "vcg":
            offered = lambda k: float(g.costs[k])
        elif pricing == "fixed":
            offered = lambda k: fixed_price
        else:
            offered = lambda k: 0.0

        forbidden = _willing_and_alive(
            g, root, source, batteries, policies, offered
        )

        # Route and (for VCG) price on the willing-and-alive subgraph.
        payments: Mapping[int, float]
        if pricing == "vcg":
            route, payments = _vcg_on_subgraph(g, source, root, forbidden)
            if route is None or any(
                not np.isfinite(p) for p in payments.values()
            ):
                # unroutable, or a relay is a monopoly on the willing
                # subgraph (the session cannot be priced): blocked
                result.sessions_blocked += 1
                result.deliveries_timeline.append(result.sessions_delivered)
                continue
            relays = route[1:-1]
        else:
            spt = node_weighted_spt(
                g, source, forbidden=forbidden, backend="python"
            )
            if not spt.reachable(root):
                result.sessions_blocked += 1
                result.deliveries_timeline.append(result.sessions_delivered)
                continue
            relays = spt.path_from_root(root)[1:-1]
            price = fixed_price if pricing == "fixed" else 0.0
            payments = {k: price for k in relays}

        # Deliver: drain batteries, move money, update policy state.
        packets = session.packets
        energy_for_source = 0.0
        source_cost = float(g.costs[source]) * packets
        batteries.drain(source, source_cost, time=t)
        result.total_energy_spent += source_cost
        for k in relays:
            cost = float(g.costs[k]) * packets
            pay = payments.get(k, 0.0) * packets
            batteries.drain(k, cost, time=t)
            policies[k].record_relayed(float(g.costs[k]), payments.get(k, 0.0))
            result.total_energy_spent += cost
            result.total_payments += pay
            energy_for_source += cost
        policies[source].record_served(energy_for_source / max(packets, 1))
        result.sessions_delivered += 1
        result.packets_delivered += packets
        result.deliveries_timeline.append(result.sessions_delivered)

    result.deaths = len(batteries.death_time)
    result.first_death_session = batteries.first_death()
    return result


def _vcg_on_subgraph(
    g: NodeWeightedGraph, source: int, root: int, forbidden: np.ndarray
) -> tuple[list[int] | None, dict[int, float]]:
    """Route + VCG payments where forbidden nodes are treated as absent.

    Returns ``(None, {})`` when the endpoints are disconnected on the
    willing subgraph. Node ids are preserved by masking (forbidden nodes
    keep their index but lose all edges).
    """
    from repro.core.fast_payment import fast_vcg_payments

    if forbidden.any():
        kept_edges = [
            (u, v)
            for u, v in g.edge_iter()
            if not forbidden[u] and not forbidden[v]
        ]
        g = NodeWeightedGraph(g.n, kept_edges, g.costs)
    try:
        result = fast_vcg_payments(g, source, root, on_monopoly="inf")
    except DisconnectedError:
        return None, {}
    return list(result.path), dict(result.payments)
