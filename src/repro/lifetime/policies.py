"""Relay acceptance policies.

Each node runs one policy object; before a session is routed, every
candidate relay is asked whether it *accepts* given the per-packet
payment it would receive. Policies observe outcomes through
:meth:`RelayPolicy.record_relayed` / :meth:`RelayPolicy.record_served`
so stateful heuristics (GTFT) can balance their books.

The cast:

* :class:`AlwaysRelay` — the traditional assumption the paper opens by
  rejecting ("nodes ... will always relay packets for each other");
* :class:`NeverRelay` — the rational policy when relaying is unpaid and
  costs energy (the paper's selfish student);
* :class:`PaidRelay` — the rational policy under a payment scheme:
  accept iff the payment covers the true cost. Under the paper's VCG
  mechanism the payment always does, so rational nodes always relay —
  that is the whole point of the paper;
* :class:`GtftRelay` — the Generous-Tit-For-Tat balance heuristic of
  Srinivasan et al. [1] (as summarized in II.D): accept while the energy
  spent relaying for others does not exceed what others spent relaying
  for you, plus a generosity allowance. No money changes hands.
"""

from __future__ import annotations

from typing import Protocol

__all__ = ["RelayPolicy", "AlwaysRelay", "NeverRelay", "PaidRelay", "GtftRelay"]


class RelayPolicy(Protocol):
    """Per-node acceptance policy interface."""

    def accepts(self, cost: float, payment: float) -> bool:
        """Relay one packet at true ``cost`` for ``payment``?"""
        ...

    def record_relayed(self, cost: float, payment: float) -> None:
        """This node relayed a packet (spent ``cost``, earned ``payment``)."""
        ...

    def record_served(self, energy_spent_by_others: float) -> None:
        """Others spent this much energy relaying a packet *for* this node."""
        ...


class AlwaysRelay:
    """Unconditional altruist."""

    def accepts(self, cost: float, payment: float) -> bool:
        """Decide whether to relay one packet at this cost/payment."""
        return True

    def record_relayed(self, cost: float, payment: float) -> None:
        """Record that this node relayed a packet."""
        pass

    def record_served(self, energy_spent_by_others: float) -> None:
        """Record energy others spent relaying for this node."""
        pass


class NeverRelay:
    """Pure free-rider: sends its own traffic, relays nothing."""

    def accepts(self, cost: float, payment: float) -> bool:
        """Decide whether to relay one packet at this cost/payment."""
        return False

    def record_relayed(self, cost: float, payment: float) -> None:  # pragma: no cover
        """Record that this node relayed a packet."""
        pass

    def record_served(self, energy_spent_by_others: float) -> None:
        """Record energy others spent relaying for this node."""
        pass


class PaidRelay:
    """Rational profit-seeker: relay iff the payment covers the cost.

    ``margin`` demands strictly positive profit per packet (default 0:
    break-even acceptance, the standard IR tie-break).
    """

    def __init__(self, margin: float = 0.0) -> None:
        if margin < 0:
            raise ValueError(f"margin must be non-negative, got {margin}")
        self.margin = float(margin)
        self.earned = 0.0
        self.spent = 0.0

    def accepts(self, cost: float, payment: float) -> bool:
        """Decide whether to relay one packet at this cost/payment."""
        return payment >= cost + self.margin - 1e-12

    def record_relayed(self, cost: float, payment: float) -> None:
        """Record that this node relayed a packet."""
        self.earned += payment
        self.spent += cost

    def record_served(self, energy_spent_by_others: float) -> None:
        """Record energy others spent relaying for this node."""
        pass

    @property
    def profit(self) -> float:
        """Earnings minus relaying cost so far."""
        return self.earned - self.spent


class GtftRelay:
    """Generous-Tit-For-Tat energy balancing (no payments).

    Accept while ``energy_relayed_for_others <= energy_others_spent_on_me
    + generosity``. The generosity floor is what jump-starts cooperation
    (with 0 nobody ever relays first); the paper's II.D footnote explains
    why exact balance is impossible — relays outnumber sources on every
    multi-hop path — so a generous slack is structurally required.
    """

    def __init__(self, generosity: float) -> None:
        if generosity < 0:
            raise ValueError(f"generosity must be non-negative, got {generosity}")
        self.generosity = float(generosity)
        self.given = 0.0  # energy spent relaying for others
        self.received = 0.0  # energy others spent relaying for me

    def accepts(self, cost: float, payment: float) -> bool:
        """Decide whether to relay one packet at this cost/payment."""
        return self.given + cost <= self.received + self.generosity + 1e-12

    def record_relayed(self, cost: float, payment: float) -> None:
        """Record that this node relayed a packet."""
        self.given += cost

    def record_served(self, energy_spent_by_others: float) -> None:
        """Record energy others spent relaying for this node."""
        self.received += energy_spent_by_others

    @property
    def balance(self) -> float:
        """Current account balance (ledger) / energy balance (policy)."""
        return self.received - self.given
