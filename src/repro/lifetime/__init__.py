"""Battery lifetime and cooperation dynamics (the paper's motivation).

The introduction's story: a laptop owner who accepts every relay request
"might run out of energy prematurely"; one who rejects everything
destroys the network's throughput; so "a stimulation mechanism is
required". This package makes that story quantitative:

* :mod:`~repro.lifetime.battery` — per-node energy budgets drained by
  relaying;
* :mod:`~repro.lifetime.policies` — relay acceptance policies: always
  relay (altruist), never relay (selfish, unpaid), relay-when-paid
  (the rational policy under the paper's mechanism), and the GTFT-style
  balance heuristic of Srinivasan et al. [1]/[7];
* :mod:`~repro.lifetime.simulate` — a session-by-session simulation:
  route each session over alive+willing relays, drain batteries, credit
  payments, and record throughput and deaths.

The lifetime bench (`benchmarks/bench_lifetime.py`) reproduces the
argument of the paper's Sections I-II.D: unpaid selfishness collapses
throughput, unconditional altruism burns out the central relays, and the
VCG payments sustain rational cooperation.
"""

from repro.lifetime.battery import BatteryBank
from repro.lifetime.policies import (
    AlwaysRelay,
    NeverRelay,
    PaidRelay,
    GtftRelay,
    RelayPolicy,
)
from repro.lifetime.simulate import (
    LifetimeResult,
    simulate_lifetime,
)

__all__ = [
    "BatteryBank",
    "RelayPolicy",
    "AlwaysRelay",
    "NeverRelay",
    "PaidRelay",
    "GtftRelay",
    "LifetimeResult",
    "simulate_lifetime",
]
