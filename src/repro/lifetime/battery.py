"""Per-node energy budgets.

A node's relaying cost ``c_k`` (the mechanism's type) is, physically, the
energy it burns forwarding one packet; :class:`BatteryBank` tracks the
remaining budget per node and who has died. Sending one's *own* packets
also costs energy (the node-model convention excludes it from *path*
cost because nobody reimburses you for your own traffic, but the battery
does not care who the packet belongs to).
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_node_index

__all__ = ["BatteryBank"]


class BatteryBank:
    """Remaining energy per node; nodes at 0 are dead.

    Parameters
    ----------
    capacities:
        Initial per-node energy. A scalar is broadcast to all nodes.
    """

    def __init__(self, n: int, capacities) -> None:
        if n < 1:
            raise ValueError(f"need at least one node, got {n}")
        caps = np.broadcast_to(
            np.asarray(capacities, dtype=np.float64), (n,)
        ).copy()
        if (caps < 0).any() or not np.isfinite(caps).all():
            raise ValueError("capacities must be finite and non-negative")
        self.n = int(n)
        self.remaining = caps
        self.initial = caps.copy()
        self.initial.setflags(write=False)
        self.death_time: dict[int, int] = {}

    def alive(self, node: int) -> bool:
        """True while the node has energy left."""
        return bool(self.remaining[check_node_index(node, self.n)] > 0)

    @property
    def alive_mask(self) -> np.ndarray:
        """Boolean mask of nodes with energy left."""
        return self.remaining > 0

    @property
    def alive_count(self) -> int:
        """Number of nodes with energy left."""
        return int(self.alive_mask.sum())

    def can_afford(self, node: int, energy: float) -> bool:
        """True if ``node`` has at least ``energy`` left."""
        return bool(self.remaining[node] >= energy - 1e-12)

    def drain(self, node: int, energy: float, time: int = -1) -> None:
        """Consume energy; clamps at zero and records the death time.

        ``time`` is the session index at which the drain happened (used
        for first-death statistics); pass -1 when untimed.
        """
        node = check_node_index(node, self.n)
        if energy < 0:
            raise ValueError(f"cannot drain negative energy {energy}")
        was_alive = self.remaining[node] > 0
        self.remaining[node] = max(0.0, self.remaining[node] - energy)
        if was_alive and self.remaining[node] <= 0 and node not in self.death_time:
            self.death_time[node] = int(time)

    def fraction_used(self) -> np.ndarray:
        """Per-node fraction of the initial budget consumed."""
        with np.errstate(invalid="ignore", divide="ignore"):
            used = 1.0 - self.remaining / self.initial
        return np.where(self.initial > 0, used, 0.0)

    def first_death(self) -> int | None:
        """Session index of the earliest death, or None."""
        return min(self.death_time.values()) if self.death_time else None
