"""repro — reproduction of *Truthful Low-Cost Unicast in Selfish Wireless
Networks* (Wang & Li, IPPS 2004).

A wireless ad hoc network of selfish nodes will not relay packets for
free; this library implements the paper's answer — a VCG-based,
strategyproof pricing mechanism for unicast toward an access point — and
everything around it:

* both network models (scalar node costs, Section II; link-cost vectors
  with power control, Section III.F);
* the payment scheme and the O(n log n + m) Algorithm 1 for computing
  all relay payments at once (Section III.B);
* the distributed two-stage protocol, including the secured Algorithm 2
  with cheating detection (Sections III.C-III.D);
* the collusion analysis: Theorem-7 witnesses, the neighbour-collusion
  scheme, resale-the-path detection (Sections III.E, III.H);
* the evaluation: overpayment ratio sweeps regenerating every panel of
  Figure 3 (Section III.G), plus the baselines of Section II.D.

Quickstart (the :mod:`repro.api` facade is the uniform front door)::

    from repro import api, generators

    g = generators.random_biconnected_graph(50, seed=7)
    result = api.price(g, source=13, target=0)
    print(result.describe())
    for relay in result.relays:
        print(f"  relay {relay}: cost {g.costs[relay]:.3g}, "
              f"paid {result.payment(relay):.3g}")
    assert api.check_truthful(g, source=13, target=0).ok

For a long-lived service over a changing network (cached repricing,
cost updates, node churn) see :class:`repro.engine.PricingEngine`.

See ``examples/`` for runnable scenarios and ``benchmarks/`` for the
figure reproductions.
"""

from repro.errors import (
    CheatingDetectedError,
    DisconnectedError,
    GraphError,
    InvalidGraphError,
    MechanismError,
    MonopolyError,
    ProtocolError,
    ReproError,
)
from repro import obs
from repro.graph import generators
from repro.graph.link_graph import LinkWeightedDigraph
from repro.graph.node_graph import NodeWeightedGraph
from repro.core.mechanism import UnicastPayment, relay_utility
from repro.core.vcg_unicast import vcg_unicast_payments
from repro.core.fast_payment import fast_vcg_payments
from repro.core.link_vcg import all_sources_link_payments, link_vcg_payments
from repro.core.collusion import (
    find_two_agent_collusion,
    group_collusion_payments,
    neighbor_collusion_payments,
)
from repro.core.overpayment import overpayment_summary, per_hop_breakdown
from repro.core.resale import find_resale_opportunities
from repro import api
from repro.api import check_truthful, price, price_all_pairs, price_links

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "GraphError",
    "InvalidGraphError",
    "DisconnectedError",
    "MonopolyError",
    "MechanismError",
    "ProtocolError",
    "CheatingDetectedError",
    "generators",
    "obs",
    "api",
    "price",
    "price_links",
    "price_all_pairs",
    "check_truthful",
    "NodeWeightedGraph",
    "LinkWeightedDigraph",
    "UnicastPayment",
    "relay_utility",
    "vcg_unicast_payments",
    "fast_vcg_payments",
    "link_vcg_payments",
    "all_sources_link_payments",
    "neighbor_collusion_payments",
    "group_collusion_payments",
    "find_two_agent_collusion",
    "overpayment_summary",
    "per_hop_breakdown",
    "find_resale_opportunities",
    "__version__",
]
