"""Always-on flight recorder: a fixed-size ring of recent engine events.

Metrics tell you *how much*; the flight recorder tells you *what just
happened*. It keeps the last ``capacity`` engine events — queries,
updates, cache hits/misses, fast-forwards, repairs, rebuilds, plus the
durability layer's ``checkpoint`` and ``recover`` events — as plain
tuples in a preallocated ring, so recording is allocation-light enough
to stay on even in production serving paths (one small tuple per event,
no dict, no lock). When a request dies with an unexpected error the
engine dumps the ring to a JSON file (:meth:`FlightRecorder.dump_error`),
preserving the event sequence that led up to the crash; the telemetry
server exposes the same ring live at ``/flight``.

Unlike the metrics registry the recorder has no disabled fast path to
protect: it is *meant* to be always on. ``enabled`` exists for tests
and for the overhead bench, which measures the per-record cost and
folds it into the <5% instrumentation budget.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import IO

from repro.obs.context import current_request_id

__all__ = ["FlightRecorder", "FLIGHT", "DEFAULT_CAPACITY"]

#: Default ring capacity: enough to reconstruct a few hundred requests
#: of context around a crash while staying a few tens of KiB resident.
DEFAULT_CAPACITY = 512

#: Environment variable overriding where error dumps are written
#: (default: the current working directory).
DUMP_DIR_ENV = "REPRO_FLIGHT_DIR"


class FlightRecorder:
    """Fixed-size ring buffer of ``(t, kind, request_id, version, value)``
    event tuples, oldest overwritten first.

    ``t`` is seconds since the recorder's epoch (:func:`time.monotonic`
    based, so deltas between events are meaningful), ``kind`` one of the
    engine's event names (``query``/``update``/``hit``/``miss``/
    ``fast_forward``/``repair``/``rebuild``/...), ``version`` the engine
    graph version the event saw, and ``value`` a kind-specific number
    (elapsed seconds for ``query``, fast-forward step count, ...).
    """

    __slots__ = (
        "capacity",
        "enabled",
        "dump_dir",
        "_ring",
        "_total",
        "_epoch",
        "_dump_seq",
    )

    def __init__(
        self, capacity: int = DEFAULT_CAPACITY, enabled: bool = True
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self.enabled = bool(enabled)
        #: Directory error dumps land in (``None`` = $REPRO_FLIGHT_DIR
        #: or the current working directory, resolved at dump time).
        self.dump_dir: str | None = None
        self._ring: list[tuple | None] = [None] * self.capacity
        self._total = 0
        self._epoch = time.monotonic()
        self._dump_seq = 0

    # -- recording ----------------------------------------------------------

    def record(
        self,
        kind: str,
        request_id: str | None = None,
        version: int = -1,
        value: float = 0.0,
    ) -> None:
        """Append one event; drops the oldest past capacity.

        ``request_id=None`` resolves the ambient id from
        :func:`repro.obs.context.current_request_id` so call sites never
        need to thread it.
        """
        if not self.enabled:
            return
        if request_id is None:
            request_id = current_request_id()
        i = self._total
        self._ring[i % self.capacity] = (
            time.monotonic() - self._epoch,
            kind,
            request_id,
            version,
            value,
        )
        self._total = i + 1

    def clear(self) -> None:
        """Drop every recorded event (epoch is kept)."""
        self._ring = [None] * self.capacity
        self._total = 0

    # -- reading ------------------------------------------------------------

    def __len__(self) -> int:
        return min(self._total, self.capacity)

    @property
    def recorded(self) -> int:
        """Total events ever recorded (including overwritten ones)."""
        return self._total

    @property
    def dropped(self) -> int:
        """Events lost to ring wraparound."""
        return max(0, self._total - self.capacity)

    def events(self) -> list[dict]:
        """The retained events oldest-first, as plain dicts."""
        total = self._total
        ring = list(self._ring)  # one shot; concurrent writes can't tear it
        if total <= self.capacity:
            raw = ring[:total]
        else:
            head = total % self.capacity
            raw = ring[head:] + ring[:head]
        out = []
        for ev in raw:
            if ev is None:  # a slot mid-overwrite; skip rather than crash
                continue
            t, kind, rid, version, value = ev
            out.append(
                {
                    "t": round(t, 6),
                    "kind": kind,
                    "request_id": rid,
                    "version": version,
                    "value": value,
                }
            )
        return out

    def snapshot(self) -> dict:
        """The ring plus its bookkeeping, as one JSON-ready document."""
        return {
            "capacity": self.capacity,
            "recorded": self.recorded,
            "dropped": self.dropped,
            "events": self.events(),
        }

    # -- dumping ------------------------------------------------------------

    def dump(self, dest: str | Path | IO[str], error: str | None = None) -> None:
        """Write :meth:`snapshot` (plus an optional error note) as JSON."""
        doc = self.snapshot()
        if error is not None:
            doc["error"] = error
        if hasattr(dest, "write"):
            json.dump(doc, dest, indent=2)
        else:
            with open(dest, "w", encoding="utf-8") as fh:
                json.dump(doc, fh, indent=2)

    def dump_error(self, exc: BaseException) -> str | None:
        """Best-effort crash dump; returns the written path or ``None``.

        The file lands in ``dump_dir`` (or ``$REPRO_FLIGHT_DIR``, or the
        working directory) as ``flight-<pid>-<seq>.json``. Never raises:
        a failing dump must not mask the original engine error.
        """
        base = self.dump_dir or os.environ.get(DUMP_DIR_ENV) or "."
        self._dump_seq += 1
        path = Path(base) / f"flight-{os.getpid()}-{self._dump_seq}.json"
        try:
            self.dump(path, error=f"{type(exc).__name__}: {exc}")
        except OSError:
            return None
        return str(path)


#: The process-wide recorder the engine records into.
FLIGHT = FlightRecorder()
