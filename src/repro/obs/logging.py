"""Structured logging on top of the stdlib.

``get_logger(name)`` returns an ordinary :mod:`logging` logger inside
the ``repro`` namespace; ``configure(level=..., json=...)`` installs one
stderr handler on the namespace root with either a ``key=value``
formatter or a JSON-lines formatter. Extra structured fields ride on the
stdlib ``extra=`` mechanism::

    log = get_logger("analysis.experiments")
    log.info("instance priced", extra={"n": 200, "seed": 17})
    # 2026-08-06T12:00:00 level=INFO logger=repro.analysis.experiments \
    #     msg="instance priced" n=200 seed=17

Nothing is configured at import time: until ``configure()`` runs, the
library stays silent below WARNING (stdlib last-resort behaviour) and
stdout is never touched — result output and logs cannot interleave.
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import IO

from repro.obs.context import current_request_id

__all__ = ["get_logger", "configure", "KeyValueFormatter", "JsonFormatter"]

#: Namespace root every library logger hangs under.
ROOT_NAME = "repro"

#: ``LogRecord`` attributes that are plumbing, not user-supplied fields.
_STANDARD_ATTRS = frozenset(
    (
        "args", "asctime", "created", "exc_info", "exc_text", "filename",
        "funcName", "levelname", "levelno", "lineno", "module", "msecs",
        "msg", "message", "name", "pathname", "process", "processName",
        "relativeCreated", "stack_info", "thread", "threadName",
        "taskName",
    )
)


def _extra_fields(record: logging.LogRecord) -> dict:
    fields = {
        k: v
        for k, v in record.__dict__.items()
        if k not in _STANDARD_ATTRS and not k.startswith("_")
    }
    # Correlate with the ambient request (repro.obs.context): every log
    # line emitted inside a request scope carries its request_id, same
    # as the span records — unless the caller set one explicitly.
    if "request_id" not in fields:
        rid = current_request_id()
        if rid is not None:
            fields["request_id"] = rid
    return fields


def _quote(value: object) -> str:
    text = str(value)
    if " " in text or "=" in text or '"' in text or not text:
        return '"' + text.replace('"', r"\"") + '"'
    return text


class KeyValueFormatter(logging.Formatter):
    """``ts=... level=... logger=... msg=... key=value ...`` lines."""

    def format(self, record: logging.LogRecord) -> str:
        ts = time.strftime(
            "%Y-%m-%dT%H:%M:%S", time.localtime(record.created)
        )
        parts = [
            ts,
            f"level={record.levelname}",
            f"logger={record.name}",
            f"msg={_quote(record.getMessage())}",
        ]
        parts.extend(
            f"{k}={_quote(v)}" for k, v in sorted(_extra_fields(record).items())
        )
        if record.exc_info:
            parts.append(f"exc={_quote(self.formatException(record.exc_info))}")
        return " ".join(parts)


class JsonFormatter(logging.Formatter):
    """One JSON object per line; extras become top-level keys."""

    def format(self, record: logging.LogRecord) -> str:
        doc = {
            "ts": record.created,
            "level": record.levelname,
            "logger": record.name,
            "msg": record.getMessage(),
        }
        for k, v in _extra_fields(record).items():
            try:
                json.dumps(v)
            except TypeError:
                v = str(v)
            doc[k] = v
        if record.exc_info:
            doc["exc"] = self.formatException(record.exc_info)
        return json.dumps(doc, sort_keys=True)


def get_logger(name: str = "") -> logging.Logger:
    """A stdlib logger under the ``repro`` namespace.

    ``get_logger("cli")`` and ``get_logger("repro.cli")`` both return
    the ``repro.cli`` logger; ``get_logger()`` returns the root.
    """
    if not name or name == ROOT_NAME:
        return logging.getLogger(ROOT_NAME)
    if name.startswith(ROOT_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_NAME}.{name}")


def configure(
    level: int | str = "info",
    json: bool = False,
    stream: IO[str] | None = None,
) -> logging.Logger:
    """Install one handler on the ``repro`` namespace root (idempotent).

    Re-running replaces the previous obs-installed handler, so tests and
    repeated CLI invocations never stack duplicate output. Logs go to
    ``stream`` (default ``sys.stderr``) — never stdout, which belongs to
    result output.
    """
    root = logging.getLogger(ROOT_NAME)
    if isinstance(level, str):
        level = logging.getLevelName(level.upper())
        if not isinstance(level, int):
            raise ValueError(f"unknown log level {level!r}")
    root.setLevel(level)
    root.propagate = False
    for handler in list(root.handlers):
        if getattr(handler, "_repro_obs", False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonFormatter() if json else KeyValueFormatter())
    handler._repro_obs = True
    root.addHandler(handler)
    return root
