"""Exposition of a :class:`~repro.obs.metrics.MetricsSnapshot`.

Two formats:

* **JSON** — the snapshot as one document, round-trippable via
  :func:`snapshot_from_json` (used by the benchmark harness to attach
  operation counts to ``--benchmark-json`` output);
* **Prometheus text exposition** — ``# TYPE`` lines plus samples, with
  timers rendered as summaries (``_count`` / ``_sum`` plus ``quantile``
  labels) *and* as cumulative duration histograms
  (``_bucket{le="..."}`` lines over the fixed
  :data:`~repro.obs.metrics.TIMER_BUCKETS` ladder, ``le="+Inf"``
  anchored to ``_count``) — ``histogram_quantile()`` works on the
  bucket series, so p50/p95 are visible to scrapers, not only to the
  in-process summary. :func:`parse_prometheus_text` reads the subset
  this module writes and :func:`buckets_from_prometheus` reassembles a
  timer's bucket ladder from the parsed samples, enough for the
  round-trip tests and for scrapers.
"""

from __future__ import annotations

import json
import re

from repro.obs.metrics import MetricsSnapshot, TimerStats

__all__ = [
    "snapshot_to_json",
    "snapshot_from_json",
    "to_prometheus_text",
    "parse_prometheus_text",
    "buckets_from_prometheus",
]


def snapshot_to_json(snapshot: MetricsSnapshot, indent: int | None = None) -> str:
    """Serialize a snapshot to a JSON document."""
    doc = {
        "counters": dict(snapshot.counters),
        "gauges": dict(snapshot.gauges),
        "timers": {
            k: {**v.as_dict(), "buckets": list(v.buckets)}
            for k, v in snapshot.timers.items()
        },
    }
    return json.dumps(doc, sort_keys=True, indent=indent)


def snapshot_from_json(text: str) -> MetricsSnapshot:
    """Inverse of :func:`snapshot_to_json`."""
    doc = json.loads(text)
    timers = {
        name: TimerStats(
            count=int(st["count"]),
            sum=float(st["sum"]),
            min=float(st["min"]),
            max=float(st["max"]),
            p50=float(st["p50"]),
            p95=float(st["p95"]),
            buckets=tuple(int(n) for n in st.get("buckets", ())),
            approx=bool(st.get("approx", False)),
        )
        for name, st in doc.get("timers", {}).items()
    }
    return MetricsSnapshot(
        counters=dict(doc.get("counters", {})),
        gauges=dict(doc.get("gauges", {})),
        timers=timers,
    )


_NAME_SANITIZER = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str, prefix: str) -> str:
    full = f"{prefix}_{name}" if prefix else name
    full = _NAME_SANITIZER.sub("_", full)
    if full and full[0].isdigit():
        full = "_" + full
    return full


def to_prometheus_text(snapshot: MetricsSnapshot, prefix: str = "repro") -> str:
    """Render the snapshot in the Prometheus text exposition format."""
    lines: list[str] = []
    for name in sorted(snapshot.counters):
        pname = _prom_name(name, prefix)
        lines.append(f"# TYPE {pname} counter")
        lines.append(f"{pname} {_num(snapshot.counters[name])}")
    for name in sorted(snapshot.gauges):
        pname = _prom_name(name, prefix)
        lines.append(f"# TYPE {pname} gauge")
        lines.append(f"{pname} {_num(snapshot.gauges[name])}")
    for name in sorted(snapshot.timers):
        st = snapshot.timers[name]
        pname = _prom_name(name, prefix)
        lines.append(f"# TYPE {pname} summary")
        lines.append(f'{pname}{{quantile="0.5"}} {_num(st.p50)}')
        lines.append(f'{pname}{{quantile="0.95"}} {_num(st.p95)}')
        lines.append(f"{pname}_count {_num(st.count)}")
        lines.append(f"{pname}_sum {_num(st.sum)}")
        lines.append(f"{pname}_min {_num(st.min)}")
        lines.append(f"{pname}_max {_num(st.max)}")
        # Cumulative duration histogram over the fixed bucket ladder
        # (its own `<name>_bucket` family, so the summary above stays a
        # valid summary; `le` labels are what histogram_quantile needs).
        for bound, cum in st.cumulative_buckets():
            le = "+Inf" if bound == float("inf") else _num(bound)
            lines.append(f'{pname}_bucket{{le="{le}"}} {_num(cum)}')
    return "\n".join(lines) + "\n"


def _num(value) -> str:
    value = float(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)$"
)


def parse_prometheus_text(text: str) -> dict[str, float]:
    """Parse the subset emitted by :func:`to_prometheus_text`.

    Returns a flat ``name -> value`` mapping; labelled samples key as
    ``name{labels}``. Comment and blank lines are skipped.
    """
    out: dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        m = _SAMPLE.match(line)
        if m is None:
            raise ValueError(f"unparseable exposition line: {line!r}")
        key = m.group("name")
        if m.group("labels"):
            key = f'{key}{{{m.group("labels")}}}'
        out[key] = float(m.group("value"))
    return out


_LE_LABEL = re.compile(r'^(?P<name>.+)_bucket\{le="(?P<le>[^"]+)"\}$')


def buckets_from_prometheus(
    parsed: dict[str, float], name: str
) -> list[tuple[float, int]]:
    """Reassemble one timer's cumulative bucket ladder from parsed text.

    ``parsed`` is the output of :func:`parse_prometheus_text`; ``name``
    the exposed metric name (e.g. ``"repro_op_time"``). Returns
    ``(le_bound, cumulative_count)`` pairs sorted by bound, the inverse
    of what :func:`to_prometheus_text` wrote (``le="+Inf"`` parses to
    ``inf``) — the histogram side of the exposition round-trip.
    """
    out: list[tuple[float, int]] = []
    for key, value in parsed.items():
        m = _LE_LABEL.match(key)
        if m is None or m.group("name") != name:
            continue
        out.append((float(m.group("le")), int(value)))
    out.sort(key=lambda pair: pair[0])
    return out
