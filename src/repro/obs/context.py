"""Request-scoped correlation context.

A *request id* names one pricing request end-to-end: the span tree it
opens, the structured log lines it emits, and the flight-recorder
events it leaves behind all carry the same id, so one slow ``price()``
call can be correlated with the cache events that caused it.

Ids live in a :class:`contextvars.ContextVar`, so they follow the
request through nested calls (and into threads started with a copied
context) without any parameter threading. The facade entry points
(:mod:`repro.api`) and :class:`~repro.engine.PricingEngine` mint one id
per request via :class:`request_scope`; everything below them —
:meth:`Tracer._pop <repro.obs.tracing.Tracer>` span records, the log
formatters in :mod:`repro.obs.logging`, the flight recorder — reads
:func:`current_request_id` at record time.

A nested scope *joins* the active request by default instead of minting
a fresh id (``api.price_all_pairs`` delegating to
``PricingEngine.price_many`` is one request, not two), so ids stay
stable across internal delegation.
"""

from __future__ import annotations

import itertools
import os
from contextvars import ContextVar

__all__ = ["mint_request_id", "current_request_id", "request_scope"]

_REQUEST_ID: ContextVar[str | None] = ContextVar(
    "repro_request_id", default=None
)

#: Monotonic per-process sequence backing minted ids (GIL-atomic).
_SEQ = itertools.count(1)


def mint_request_id() -> str:
    """A fresh process-unique request id (``r<pid>-<seq>``)."""
    return f"r{os.getpid():x}-{next(_SEQ):06x}"


def current_request_id() -> str | None:
    """The id of the request currently in scope, or ``None``."""
    return _REQUEST_ID.get()


class request_scope:
    """Context manager establishing a request id for its body.

    ``with request_scope() as rid:`` joins the already-active request if
    one exists (nested scopes share the outer id) and mints a fresh id
    otherwise. Pass ``request_id=`` to force a specific id, or
    ``fresh=True`` to mint even inside an active scope. ``__enter__``
    returns the active id.
    """

    __slots__ = ("_request_id", "_fresh", "_token", "rid")

    def __init__(
        self, request_id: str | None = None, fresh: bool = False
    ) -> None:
        self._request_id = request_id
        self._fresh = fresh
        self._token = None
        self.rid: str | None = None

    def __enter__(self) -> str:
        rid = self._request_id
        if rid is None:
            rid = None if self._fresh else _REQUEST_ID.get()
            if rid is None:
                rid = mint_request_id()
        self.rid = rid
        self._token = _REQUEST_ID.set(rid)
        return rid

    def __exit__(self, *exc) -> None:
        if self._token is not None:
            _REQUEST_ID.reset(self._token)
            self._token = None
