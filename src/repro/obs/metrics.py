"""Process-wide metrics: counters, gauges, and timer histograms.

The registry is **disabled by default** and every recording call is a
no-op behind a single attribute check, so instrumented hot paths pay
~zero cost unless someone opts in (the CLI ``--metrics`` flag, the
benchmark harness, or a test). The pattern instrumented code follows:

* loop-level counts are accumulated in plain local ints and flushed once
  per call, guarded by ``if REGISTRY.enabled:`` — the loop itself never
  calls into the registry;
* timings use ``with REGISTRY.timed("name"):`` which returns a shared
  null context manager while disabled (no ``perf_counter`` call at all).

Snapshots are plain data (:class:`MetricsSnapshot`), decoupled from the
live registry; exporters live in :mod:`repro.obs.export`.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left
from dataclasses import dataclass
from typing import Iterator, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Timer",
    "TimerStats",
    "MetricsRegistry",
    "MetricsSnapshot",
    "REGISTRY",
    "TIMER_BUCKETS",
    "timed",
    "enable",
    "disable",
]

#: Ring-buffer capacity for timer samples backing the percentiles. Past
#: this many observations the oldest samples are overwritten (a recent
#: window beats a biased forever-prefix for long-running processes).
TIMER_SAMPLE_CAP = 4096

#: Fixed histogram bucket upper bounds (seconds, ``le``-inclusive) every
#: timer counts into, spanning 100 µs .. 10 s in a 1-2.5-5 ladder; an
#: implicit ``+Inf`` overflow bucket follows. Unlike the sampled
#: percentiles, bucket counts are exact and merge exactly across
#: worker-process snapshots.
TIMER_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int | float = 1) -> None:
        """Add ``n`` (must be >= 0) to the counter."""
        if n < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (n={n})")
        self.value += n


class Gauge:
    """A point-in-time value that can move both ways."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, n: float = 1.0) -> None:
        self.value += n

    def dec(self, n: float = 1.0) -> None:
        self.value -= n


@dataclass(frozen=True)
class TimerStats:
    """Summary of one timer's observations.

    ``buckets`` holds per-bucket (non-cumulative) observation counts
    aligned with :data:`TIMER_BUCKETS` plus one overflow slot.
    ``approx`` marks percentiles that are estimates rather than exact
    sample statistics — :meth:`Timer.merge_stats` injects a merged-in
    snapshot's p50/p95 as representative samples, so every fan-in
    (parallel sweeps, worker snapshots) taints p50/p95. Counts, sums,
    extrema and bucket counts always merge exactly.
    """

    count: int
    sum: float
    min: float
    max: float
    p50: float
    p95: float
    buckets: tuple[int, ...] = ()
    approx: bool = False

    def as_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "p50": self.p50,
            "p95": self.p95,
            "approx": self.approx,
        }

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(le_bound, cumulative_count)`` pairs, Prometheus-style.

        The terminal ``(inf, count)`` entry anchors the histogram to the
        timer's total observation count (the Prometheus ``+Inf`` bucket
        invariant), even if a bucketless legacy snapshot was merged in.
        """
        out: list[tuple[float, int]] = []
        running = 0
        for bound, n in zip(TIMER_BUCKETS, self.buckets):
            running += n
            out.append((bound, running))
        out.append((float("inf"), self.count))
        return out


def _percentile(ordered: list[float], q: float) -> float:
    """Nearest-rank percentile over a pre-sorted sample list."""
    if not ordered:
        return 0.0
    idx = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[idx]


class Timer:
    """A duration histogram: count/sum/min/max, fixed duration buckets
    (:data:`TIMER_BUCKETS`), and sampled percentiles."""

    __slots__ = (
        "name", "count", "sum", "min", "max", "approx",
        "_samples", "_next", "_bucket_counts",
    )

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = 0.0
        #: True once estimated percentiles were merged in (fan-in).
        self.approx = False
        self._samples: list[float] = []
        self._next = 0  # ring-buffer write head once the cap is hit
        self._bucket_counts = [0] * (len(TIMER_BUCKETS) + 1)

    def observe(self, seconds: float) -> None:
        """Record one duration in seconds."""
        seconds = float(seconds)
        self.count += 1
        self.sum += seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds
        self._bucket_counts[bisect_left(TIMER_BUCKETS, seconds)] += 1
        self._sample(seconds)

    def _sample(self, seconds: float) -> None:
        if len(self._samples) < TIMER_SAMPLE_CAP:
            self._samples.append(seconds)
        else:
            self._samples[self._next] = seconds
            self._next = (self._next + 1) % TIMER_SAMPLE_CAP

    def merge_stats(self, st: "TimerStats") -> None:
        """Fold another registry's :class:`TimerStats` into this timer.

        Used when worker-process snapshots are merged back into the
        parent registry. ``count``/``sum``/``min``/``max`` and the
        duration buckets merge exactly; the incoming ``p50``/``p95`` are
        inserted as representative samples, so merged percentiles are
        approximate — the timer is marked ``approx`` and every
        subsequent :class:`TimerStats` carries the flag.
        """
        if st.count <= 0:
            return
        self.count += st.count
        self.sum += st.sum
        if st.min < self.min:
            self.min = st.min
        if st.max > self.max:
            self.max = st.max
        if len(st.buckets) == len(self._bucket_counts):
            for i, n in enumerate(st.buckets):
                self._bucket_counts[i] += n
        self.approx = True
        self._sample(st.p50)
        self._sample(st.p95)

    def stats(self) -> TimerStats:
        ordered = sorted(self._samples)
        return TimerStats(
            count=self.count,
            sum=self.sum,
            min=self.min if self.count else 0.0,
            max=self.max,
            p50=_percentile(ordered, 0.50),
            p95=_percentile(ordered, 0.95),
            buckets=tuple(self._bucket_counts),
            approx=self.approx,
        )


class _NullTimed:
    """Shared no-op context manager handed out while metrics are off."""

    __slots__ = ()

    #: Elapsed seconds; always 0.0 on the null instance so callers that
    #: read ``.elapsed`` never need to branch on the enabled state.
    elapsed = 0.0

    def __enter__(self) -> "_NullTimed":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_TIMED = _NullTimed()


class _Timed:
    """Measuring context manager; records into ``timer`` if given."""

    __slots__ = ("_timer", "_start", "elapsed")

    def __init__(self, timer: Timer | None) -> None:
        self._timer = timer
        self.elapsed = 0.0

    def __enter__(self) -> "_Timed":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._start
        if self._timer is not None:
            self._timer.observe(self.elapsed)


@dataclass(frozen=True)
class MetricsSnapshot:
    """Immutable view of a registry at one point in time."""

    counters: Mapping[str, float]
    gauges: Mapping[str, float]
    timers: Mapping[str, TimerStats]

    def __bool__(self) -> bool:
        return bool(self.counters or self.gauges or self.timers)

    def flat(self) -> dict[str, float]:
        """One flat ``name -> number`` mapping (timers expand to
        ``name.count``, ``name.sum``, ... sub-keys)."""
        out: dict[str, float] = dict(self.counters)
        out.update(self.gauges)
        for name, st in self.timers.items():
            for k, v in st.as_dict().items():
                out[f"{name}.{k}"] = v
        return out

    def render(self) -> str:
        """Human-readable listing, one metric per line, sorted by name."""
        lines = []
        for name in sorted(self.counters):
            lines.append(f"{name} {self.counters[name]:g}")
        for name in sorted(self.gauges):
            lines.append(f"{name} {self.gauges[name]:g}")
        for name in sorted(self.timers):
            st = self.timers[name]
            lines.append(
                f"{name} count={st.count} sum={st.sum:.6f}s "
                f"min={st.min:.6f}s max={st.max:.6f}s "
                f"p50={st.p50:.6f}s p95={st.p95:.6f}s"
                + (" (approx percentiles)" if st.approx else "")
            )
        return "\n".join(lines)


class MetricsRegistry:
    """Named counters/gauges/timers behind one enabled/disabled switch."""

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = bool(enabled)
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._timers: dict[str, Timer] = {}

    # -- lifecycle ----------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop every metric (the enabled flag is left as-is)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._timers.clear()

    # -- instrument access (creates lazily) ---------------------------------

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            with self._lock:
                c = self._counters.setdefault(name, Counter(name))
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            with self._lock:
                g = self._gauges.setdefault(name, Gauge(name))
        return g

    def timer(self, name: str) -> Timer:
        t = self._timers.get(name)
        if t is None:
            with self._lock:
                t = self._timers.setdefault(name, Timer(name))
        return t

    # -- recording shortcuts ------------------------------------------------

    def add(self, name: str, n: int | float = 1) -> None:
        """Increment counter ``name`` by ``n``; no-op while disabled."""
        if self.enabled:
            self.counter(name).inc(n)

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name``; no-op while disabled."""
        if self.enabled:
            self.gauge(name).set(value)

    def observe(self, name: str, seconds: float) -> None:
        """Record a duration on timer ``name``; no-op while disabled."""
        if self.enabled:
            self.timer(name).observe(seconds)

    def timed(self, name: str, always: bool = False):
        """Context manager timing its body into timer ``name``.

        Disabled registry: returns a shared null manager (zero cost)
        unless ``always=True``, which measures regardless — so callers
        that *display* the elapsed time (the CLI) still work with
        metrics off — but records only while enabled.
        """
        if self.enabled:
            return _Timed(self.timer(name))
        return _Timed(None) if always else _NULL_TIMED

    # -- merging ------------------------------------------------------------

    def merge_snapshot(self, snapshot: MetricsSnapshot) -> None:
        """Fold another registry's snapshot into this one.

        This is the fan-in half of parallel sweeps: each worker process
        records into its own (forked) registry, snapshots it, and the
        parent merges the snapshots so observability survives the
        fan-out. Counters add, gauges take the incoming value, timers
        merge via :meth:`Timer.merge_stats`. The merge runs regardless
        of the ``enabled`` flag — whoever collected the snapshot already
        made the decision to observe.
        """
        for name, value in snapshot.counters.items():
            self.counter(name).inc(value)
        for name, value in snapshot.gauges.items():
            self.gauge(name).set(value)
        for name, st in snapshot.timers.items():
            self.timer(name).merge_stats(st)

    # -- reading ------------------------------------------------------------

    def snapshot(self) -> MetricsSnapshot:
        with self._lock:
            return MetricsSnapshot(
                counters={k: v.value for k, v in self._counters.items()},
                gauges={k: v.value for k, v in self._gauges.items()},
                timers={k: v.stats() for k, v in self._timers.items()},
            )

    def names(self) -> Iterator[str]:
        yield from self._counters
        yield from self._gauges
        yield from self._timers


#: The process-wide registry every instrumented module records into.
REGISTRY = MetricsRegistry(enabled=False)


def timed(name: str, always: bool = False):
    """Module-level shortcut for ``REGISTRY.timed``."""
    return REGISTRY.timed(name, always=always)


def enable() -> None:
    """Turn on the process-wide registry."""
    REGISTRY.enable()


def disable() -> None:
    """Turn off the process-wide registry."""
    REGISTRY.disable()
