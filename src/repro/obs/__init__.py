"""repro.obs — metrics, tracing, and structured logging.

The observability layer the rest of the library records into:

* :mod:`repro.obs.metrics` — process-wide counters/gauges/timers behind
  a disabled-by-default registry with a no-op fast path;
* :mod:`repro.obs.tracing` — nestable spans + Chrome trace-event export;
* :mod:`repro.obs.logging` — stdlib loggers with ``key=value`` or JSON
  formatting, configured once via :func:`configure`;
* :mod:`repro.obs.export` — JSON / Prometheus exposition of snapshots;
* :mod:`repro.obs.context` — request-scoped correlation ids threaded
  automatically into spans, log lines, and flight events;
* :mod:`repro.obs.flight` — always-on fixed-size ring of recent engine
  events, dumped to JSON on unexpected engine errors;
* :mod:`repro.obs.server` — stdlib HTTP telemetry server exposing
  ``/metrics``, ``/healthz``, ``/snapshot`` and ``/flight`` live.

Everything except the flight recorder is off until opted into (CLI
``--metrics`` / ``--trace-out`` / ``--log-level`` / ``--serve``, the
benchmark harness, or an explicit :func:`enable`), so instrumented hot
paths pay ~zero cost by default.
"""

from __future__ import annotations

from repro.obs import export
from repro.obs.context import current_request_id, request_scope
from repro.obs.flight import FLIGHT, FlightRecorder
from repro.obs.logging import configure, get_logger
from repro.obs.metrics import (
    REGISTRY,
    MetricsRegistry,
    MetricsSnapshot,
    timed,
)
from repro.obs.tracing import TRACER, Tracer, span

__all__ = [
    "REGISTRY",
    "TRACER",
    "FLIGHT",
    "FlightRecorder",
    "MetricsRegistry",
    "MetricsSnapshot",
    "Tracer",
    "TelemetryServer",
    "configure",
    "get_logger",
    "current_request_id",
    "request_scope",
    "timed",
    "span",
    "export",
    "enable",
    "disable",
]


def __getattr__(name: str):
    # TelemetryServer lazily, so importing repro.obs never drags in the
    # http.server machinery on hot paths that only need the registry.
    if name == "TelemetryServer":
        from repro.obs.server import TelemetryServer

        return TelemetryServer
    raise AttributeError(f"module 'repro.obs' has no attribute {name!r}")


def enable(metrics: bool = True, tracing: bool = False) -> None:
    """Turn on the process-wide collectors (registry and/or tracer)."""
    if metrics:
        REGISTRY.enable()
    if tracing:
        TRACER.enable()


def disable() -> None:
    """Turn off both process-wide collectors."""
    REGISTRY.disable()
    TRACER.disable()
