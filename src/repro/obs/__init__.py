"""repro.obs — metrics, tracing, and structured logging.

The observability layer the rest of the library records into:

* :mod:`repro.obs.metrics` — process-wide counters/gauges/timers behind
  a disabled-by-default registry with a no-op fast path;
* :mod:`repro.obs.tracing` — nestable spans + Chrome trace-event export;
* :mod:`repro.obs.logging` — stdlib loggers with ``key=value`` or JSON
  formatting, configured once via :func:`configure`;
* :mod:`repro.obs.export` — JSON / Prometheus exposition of snapshots.

Everything is off until opted into (CLI ``--metrics`` / ``--trace-out``
/ ``--log-level``, the benchmark harness, or an explicit
:func:`enable`), so instrumented hot paths pay ~zero cost by default.
"""

from __future__ import annotations

from repro.obs import export
from repro.obs.logging import configure, get_logger
from repro.obs.metrics import (
    REGISTRY,
    MetricsRegistry,
    MetricsSnapshot,
    timed,
)
from repro.obs.tracing import TRACER, Tracer, span

__all__ = [
    "REGISTRY",
    "TRACER",
    "MetricsRegistry",
    "MetricsSnapshot",
    "Tracer",
    "configure",
    "get_logger",
    "timed",
    "span",
    "export",
    "enable",
    "disable",
]


def enable(metrics: bool = True, tracing: bool = False) -> None:
    """Turn on the process-wide collectors (registry and/or tracer)."""
    if metrics:
        REGISTRY.enable()
    if tracing:
        TRACER.enable()


def disable() -> None:
    """Turn off both process-wide collectors."""
    REGISTRY.disable()
    TRACER.disable()
