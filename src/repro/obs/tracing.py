"""Nestable spans with a Chrome trace-event JSON exporter.

A span marks one timed region (``with TRACER.span("phase", n=30):``).
Spans nest: the tracer keeps a per-thread stack, records each finished
span's depth and parent, and the exporter emits Chrome ``"X"`` (complete)
events loadable in ``chrome://tracing`` / Perfetto.

Like the metrics registry, the tracer is disabled by default and
``span()`` then returns a shared null context manager, so instrumented
code pays one attribute check and nothing else.

Spans finished inside a request scope
(:class:`repro.obs.context.request_scope`) automatically carry the
ambient ``request_id`` attribute, so every span of one ``price()``
request correlates in the exported trace without any call site passing
the id around.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import IO, Mapping

from repro.obs.context import current_request_id

__all__ = ["SpanRecord", "Tracer", "TRACER", "span", "enable", "disable"]


@dataclass(frozen=True)
class SpanRecord:
    """One finished span (times in seconds relative to the tracer epoch)."""

    name: str
    start: float
    duration: float
    depth: int
    parent: str | None
    thread_id: int
    attrs: Mapping[str, object] = field(default_factory=dict)


class _NullSpan:
    """Shared no-op span handed out while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None

    def set_attr(self, key: str, value) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _Span:
    """A live span; finishes (and records itself) on ``__exit__``."""

    __slots__ = ("_tracer", "name", "attrs", "_start")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs

    def set_attr(self, key: str, value) -> None:
        self.attrs[key] = value

    def __enter__(self) -> "_Span":
        self._tracer._push(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        end = time.perf_counter()
        self._tracer._pop(self, self._start, end)


class Tracer:
    """Collects :class:`SpanRecord` instances; exports Chrome JSON."""

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = bool(enabled)
        self._lock = threading.Lock()
        self._epoch = time.perf_counter()
        self._stacks = threading.local()
        self.records: list[SpanRecord] = []

    # -- lifecycle ----------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        with self._lock:
            self.records.clear()
        self._epoch = time.perf_counter()
        self._stacks = threading.local()

    # -- span API -----------------------------------------------------------

    def span(self, name: str, **attrs):
        """Open a nestable span; null (free) while the tracer is off."""
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name, attrs)

    def _stack(self) -> list:
        stack = getattr(self._stacks, "stack", None)
        if stack is None:
            stack = []
            self._stacks.stack = stack
        return stack

    def _push(self, span: "_Span") -> None:
        self._stack().append(span)

    def _pop(self, span: "_Span", start: float, end: float) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        depth = len(stack)
        parent = stack[-1].name if stack else None
        rid = current_request_id()
        if rid is not None:
            span.attrs.setdefault("request_id", rid)
        record = SpanRecord(
            name=span.name,
            start=start - self._epoch,
            duration=end - start,
            depth=depth,
            parent=parent,
            thread_id=threading.get_ident(),
            attrs=dict(span.attrs),
        )
        with self._lock:
            self.records.append(record)

    # -- export -------------------------------------------------------------

    def chrome_trace_events(self) -> list[dict]:
        """The records as Chrome trace-event dicts (``ph: "X"``, µs)."""
        with self._lock:
            records = list(self.records)
        events = []
        for r in records:
            args = {k: _jsonable(v) for k, v in r.attrs.items()}
            if r.parent is not None:
                args["parent"] = r.parent
            events.append(
                {
                    "name": r.name,
                    "ph": "X",
                    "ts": r.start * 1e6,
                    "dur": r.duration * 1e6,
                    "pid": os.getpid(),
                    "tid": r.thread_id % 2**31,
                    "args": args,
                }
            )
        return events

    def export_chrome(self, dest: str | IO[str]) -> None:
        """Write a ``chrome://tracing``-loadable JSON file/stream."""
        doc = {
            "traceEvents": self.chrome_trace_events(),
            "displayTimeUnit": "ms",
        }
        if hasattr(dest, "write"):
            json.dump(doc, dest)
        else:
            with open(dest, "w", encoding="utf-8") as fh:
                json.dump(doc, fh)


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


#: The process-wide tracer instrumented modules record into.
TRACER = Tracer(enabled=False)


def span(name: str, **attrs):
    """Module-level shortcut for ``TRACER.span``."""
    return TRACER.span(name, **attrs)


def enable() -> None:
    """Turn on the process-wide tracer."""
    TRACER.enable()


def disable() -> None:
    """Turn off the process-wide tracer."""
    TRACER.disable()
