"""Live telemetry over HTTP: ``/metrics``, ``/healthz``, ``/snapshot``,
``/flight``.

A :class:`TelemetryServer` wraps a stdlib
:class:`~http.server.ThreadingHTTPServer` on a daemon thread, so a
running engine (or a long sweep) can be inspected *while it works* —
no new dependencies, no framework. Endpoints:

``/metrics``
    The process-wide registry in Prometheus text exposition format
    (:func:`repro.obs.export.to_prometheus_text`): counters, gauges,
    timer summaries and duration-histogram buckets.
``/healthz``
    Liveness JSON: status, uptime, whether collectors are enabled,
    plus whatever the optional ``health`` callable contributes (the
    CLI wires in the engine's version and model).
``/snapshot``
    The full :class:`~repro.obs.metrics.MetricsSnapshot` as JSON
    (:func:`repro.obs.export.snapshot_to_json` — round-trippable).
``/flight``
    The flight recorder's ring as JSON
    (:meth:`repro.obs.flight.FlightRecorder.snapshot`): the most
    recent engine events, oldest first.

Usage — around any workload, not just the CLI::

    from repro.obs import enable
    from repro.obs.server import TelemetryServer

    enable(metrics=True)
    with TelemetryServer(port=9100) as srv:
        print(f"telemetry on {srv.url}")
        run_big_sweep()           # scrape /metrics while it runs

``port=0`` binds an ephemeral port (read it back from ``srv.port``),
which is what the tests use. The server binds ``127.0.0.1`` by
default — this is an operator inspection port, not a public API.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Mapping

from repro.obs import logging as obs_logging
from repro.obs.export import snapshot_to_json, to_prometheus_text
from repro.obs.flight import FLIGHT, FlightRecorder
from repro.obs.metrics import REGISTRY, MetricsRegistry
from repro.obs.tracing import TRACER

__all__ = ["TelemetryServer"]

log = obs_logging.get_logger("obs.server")

#: The routes ``/`` advertises (path -> one-line description).
ENDPOINTS = {
    "/metrics": "Prometheus text exposition of the metrics registry",
    "/healthz": "liveness + uptime JSON",
    "/snapshot": "full metrics snapshot as JSON",
    "/flight": "flight-recorder ring (recent engine events) as JSON",
}


class TelemetryServer:
    """Background HTTP server exposing the process's telemetry.

    Parameters
    ----------
    port, host:
        Bind address; ``port=0`` picks an ephemeral port.
    registry, recorder:
        The collectors to expose (default: the process-wide
        :data:`~repro.obs.metrics.REGISTRY` and
        :data:`~repro.obs.flight.FLIGHT`).
    health:
        Optional zero-argument callable returning extra JSON-ready
        fields merged into the ``/healthz`` document on every request.
    prefix:
        Metric-name prefix for the Prometheus exposition.
    """

    def __init__(
        self,
        port: int = 0,
        host: str = "127.0.0.1",
        registry: MetricsRegistry | None = None,
        recorder: FlightRecorder | None = None,
        health: Callable[[], Mapping] | None = None,
        prefix: str = "repro",
    ) -> None:
        self._host = host
        self._requested_port = int(port)
        self.registry = registry if registry is not None else REGISTRY
        self.recorder = recorder if recorder is not None else FLIGHT
        self.health = health
        self.prefix = prefix
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None
        self._started_at = 0.0

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "TelemetryServer":
        """Bind and serve on a daemon thread; returns ``self``."""
        if self._httpd is not None:
            raise RuntimeError("TelemetryServer is already running")
        handler = _make_handler(self)
        self._httpd = ThreadingHTTPServer(
            (self._host, self._requested_port), handler
        )
        self._started_at = time.monotonic()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-telemetry",
            daemon=True,
        )
        self._thread.start()
        log.info(
            "telemetry server started",
            extra={"host": self._host, "port": self.port},
        )
        return self

    def stop(self) -> None:
        """Shut the server down and join its thread (idempotent)."""
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "TelemetryServer":
        if self._httpd is None:
            self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- introspection ------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._httpd is not None

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the real one)."""
        if self._httpd is None:
            return self._requested_port
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self._host}:{self.port}"

    def uptime(self) -> float:
        """Seconds since :meth:`start` (0.0 before it)."""
        if self._httpd is None:
            return 0.0
        return time.monotonic() - self._started_at

    # -- endpoint payloads (also callable directly, e.g. from tests) --------

    def healthz(self) -> dict:
        doc = {
            "status": "ok",
            "uptime_s": round(self.uptime(), 3),
            "metrics_enabled": self.registry.enabled,
            "tracing_enabled": TRACER.enabled,
            "flight_events": len(self.recorder),
        }
        if self.health is not None:
            doc.update(self.health())
        return doc


def _make_handler(server: TelemetryServer) -> type:
    """A request-handler class closed over one :class:`TelemetryServer`."""

    class Handler(BaseHTTPRequestHandler):
        # Silenced default stderr chatter; requests log at DEBUG instead.
        def log_message(self, fmt, *args):  # noqa: N802 (stdlib name)
            log.debug("telemetry request", extra={"line": fmt % args})

        def _send(
            self, body: str, content_type: str, status: int = 200
        ) -> None:
            payload = body.encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)

        def _send_json(self, doc, status: int = 200) -> None:
            self._send(
                json.dumps(doc, indent=2) + "\n",
                "application/json; charset=utf-8",
                status,
            )

        def do_GET(self) -> None:  # noqa: N802 (stdlib name)
            path = self.path.split("?", 1)[0].rstrip("/") or "/"
            try:
                if path == "/metrics":
                    self._send(
                        to_prometheus_text(
                            server.registry.snapshot(), prefix=server.prefix
                        ),
                        "text/plain; version=0.0.4; charset=utf-8",
                    )
                elif path == "/healthz":
                    self._send_json(server.healthz())
                elif path == "/snapshot":
                    self._send(
                        snapshot_to_json(server.registry.snapshot(), indent=2)
                        + "\n",
                        "application/json; charset=utf-8",
                    )
                elif path == "/flight":
                    self._send_json(server.recorder.snapshot())
                elif path == "/":
                    self._send_json({"endpoints": ENDPOINTS})
                else:
                    self._send_json(
                        {"error": f"unknown path {path!r}",
                         "endpoints": sorted(ENDPOINTS)},
                        status=404,
                    )
            except BrokenPipeError:  # client went away mid-response
                pass
            except Exception as exc:  # surface handler bugs to the client
                log.warning(
                    "telemetry handler error",
                    extra={"path": path, "error": repr(exc)},
                )
                try:
                    self._send_json({"error": repr(exc)}, status=500)
                except OSError:
                    pass

    return Handler
