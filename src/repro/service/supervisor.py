"""Process supervision for the pricing server: probe, kill, recover.

:class:`Supervisor` runs ``python -m repro.cli serve ...`` (or any
argv that exposes ``/healthz``) as a **child process** and keeps it
alive:

* a monitor thread polls the child — ``proc.poll()`` catches crashes
  (including ``kill -9``), repeated ``/healthz`` probe failures catch
  hangs (a live process that stopped answering);
* on either, the child is killed (if still running) and relaunched
  with ``recover_args`` appended — for the pricing server that is
  ``--recover``, so the restart replays the WAL + checkpoint from PR 8
  and resumes at the exact published ``graph_version``;
* restarts are counted (``service.supervisor_restarts``), recorded as
  :class:`SupervisorEvent`s, and bounded by ``max_restarts`` so a
  crash-looping server fails fast instead of flapping forever.

The chaos suite (``tests/test_resilience.py``,
``tools/chaos_smoke.py``) uses this to ``kill -9`` the server
mid-load while :class:`~repro.service.PricingClient` callers retry
through the outage to bit-identical answers.
"""

from __future__ import annotations

import json
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass

from repro.errors import SupervisorError
from repro.obs.metrics import REGISTRY, MetricsRegistry

__all__ = ["Supervisor", "SupervisorEvent", "serve_argv"]


@dataclass(frozen=True)
class SupervisorEvent:
    """One supervision event: ``kind`` in start/exit/hang/restart/give_up/stop."""

    t: float
    kind: str
    detail: str


class Supervisor:
    """Run a serve child process; probe it; restart it with recovery.

    ``argv`` launches the first child; every *re*launch uses
    ``argv + recover_args`` (default ``["--recover"]``) so state built
    by the first run is recovered, not clobbered. ``url`` is the base
    ``http://host:port`` the child serves; ``/healthz`` on it is the
    liveness probe.

    The monitor ignores probe failures during the first
    ``startup_grace_s`` after each (re)launch — a booting server is
    not a hung server.
    """

    def __init__(
        self,
        argv: list[str],
        url: str,
        *,
        recover_args: tuple[str, ...] = ("--recover",),
        probe_interval_s: float = 0.25,
        probe_timeout_s: float = 2.0,
        hang_probes: int = 8,
        startup_grace_s: float = 20.0,
        restart_backoff_s: float = 0.2,
        max_restarts: int = 5,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.argv = list(argv)
        self.url = url.rstrip("/")
        self.recover_args = tuple(recover_args)
        self.probe_interval_s = float(probe_interval_s)
        self.probe_timeout_s = float(probe_timeout_s)
        self.hang_probes = int(hang_probes)
        self.startup_grace_s = float(startup_grace_s)
        self.restart_backoff_s = float(restart_backoff_s)
        self.max_restarts = int(max_restarts)
        self._metrics = REGISTRY if metrics is None else metrics
        self._mu = threading.Lock()
        self._proc: subprocess.Popen | None = None
        self._monitor: threading.Thread | None = None
        self._stop = threading.Event()
        self._failed = threading.Event()
        self.restarts = 0
        self.events: list[SupervisorEvent] = []

    # ------------------------------------------------------------------
    # lifecycle

    def start(self) -> "Supervisor":
        if self._proc is not None:
            raise SupervisorError("supervisor already started")
        self._launch(recover=False)
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="repro-supervisor", daemon=True
        )
        self._monitor.start()
        return self

    def stop(self, *, grace_s: float = 15.0) -> int | None:
        """Stop supervising and drain the child (SIGINT, then SIGKILL)."""
        self._stop.set()
        if self._monitor is not None:
            self._monitor.join(timeout=grace_s)
        with self._mu:
            proc = self._proc
        if proc is None:
            self._record("stop", "no child")
            return None
        code: int | None = proc.poll()
        if code is None:
            try:
                proc.send_signal(signal.SIGINT)
            except OSError:
                pass
            try:
                code = proc.wait(timeout=grace_s)
            except subprocess.TimeoutExpired:
                proc.kill()
                code = proc.wait(timeout=grace_s)
        self._record("stop", f"child exited {code}")
        return code

    @property
    def pid(self) -> int | None:
        with self._mu:
            return None if self._proc is None else self._proc.pid

    @property
    def failed(self) -> bool:
        """True once the restart budget is exhausted."""
        return self._failed.is_set()

    def kill_child(self) -> int:
        """``kill -9`` the current child (chaos helper); returns its pid."""
        with self._mu:
            proc = self._proc
        if proc is None or proc.poll() is not None:
            raise SupervisorError("no live child to kill")
        pid = proc.pid
        proc.kill()
        return pid

    def wait_ready(self, timeout_s: float = 30.0) -> None:
        """Block until ``/readyz`` (falling back to ``/healthz``) is 200."""
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if self._failed.is_set():
                raise SupervisorError("child failed before becoming ready")
            if self._probe("/readyz") or self._probe("/healthz"):
                return
            time.sleep(min(0.05, self.probe_interval_s))
        raise SupervisorError(f"child not ready after {timeout_s:.1f}s")

    def healthz(self) -> dict | None:
        """The child's current ``/healthz`` body, or ``None`` if down."""
        try:
            with urllib.request.urlopen(
                f"{self.url}/healthz", timeout=self.probe_timeout_s
            ) as resp:
                return json.loads(resp.read().decode("utf-8"))
        except (OSError, ValueError, urllib.error.URLError):
            return None

    # ------------------------------------------------------------------
    # internals

    def _launch(self, *, recover: bool) -> None:
        argv = self.argv + (list(self.recover_args) if recover else [])
        try:
            proc = subprocess.Popen(
                argv,
                stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL,
                stdin=subprocess.DEVNULL,
            )
        except OSError as exc:
            self._failed.set()
            raise SupervisorError(f"failed to launch {argv!r}: {exc}") from exc
        with self._mu:
            self._proc = proc
        kind = "restart" if recover else "start"
        self._record(kind, f"pid {proc.pid}")
        if recover:
            self.restarts += 1
            self._metrics.add("service.supervisor_restarts")

    def _probe(self, path: str = "/healthz") -> bool:
        try:
            with urllib.request.urlopen(
                f"{self.url}{path}", timeout=self.probe_timeout_s
            ) as resp:
                return resp.status == 200
        except (OSError, urllib.error.URLError):
            return False

    def _monitor_loop(self) -> None:
        launched_at = time.monotonic()
        consecutive_failures = 0
        seen_healthy = False
        while not self._stop.is_set():
            with self._mu:
                proc = self._proc
            if proc is None:
                return
            code = proc.poll()
            if code is not None:
                self._record("exit", f"pid {proc.pid} exited {code}")
                self._metrics.add("service.supervisor_child_exits")
                if not self._restart():
                    return
                launched_at = time.monotonic()
                consecutive_failures = 0
                seen_healthy = False
                continue
            if self._probe("/healthz"):
                consecutive_failures = 0
                seen_healthy = True
            else:
                in_grace = (
                    not seen_healthy
                    and time.monotonic() - launched_at < self.startup_grace_s
                )
                if not in_grace:
                    consecutive_failures += 1
                if consecutive_failures >= self.hang_probes:
                    self._record(
                        "hang",
                        f"pid {proc.pid}: {consecutive_failures} failed probes",
                    )
                    self._metrics.add("service.supervisor_hangs")
                    try:
                        proc.kill()
                        proc.wait(timeout=self.probe_timeout_s)
                    except (OSError, subprocess.TimeoutExpired):
                        pass
                    if not self._restart():
                        return
                    launched_at = time.monotonic()
                    consecutive_failures = 0
                    seen_healthy = False
                    continue
            self._stop.wait(self.probe_interval_s)

    def _restart(self) -> bool:
        if self._stop.is_set():
            return False
        if self.restarts >= self.max_restarts:
            self._record("give_up", f"restart budget {self.max_restarts} spent")
            self._failed.set()
            return False
        time.sleep(self.restart_backoff_s)
        try:
            self._launch(recover=True)
        except SupervisorError:
            return False
        return True

    def _record(self, kind: str, detail: str) -> None:
        event = SupervisorEvent(t=time.time(), kind=kind, detail=detail)
        with self._mu:
            self.events.append(event)

    def __enter__(self) -> "Supervisor":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()


def serve_argv(
    python: str | None = None,
    *,
    nodes: int,
    seed: int,
    port: int,
    checkpoint_dir: str,
    host: str = "127.0.0.1",
    workers: int = 4,
    fsync: str = "always",
    extra: tuple[str, ...] = (),
) -> list[str]:
    """A convenience argv for supervising ``python -m repro.cli serve``."""
    return [
        python or sys.executable,
        "-m",
        "repro.cli",
        "serve",
        "--nodes",
        str(nodes),
        "--seed",
        str(seed),
        "--host",
        host,
        "--port",
        str(port),
        "--workers",
        str(workers),
        "--checkpoint-dir",
        checkpoint_dir,
        "--fsync",
        fsync,
        *extra,
    ]
