"""The concurrent pricing service: admission control + HTTP API.

The paper's setting is inherently online — nodes keep declaring costs,
sources keep asking for truthful unicast prices — and the ROADMAP's
north star is a system that serves that traffic concurrently. This
package is the serving layer in front of the snapshot-isolated
:class:`~repro.engine.PricingEngine`:

* :class:`PricingService` (:mod:`repro.service.service`) — worker
  pool behind a bounded admission queue with backpressure (429),
  per-request deadlines (504), duplicate-request coalescing, and a
  graceful drain that finishes queued work, checkpoints, and closes
  the engine.
* :class:`ServiceServer` (:mod:`repro.service.http`) — the stdlib
  HTTP JSON API: ``POST /v1/price`` / ``/v1/price_many`` /
  ``/v1/update``, ``GET /v1/graph``, plus the telemetry family
  (``/metrics``, ``/healthz``, ...) on the same port. Messages are the
  versioned wire envelopes of :mod:`repro.io`; failures map to HTTP
  statuses through the one shared table in :mod:`repro.errors`.

The availability layer on top (this PR's *resilience* family):

* :class:`PricingClient` (:mod:`repro.service.resilience`) — the
  retrying, breaker-guarded HTTP client: capped exponential backoff
  with seeded full jitter, ``Retry-After`` honoring, deadline
  propagation (``X-Deadline-S``), idempotency keys for mutations.
* :class:`ChaosPlan` (:mod:`repro.service.chaos`) — seeded
  server-side fault injection (latency, 5xx, resets, torn responses);
  off ⇒ byte-identical responses.
* :class:`DegradePolicy` (:mod:`repro.service.service`) — explicit
  stale-but-stamped answers when the queue saturates or the engine is
  mid-recovery.
* :class:`Supervisor` (:mod:`repro.service.supervisor`) — child-
  process supervision with ``/healthz`` probes and WAL-recovery
  restarts.

``python -m repro.cli serve`` boots the whole stack (``client`` drives
it); the contract — endpoints, error codes, backpressure tuning, drain
semantics, failure handling — is documented in ``docs/service.md``.
"""

from repro.service.chaos import ChaosPlan, ChaosRule
from repro.service.http import ServiceServer
from repro.service.resilience import (
    BackoffPolicy,
    CircuitBreaker,
    ClientStats,
    PricingClient,
)
from repro.service.service import (
    BatchAnswer,
    DegradePolicy,
    PricedAnswer,
    PricingService,
    ServiceStats,
)
from repro.service.supervisor import Supervisor, SupervisorEvent

__all__ = [
    "PricingService",
    "ServiceServer",
    "ServiceStats",
    "PricedAnswer",
    "BatchAnswer",
    "DegradePolicy",
    "PricingClient",
    "BackoffPolicy",
    "CircuitBreaker",
    "ClientStats",
    "ChaosPlan",
    "ChaosRule",
    "Supervisor",
    "SupervisorEvent",
]
