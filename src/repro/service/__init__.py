"""The concurrent pricing service: admission control + HTTP API.

The paper's setting is inherently online — nodes keep declaring costs,
sources keep asking for truthful unicast prices — and the ROADMAP's
north star is a system that serves that traffic concurrently. This
package is the serving layer in front of the snapshot-isolated
:class:`~repro.engine.PricingEngine`:

* :class:`PricingService` (:mod:`repro.service.service`) — worker
  pool behind a bounded admission queue with backpressure (429),
  per-request deadlines (504), duplicate-request coalescing, and a
  graceful drain that finishes queued work, checkpoints, and closes
  the engine.
* :class:`ServiceServer` (:mod:`repro.service.http`) — the stdlib
  HTTP JSON API: ``POST /v1/price`` / ``/v1/price_many`` /
  ``/v1/update``, ``GET /v1/graph``, plus the telemetry family
  (``/metrics``, ``/healthz``, ...) on the same port. Messages are the
  versioned wire envelopes of :mod:`repro.io`; failures map to HTTP
  statuses through the one shared table in :mod:`repro.errors`.

``python -m repro.cli serve`` boots the whole stack; the contract —
endpoints, error codes, backpressure tuning, drain semantics — is
documented in ``docs/service.md``.
"""

from repro.service.http import ServiceServer
from repro.service.service import (
    BatchAnswer,
    PricedAnswer,
    PricingService,
    ServiceStats,
)

__all__ = [
    "PricingService",
    "ServiceServer",
    "ServiceStats",
    "PricedAnswer",
    "BatchAnswer",
]
