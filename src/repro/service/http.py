"""The HTTP JSON API over :class:`~repro.service.PricingService`.

:class:`ServiceServer` extends the telemetry-server scaffolding
(:mod:`repro.obs.server`) from inspection-only into a pricing API:

``POST /v1/price``
    Body: a ``price-request`` wire envelope (:mod:`repro.io`).
    Response: ``price-response`` — the payment, its ``graph_version``,
    the serving request id, and whether the call coalesced.
``POST /v1/price_many``
    Body: ``price-many-request``; response: ``price-many-response``.
``POST /v1/update``
    Body: ``update-request`` (``op`` = ``cost`` | ``add_node`` |
    ``remove_node``); response: ``update-response`` with the published
    version.
``GET /v1/graph``
    The current snapshot as a ``graph-response`` envelope (the nested
    graph payload round-trips through :func:`repro.io.from_wire`).
``GET /metrics``, ``/healthz``, ``/snapshot``, ``/flight``
    The telemetry family, unchanged — one port serves both planes.
    ``/healthz`` additionally reports the engine version/model and the
    service's queue depth and drain state.

Every request runs inside :func:`repro.obs.context.request_scope`: the
minted id is returned both as the ``X-Request-Id`` response header and
inside the response envelope, and it joins the PR-5 tracing
contextvars so spans and flight-recorder events correlate with the
wire. Failures become ``error-response`` envelopes; the status comes
from the one shared table in :mod:`repro.errors` (429 queue-full,
504 deadline, 404 unknown node, 422 disconnected/monopoly, 400
malformed envelope, 503 draining).

The server itself stays deliberately stdlib:
:class:`~http.server.ThreadingHTTPServer` gives one thread per
connection, and the admission queue inside
:class:`~repro.service.PricingService` — not the socket listener — is
the concurrency limiter that matters.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro import io as repro_io
from repro.errors import (
    InvalidRequestError,
    SerializationError,
    error_code,
    http_status,
)
from repro.obs import logging as obs_logging
from repro.obs.context import current_request_id, request_scope
from repro.obs.export import snapshot_to_json, to_prometheus_text
from repro.obs.flight import FLIGHT, FlightRecorder
from repro.obs.metrics import REGISTRY, MetricsRegistry
from repro.obs.tracing import TRACER
from repro.service.service import PricingService

__all__ = ["ServiceServer", "ENDPOINTS"]

_log = obs_logging.get_logger("service.http")

#: The routes ``/`` advertises (path -> one-line description).
ENDPOINTS = {
    "POST /v1/price": "price one (source, target) request",
    "POST /v1/price_many": "price a batch of ordered pairs",
    "POST /v1/update": "apply a cost/topology mutation",
    "GET /v1/graph": "current graph snapshot + version",
    "GET /metrics": "Prometheus text exposition of the metrics registry",
    "GET /healthz": "liveness + engine/service status JSON",
    "GET /snapshot": "full metrics snapshot as JSON",
    "GET /flight": "flight-recorder ring (recent engine events) as JSON",
}

#: Reject request bodies past this size before parsing (a pricing
#: request is tiny; a batch of every pair in a 10k-node graph still
#: fits comfortably).
MAX_BODY_BYTES = 16 * 1024 * 1024


class ServiceServer:
    """Background HTTP server speaking the ``/v1`` pricing API.

    Parameters
    ----------
    service:
        The :class:`~repro.service.PricingService` to front. The server
        never closes it — lifecycle stays with the caller (the CLI
        stops the listener first, then drains the service).
    port, host:
        Bind address; ``port=0`` picks an ephemeral port (tests).
    registry, recorder:
        Telemetry collectors for the ``/metrics`` family (default: the
        process-wide ones).
    """

    def __init__(
        self,
        service: PricingService,
        port: int = 0,
        host: str = "127.0.0.1",
        registry: MetricsRegistry | None = None,
        recorder: FlightRecorder | None = None,
        prefix: str = "repro",
    ) -> None:
        self.service = service
        self._host = host
        self._requested_port = int(port)
        self.registry = registry if registry is not None else REGISTRY
        self.recorder = recorder if recorder is not None else FLIGHT
        self.prefix = prefix
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None
        self._started_at = 0.0

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "ServiceServer":
        """Bind and serve on a daemon thread; returns ``self``."""
        if self._httpd is not None:
            raise RuntimeError("ServiceServer is already running")
        handler = _make_handler(self)
        self._httpd = ThreadingHTTPServer(
            (self._host, self._requested_port), handler
        )
        self._started_at = time.monotonic()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-service-http",
            daemon=True,
        )
        self._thread.start()
        _log.info(
            "service server started",
            extra={"host": self._host, "port": self.port},
        )
        return self

    def stop(self) -> None:
        """Stop accepting connections and join the listener (idempotent).

        Does *not* drain the service — call
        :meth:`PricingService.close` after this for the full graceful
        shutdown (listener first, so no new requests race the drain).
        """
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "ServiceServer":
        if self._httpd is None:
            self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- introspection ------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._httpd is not None

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the real one)."""
        if self._httpd is None:
            return self._requested_port
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self._host}:{self.port}"

    def uptime(self) -> float:
        """Seconds since :meth:`start` (0.0 before it)."""
        if self._httpd is None:
            return 0.0
        return time.monotonic() - self._started_at

    # -- endpoint payloads (also callable directly, e.g. from tests) --------

    def healthz(self) -> dict:
        eng = self.service.engine
        return {
            "status": "draining" if self.service.closed else "ok",
            "uptime_s": round(self.uptime(), 3),
            "engine_version": eng.version,
            "model": eng.model,
            "nodes": eng.n,
            "durable": eng.durable,
            "queue_depth": self.service.queue_depth,
            "max_queue": self.service.max_queue,
            "service": self.service.stats.as_dict(),
            "metrics_enabled": self.registry.enabled,
            "tracing_enabled": TRACER.enabled,
        }

    # -- API handlers (one per POST/GET route; return a wire envelope) ------

    def handle_price(self, req: repro_io.PriceRequest) -> dict:
        answer = self.service.price(
            req.source, req.target, deadline_s=req.deadline_s
        )
        return repro_io.to_wire(
            repro_io.PriceResponse(
                payment=answer.payment,
                graph_version=answer.graph_version,
                request_id=current_request_id() or "",
                coalesced=answer.coalesced,
            )
        )

    def handle_price_many(self, req: repro_io.PriceManyRequest) -> dict:
        answer = self.service.price_many(
            req.pairs, deadline_s=req.deadline_s
        )
        # Deterministic wire order: request order, duplicates collapsed
        # (the engine prices each distinct pair once).
        seen: set[tuple[int, int]] = set()
        payments = []
        for pair in req.pairs:
            if pair not in seen:
                seen.add(pair)
                payments.append(answer.payments[pair])
        return repro_io.to_wire(
            repro_io.PriceManyResponse(
                payments=tuple(payments),
                graph_version=answer.graph_version,
                request_id=current_request_id() or "",
            )
        )

    def handle_update(self, req: repro_io.UpdateRequest) -> dict:
        node: int | None = None
        if req.op == "cost":
            target = req.node if req.node is not None else req.edge
            version = self.service.update_cost(target, req.value)
        elif req.op == "remove_node":
            version = self.service.remove_node(req.node)
        else:  # "add_node" (op already validated by the envelope)
            node = self.service.add_node(
                cost=req.cost, neighbors=req.neighbors, arcs=req.arcs
            )
            version = self.service.engine.version
        return repro_io.to_wire(
            repro_io.UpdateResponse(
                graph_version=version,
                request_id=current_request_id() or "",
                node=node,
            )
        )

    def handle_graph(self) -> dict:
        graph, version = self.service.graph()
        return repro_io.to_wire(
            repro_io.GraphResponse(
                graph=graph,
                graph_version=version,
                model=self.service.engine.model,
                request_id=current_request_id() or "",
            )
        )


def _make_handler(server: ServiceServer) -> type:
    """A request-handler class closed over one :class:`ServiceServer`."""

    posts = {
        "/v1/price": (server.handle_price, repro_io.PriceRequest),
        "/v1/price_many": (
            server.handle_price_many,
            repro_io.PriceManyRequest,
        ),
        "/v1/update": (server.handle_update, repro_io.UpdateRequest),
    }

    class Handler(BaseHTTPRequestHandler):
        # Silenced default stderr chatter; requests log at DEBUG instead.
        def log_message(self, fmt, *args):  # noqa: N802 (stdlib name)
            _log.debug("service request", extra={"line": fmt % args})

        def _send(
            self,
            body: str,
            content_type: str,
            status: int = 200,
            request_id: str | None = None,
        ) -> None:
            payload = body.encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(payload)))
            if request_id:
                self.send_header("X-Request-Id", request_id)
            self.end_headers()
            self.wfile.write(payload)

        def _send_json(
            self, doc, status: int = 200, request_id: str | None = None
        ) -> None:
            self._send(
                json.dumps(doc, indent=2) + "\n",
                "application/json; charset=utf-8",
                status,
                request_id=request_id,
            )

        def _send_error(self, exc: BaseException, rid: str) -> None:
            status = http_status(exc)
            doc = repro_io.to_wire(
                repro_io.ErrorResponse(
                    code=error_code(exc),
                    message=str(exc),
                    request_id=rid,
                    status=status,
                )
            )
            self._send_json(doc, status=status, request_id=rid)

        def _read_body(self):
            length = int(self.headers.get("Content-Length") or 0)
            if length > MAX_BODY_BYTES:
                raise InvalidRequestError(
                    f"request body of {length} bytes exceeds the "
                    f"{MAX_BODY_BYTES}-byte limit"
                )
            raw = self.rfile.read(length) if length else b""
            try:
                return json.loads(raw.decode("utf-8") or "null")
            except (UnicodeDecodeError, json.JSONDecodeError) as e:
                raise SerializationError(f"request body is not JSON: {e}")

        def do_POST(self) -> None:  # noqa: N802 (stdlib name)
            path = self.path.split("?", 1)[0].rstrip("/")
            route = posts.get(path)
            t0 = time.perf_counter()
            with request_scope(fresh=True) as rid:
                try:
                    if route is None:
                        self._send_json(
                            {
                                "error": f"no POST handler at {path!r}",
                                "endpoints": sorted(ENDPOINTS),
                            },
                            status=404,
                            request_id=rid,
                        )
                        return
                    handler, envelope = route
                    payload = repro_io.from_wire(self._read_body())
                    if not isinstance(payload, envelope):
                        raise InvalidRequestError(
                            f"{path} expects a {envelope.__name__} "
                            f"envelope, got {type(payload).__name__}"
                        )
                    doc = handler(payload)
                    self._send_json(doc, request_id=rid)
                except BrokenPipeError:  # client went away mid-response
                    pass
                except Exception as exc:
                    try:
                        self._send_error(exc, rid)
                    except OSError:
                        pass
                finally:
                    if server.registry.enabled:
                        server.registry.observe(
                            f"service.http{path.replace('/', '.')}_time"
                            if route is not None
                            else "service.http.unknown_time",
                            time.perf_counter() - t0,
                        )

        def do_GET(self) -> None:  # noqa: N802 (stdlib name)
            path = self.path.split("?", 1)[0].rstrip("/") or "/"
            with request_scope(fresh=True) as rid:
                try:
                    if path == "/v1/graph":
                        self._send_json(server.handle_graph(), request_id=rid)
                    elif path == "/metrics":
                        self._send(
                            to_prometheus_text(
                                server.registry.snapshot(),
                                prefix=server.prefix,
                            ),
                            "text/plain; version=0.0.4; charset=utf-8",
                        )
                    elif path == "/healthz":
                        self._send_json(server.healthz(), request_id=rid)
                    elif path == "/snapshot":
                        self._send(
                            snapshot_to_json(
                                server.registry.snapshot(), indent=2
                            )
                            + "\n",
                            "application/json; charset=utf-8",
                        )
                    elif path == "/flight":
                        self._send_json(server.recorder.snapshot())
                    elif path == "/":
                        self._send_json({"endpoints": ENDPOINTS})
                    else:
                        self._send_json(
                            {
                                "error": f"unknown path {path!r}",
                                "endpoints": sorted(ENDPOINTS),
                            },
                            status=404,
                            request_id=rid,
                        )
                except BrokenPipeError:
                    pass
                except Exception as exc:
                    try:
                        self._send_error(exc, rid)
                    except OSError:
                        pass

    return Handler
