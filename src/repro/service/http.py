"""The HTTP JSON API over :class:`~repro.service.PricingService`.

:class:`ServiceServer` extends the telemetry-server scaffolding
(:mod:`repro.obs.server`) from inspection-only into a pricing API:

``POST /v1/price``
    Body: a ``price-request`` wire envelope (:mod:`repro.io`).
    Response: ``price-response`` — the payment, its ``graph_version``,
    the serving request id, and whether the call coalesced.
``POST /v1/price_many``
    Body: ``price-many-request``; response: ``price-many-response``.
``POST /v1/update``
    Body: ``update-request`` (``op`` = ``cost`` | ``add_node`` |
    ``remove_node``); response: ``update-response`` with the published
    version.
``GET /v1/graph``
    The current snapshot as a ``graph-response`` envelope (the nested
    graph payload round-trips through :func:`repro.io.from_wire`).
``GET /metrics``, ``/healthz``, ``/snapshot``, ``/flight``
    The telemetry family, unchanged — one port serves both planes.
    ``/healthz`` additionally reports the engine version/model and the
    service's queue depth and drain state.
``GET /readyz``
    Readiness, split from liveness: 503 with the blocking reasons
    (``draining``, ``recovering``, ...) while the server should not
    receive traffic, 200 otherwise. Load balancers and the CI smoke
    gate on this; ``/healthz`` stays 200 through a drain so
    supervisors don't kill a process that is shutting down cleanly.

Failure-handling headers (see ``docs/service.md``):

* 429/503 error responses carry ``Retry-After`` (decimal seconds,
  from :data:`repro.errors.RETRY_AFTER_S`) so well-behaved clients
  back off by the server's own estimate.
* ``X-Deadline-S`` on a request caps the admission deadline at the
  caller's remaining budget — work the caller has already abandoned
  is dropped in the queue instead of computed.
* ``Idempotency-Key`` on ``POST /v1/update`` makes retried mutations
  safe: the first successful response is cached per key and replayed
  (with ``Idempotency-Replay: true``) for duplicates.

A seeded :class:`~repro.service.chaos.ChaosPlan` may be attached to
inject faults (latency, 5xx, connection resets, torn responses) for
resilience testing; with no plan attached the request path — and every
wire byte — is identical to a chaos-free build.

Every request runs inside :func:`repro.obs.context.request_scope`: the
minted id is returned both as the ``X-Request-Id`` response header and
inside the response envelope, and it joins the PR-5 tracing
contextvars so spans and flight-recorder events correlate with the
wire. Failures become ``error-response`` envelopes; the status comes
from the one shared table in :mod:`repro.errors` (429 queue-full,
504 deadline, 404 unknown node, 422 disconnected/monopoly, 400
malformed envelope, 503 draining).

The server itself stays deliberately stdlib:
:class:`~http.server.ThreadingHTTPServer` gives one thread per
connection, and the admission queue inside
:class:`~repro.service.PricingService` — not the socket listener — is
the concurrency limiter that matters.
"""

from __future__ import annotations

import io
import json
import socket
import struct
import threading
import time
from collections import OrderedDict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro import io as repro_io
from repro.errors import (
    InvalidRequestError,
    SerializationError,
    error_code,
    http_status,
    retry_after_s,
)
from repro.obs import logging as obs_logging
from repro.obs.context import current_request_id, request_scope
from repro.obs.export import snapshot_to_json, to_prometheus_text
from repro.obs.flight import FLIGHT, FlightRecorder
from repro.obs.metrics import REGISTRY, MetricsRegistry
from repro.obs.tracing import TRACER
from repro.service.chaos import ChaosPlan
from repro.service.service import PricingService

__all__ = ["ServiceServer", "ENDPOINTS"]

_log = obs_logging.get_logger("service.http")

#: The routes ``/`` advertises (path -> one-line description).
ENDPOINTS = {
    "POST /v1/price": "price one (source, target) request",
    "POST /v1/price_many": "price a batch of ordered pairs",
    "POST /v1/update": "apply a cost/topology mutation",
    "GET /v1/graph": "current graph snapshot + version",
    "GET /metrics": "Prometheus text exposition of the metrics registry",
    "GET /healthz": "liveness + engine/service status JSON",
    "GET /readyz": "readiness (503 + reasons while draining/recovering)",
    "GET /snapshot": "full metrics snapshot as JSON",
    "GET /flight": "flight-recorder ring (recent engine events) as JSON",
}

#: Reject request bodies past this size before parsing (a pricing
#: request is tiny; a batch of every pair in a 10k-node graph still
#: fits comfortably).
MAX_BODY_BYTES = 16 * 1024 * 1024


class ServiceServer:
    """Background HTTP server speaking the ``/v1`` pricing API.

    Parameters
    ----------
    service:
        The :class:`~repro.service.PricingService` to front. The server
        never closes it — lifecycle stays with the caller (the CLI
        stops the listener first, then drains the service).
    port, host:
        Bind address; ``port=0`` picks an ephemeral port (tests).
    registry, recorder:
        Telemetry collectors for the ``/metrics`` family (default: the
        process-wide ones).
    chaos:
        An optional seeded :class:`~repro.service.chaos.ChaosPlan`.
        ``None`` (default) leaves the request path untouched.
    idempotency_cap:
        Entries kept in the ``Idempotency-Key`` replay cache for
        ``POST /v1/update`` (LRU beyond that).
    """

    def __init__(
        self,
        service: PricingService,
        port: int = 0,
        host: str = "127.0.0.1",
        registry: MetricsRegistry | None = None,
        recorder: FlightRecorder | None = None,
        prefix: str = "repro",
        chaos: ChaosPlan | None = None,
        idempotency_cap: int = 1024,
    ) -> None:
        self.service = service
        self._host = host
        self._requested_port = int(port)
        self.registry = registry if registry is not None else REGISTRY
        self.recorder = recorder if recorder is not None else FLIGHT
        self.prefix = prefix
        self.chaos = chaos
        #: Optional hook returning extra not-ready reasons (strings) —
        #: lets an embedding process (supervisor, shared breaker, ...)
        #: take itself out of rotation via ``/readyz``.
        self.ready_hook = None
        self._idem_cap = int(idempotency_cap)
        self._idem: OrderedDict[str, dict] = OrderedDict()
        self._idem_mu = threading.Lock()
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None
        self._started_at = 0.0

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "ServiceServer":
        """Bind and serve on a daemon thread; returns ``self``."""
        if self._httpd is not None:
            raise RuntimeError("ServiceServer is already running")
        handler = _make_handler(self)
        self._httpd = ThreadingHTTPServer(
            (self._host, self._requested_port), handler
        )
        self._started_at = time.monotonic()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-service-http",
            daemon=True,
        )
        self._thread.start()
        _log.info(
            "service server started",
            extra={"host": self._host, "port": self.port},
        )
        return self

    def stop(self) -> None:
        """Stop accepting connections and join the listener (idempotent).

        Does *not* drain the service — call
        :meth:`PricingService.close` after this for the full graceful
        shutdown (listener first, so no new requests race the drain).
        """
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "ServiceServer":
        if self._httpd is None:
            self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- introspection ------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._httpd is not None

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the real one)."""
        if self._httpd is None:
            return self._requested_port
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self._host}:{self.port}"

    def uptime(self) -> float:
        """Seconds since :meth:`start` (0.0 before it)."""
        if self._httpd is None:
            return 0.0
        return time.monotonic() - self._started_at

    # -- endpoint payloads (also callable directly, e.g. from tests) --------

    def healthz(self) -> dict:
        eng = self.service.engine
        return {
            "status": "draining" if self.service.closed else "ok",
            "uptime_s": round(self.uptime(), 3),
            "engine_version": eng.version,
            "model": eng.model,
            "nodes": eng.n,
            "durable": eng.durable,
            "recovering": self.service.recovering,
            "queue_depth": self.service.queue_depth,
            "max_queue": self.service.max_queue,
            "service": self.service.stats.as_dict(),
            "metrics_enabled": self.registry.enabled,
            "tracing_enabled": TRACER.enabled,
        }

    def readyz(self) -> dict:
        """Readiness payload: ``ready`` plus the blocking reasons.

        Liveness (``/healthz``) answers "is the process up"; this
        answers "should it receive traffic". It goes false while the
        service drains, while the engine is flagged mid-recovery, and
        for whatever extra reasons :attr:`ready_hook` reports.
        """
        reasons: list[str] = []
        if self.service.closed:
            reasons.append("draining")
        if self.service.recovering:
            reasons.append("recovering")
        hook = self.ready_hook
        if hook is not None:
            try:
                reasons.extend(str(r) for r in hook())
            except Exception as exc:  # a broken hook must not mask readiness
                reasons.append(f"ready_hook error: {exc}")
        return {
            "ready": not reasons,
            "reasons": reasons,
            "engine_version": self.service.engine.version,
            "queue_depth": self.service.queue_depth,
        }

    # -- idempotency replay cache (POST /v1/update) --------------------------

    def _idem_get(self, key: str) -> dict | None:
        with self._idem_mu:
            doc = self._idem.get(key)
            if doc is not None:
                self._idem.move_to_end(key)
            return doc

    def _idem_put(self, key: str, doc: dict) -> None:
        with self._idem_mu:
            self._idem[key] = doc
            self._idem.move_to_end(key)
            while len(self._idem) > self._idem_cap:
                self._idem.popitem(last=False)

    # -- API handlers (one per POST/GET route; return a wire envelope) ------

    def handle_price(
        self, req: repro_io.PriceRequest, deadline_s: float | None = None
    ) -> dict:
        answer = self.service.price(
            req.source,
            req.target,
            deadline_s=_effective_deadline(req.deadline_s, deadline_s),
        )
        return repro_io.to_wire(
            repro_io.PriceResponse(
                payment=answer.payment,
                graph_version=answer.graph_version,
                request_id=current_request_id() or "",
                coalesced=answer.coalesced,
                degraded=answer.degraded,
            )
        )

    def handle_price_many(
        self, req: repro_io.PriceManyRequest, deadline_s: float | None = None
    ) -> dict:
        answer = self.service.price_many(
            req.pairs,
            deadline_s=_effective_deadline(req.deadline_s, deadline_s),
        )
        # Deterministic wire order: request order, duplicates collapsed
        # (the engine prices each distinct pair once).
        seen: set[tuple[int, int]] = set()
        payments = []
        for pair in req.pairs:
            if pair not in seen:
                seen.add(pair)
                payments.append(answer.payments[pair])
        return repro_io.to_wire(
            repro_io.PriceManyResponse(
                payments=tuple(payments),
                graph_version=answer.graph_version,
                request_id=current_request_id() or "",
            )
        )

    def handle_update(self, req: repro_io.UpdateRequest) -> dict:
        node: int | None = None
        if req.op == "cost":
            target = req.node if req.node is not None else req.edge
            version = self.service.update_cost(target, req.value)
        elif req.op == "remove_node":
            version = self.service.remove_node(req.node)
        else:  # "add_node" (op already validated by the envelope)
            node = self.service.add_node(
                cost=req.cost, neighbors=req.neighbors, arcs=req.arcs
            )
            version = self.service.engine.version
        return repro_io.to_wire(
            repro_io.UpdateResponse(
                graph_version=version,
                request_id=current_request_id() or "",
                node=node,
            )
        )

    def handle_graph(self) -> dict:
        graph, version = self.service.graph()
        return repro_io.to_wire(
            repro_io.GraphResponse(
                graph=graph,
                graph_version=version,
                model=self.service.engine.model,
                request_id=current_request_id() or "",
            )
        )


def _effective_deadline(
    envelope_s: float | None, header_s: float | None
) -> float | None:
    """The tighter of the envelope's and the ``X-Deadline-S`` budgets."""
    if envelope_s is None:
        return header_s
    if header_s is None:
        return envelope_s
    return min(envelope_s, header_s)


def _make_handler(server: ServiceServer) -> type:
    """A request-handler class closed over one :class:`ServiceServer`."""

    # path -> (handler, envelope class, handler takes deadline_s=).
    posts = {
        "/v1/price": (server.handle_price, repro_io.PriceRequest, True),
        "/v1/price_many": (
            server.handle_price_many,
            repro_io.PriceManyRequest,
            True,
        ),
        "/v1/update": (server.handle_update, repro_io.UpdateRequest, False),
    }

    class Handler(BaseHTTPRequestHandler):
        # Silenced default stderr chatter; requests log at DEBUG instead.
        def log_message(self, fmt, *args):  # noqa: N802 (stdlib name)
            _log.debug("service request", extra={"line": fmt % args})

        def _send(
            self,
            body: str,
            content_type: str,
            status: int = 200,
            request_id: str | None = None,
            extra_headers: dict[str, str] | None = None,
        ) -> None:
            payload = body.encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(payload)))
            if request_id:
                self.send_header("X-Request-Id", request_id)
            if extra_headers:
                for name, value in extra_headers.items():
                    self.send_header(name, value)
            self.end_headers()
            if getattr(self, "_chaos_torn", False):
                # Injected torn response: the headers promised the full
                # Content-Length, but only half the body goes out
                # before the connection is destroyed — the client must
                # treat this as a transport failure, never parse it.
                self._chaos_torn = False
                self.wfile.write(payload[: max(1, len(payload) // 2)])
                try:
                    self.wfile.flush()
                except OSError:
                    pass
                self._abort_connection()
                return
            self.wfile.write(payload)

        def _send_json(
            self,
            doc,
            status: int = 200,
            request_id: str | None = None,
            extra_headers: dict[str, str] | None = None,
        ) -> None:
            self._send(
                json.dumps(doc, indent=2) + "\n",
                "application/json; charset=utf-8",
                status,
                request_id=request_id,
                extra_headers=extra_headers,
            )

        def _send_error(self, exc: BaseException, rid: str) -> None:
            status = http_status(exc)
            doc = repro_io.to_wire(
                repro_io.ErrorResponse(
                    code=error_code(exc),
                    message=str(exc),
                    request_id=rid,
                    status=status,
                )
            )
            extra: dict[str, str] | None = None
            if status in (429, 503):
                hint = retry_after_s(exc)
                if hint is not None:
                    # Decimal seconds: finer-grained than the RFC's
                    # integer (integral hints round-trip unchanged).
                    extra = {"Retry-After": f"{hint:g}"}
            self._send_json(doc, status=status, request_id=rid, extra_headers=extra)

        def _abort_connection(self) -> None:
            """Destroy the connection with an RST (chaos reset/torn).

            ``SO_LINGER`` with a zero timeout turns ``close()`` into an
            abortive close, so the peer sees ``ECONNRESET`` rather than
            a clean EOF. The buffered writer is detached first so the
            handler's ``finish()`` doesn't trip over the dead socket.
            """
            self.close_connection = True
            try:
                self.connection.setsockopt(
                    socket.SOL_SOCKET,
                    socket.SO_LINGER,
                    struct.pack("ii", 1, 0),
                )
                self.connection.close()
            except OSError:
                pass
            self.wfile = io.BytesIO()

        def _apply_chaos(self, path: str, rid: str) -> bool:
            """Inject the plan's faults; True = request fully handled."""
            plan = server.chaos
            if plan is None:
                return False
            decision = plan.decide(path)
            if decision is None:
                return False
            if decision.latency_s > 0.0:
                time.sleep(decision.latency_s)
            if decision.action == "reset":
                self._abort_connection()
                return True
            if decision.action == "torn":
                self._chaos_torn = True  # _send truncates the real body
                return False
            if decision.action == "error":
                doc = repro_io.to_wire(
                    repro_io.ErrorResponse(
                        code="internal",
                        message="chaos: injected server error",
                        request_id=rid,
                        status=decision.status,
                    )
                )
                # Drain the unread request body first so keep-alive
                # framing can't misparse it as the next request.
                length = int(self.headers.get("Content-Length") or 0)
                if 0 < length <= MAX_BODY_BYTES:
                    self.rfile.read(length)
                self._send_json(doc, status=decision.status, request_id=rid)
                return True
            return False

        def _read_body(self):
            length = int(self.headers.get("Content-Length") or 0)
            if length > MAX_BODY_BYTES:
                raise InvalidRequestError(
                    f"request body of {length} bytes exceeds the "
                    f"{MAX_BODY_BYTES}-byte limit"
                )
            raw = self.rfile.read(length) if length else b""
            try:
                return json.loads(raw.decode("utf-8") or "null")
            except (UnicodeDecodeError, json.JSONDecodeError) as e:
                raise SerializationError(f"request body is not JSON: {e}")

        def _header_deadline(self) -> float | None:
            raw = self.headers.get("X-Deadline-S")
            if raw is None:
                return None
            try:
                budget = float(raw)
            except ValueError:
                raise InvalidRequestError(
                    f"X-Deadline-S must be a number, got {raw!r}"
                ) from None
            if budget <= 0:
                raise InvalidRequestError(
                    f"X-Deadline-S must be positive, got {budget}"
                )
            return budget

        def do_POST(self) -> None:  # noqa: N802 (stdlib name)
            path = self.path.split("?", 1)[0].rstrip("/")
            route = posts.get(path)
            t0 = time.perf_counter()
            with request_scope(fresh=True) as rid:
                try:
                    if route is None:
                        self._send_json(
                            {
                                "error": f"no POST handler at {path!r}",
                                "endpoints": sorted(ENDPOINTS),
                            },
                            status=404,
                            request_id=rid,
                        )
                        return
                    if self._apply_chaos(path, rid):
                        return
                    handler, envelope, takes_deadline = route
                    deadline_s = self._header_deadline()
                    payload = repro_io.from_wire(self._read_body())
                    if not isinstance(payload, envelope):
                        raise InvalidRequestError(
                            f"{path} expects a {envelope.__name__} "
                            f"envelope, got {type(payload).__name__}"
                        )
                    # Body fully read (keep-alive framing safe): a
                    # retried update with a known key replays the
                    # cached first response instead of re-applying.
                    idem_key = None
                    if path == "/v1/update":
                        idem_key = self.headers.get("Idempotency-Key")
                        if idem_key:
                            cached = server._idem_get(idem_key)
                            if cached is not None:
                                if server.registry.enabled:
                                    server.registry.add(
                                        "service.idempotent_replays"
                                    )
                                self._send_json(
                                    cached,
                                    request_id=rid,
                                    extra_headers={
                                        "Idempotency-Replay": "true"
                                    },
                                )
                                return
                    if takes_deadline:
                        doc = handler(payload, deadline_s=deadline_s)
                    else:
                        doc = handler(payload)
                    if idem_key:
                        server._idem_put(idem_key, doc)
                    self._send_json(doc, request_id=rid)
                except BrokenPipeError:  # client went away mid-response
                    pass
                except Exception as exc:
                    try:
                        self._send_error(exc, rid)
                    except OSError:
                        pass
                finally:
                    if server.registry.enabled:
                        server.registry.observe(
                            f"service.http{path.replace('/', '.')}_time"
                            if route is not None
                            else "service.http.unknown_time",
                            time.perf_counter() - t0,
                        )

        def do_GET(self) -> None:  # noqa: N802 (stdlib name)
            path = self.path.split("?", 1)[0].rstrip("/") or "/"
            with request_scope(fresh=True) as rid:
                try:
                    if self._apply_chaos(path, rid):
                        return
                    if path == "/v1/graph":
                        self._send_json(server.handle_graph(), request_id=rid)
                    elif path == "/readyz":
                        doc = server.readyz()
                        self._send_json(
                            doc,
                            status=200 if doc["ready"] else 503,
                            request_id=rid,
                        )
                    elif path == "/metrics":
                        self._send(
                            to_prometheus_text(
                                server.registry.snapshot(),
                                prefix=server.prefix,
                            ),
                            "text/plain; version=0.0.4; charset=utf-8",
                        )
                    elif path == "/healthz":
                        self._send_json(server.healthz(), request_id=rid)
                    elif path == "/snapshot":
                        self._send(
                            snapshot_to_json(
                                server.registry.snapshot(), indent=2
                            )
                            + "\n",
                            "application/json; charset=utf-8",
                        )
                    elif path == "/flight":
                        self._send_json(server.recorder.snapshot())
                    elif path == "/":
                        self._send_json({"endpoints": ENDPOINTS})
                    else:
                        self._send_json(
                            {
                                "error": f"unknown path {path!r}",
                                "endpoints": sorted(ENDPOINTS),
                            },
                            status=404,
                            request_id=rid,
                        )
                except BrokenPipeError:
                    pass
                except Exception as exc:
                    try:
                        self._send_error(exc, rid)
                    except OSError:
                        pass

    return Handler
