"""The concurrent pricing service: admission control over a shared engine.

:class:`PricingService` is the piece between the HTTP layer
(:mod:`repro.service.http`) and the snapshot-isolated
:class:`~repro.engine.PricingEngine`. The engine guarantees that
concurrent queries are bit-identical to a serial execution; this layer
adds the serving policies a shared engine needs under load:

* **Bounded admission queue.** Price queries pass through a
  ``queue.Queue(maxsize=max_queue)`` drained by a fixed worker pool.
  A full queue rejects *immediately* with
  :class:`~repro.errors.ServiceOverloadedError` (HTTP 429) — callers
  get a fast, honest "back off" instead of an unbounded latency tail.
* **Deadlines.** Every request carries a deadline (default
  ``deadline_s``, overridable per call). A caller gives up with
  :class:`~repro.errors.DeadlineExceededError` (HTTP 504) when it
  expires, and workers skip tickets that expired while queued instead
  of burning engine time on answers nobody is waiting for.
* **Request coalescing.** Duplicate in-flight ``(source, target)``
  queries share one ticket: the first submit enqueues it, later ones
  attach as extra waiters, and a single engine query feeds them all.
  Under a hot-pair workload this turns a thundering herd into one
  cache miss. Correctness is unaffected — every waiter receives the
  same payment pinned to the same ``graph_version``.
* **Write-through updates.** ``update_cost`` / ``add_node`` /
  ``remove_node`` bypass the queue: the engine's writer lock already
  serializes them, and queueing mutations behind queries would only
  delay the version bump that queries are supposed to observe.
* **Graceful drain.** :meth:`close` stops admissions
  (:class:`~repro.errors.ServiceClosedError` afterwards), lets queued
  work finish, joins the workers, writes a final checkpoint when the
  engine is durable, and closes the engine (flushing its WAL).

Every answer carries the ``graph_version`` it was computed at —
returned by :meth:`PricingEngine.price_versioned` under the same
read-lock hold that served the query — so callers can replay a serial
oracle against the recorded update history and verify bit-identity
(``tests/test_service.py`` and ``benchmarks/bench_service.py`` do).

Observability: counters under ``service.*`` (requests, coalesced,
rejected, timeouts, updates, batches), latency histograms
(``service.price_time``, ``service.batch_time``,
``service.update_time``) and queue-depth gauges, all in the process
registry (:mod:`repro.obs.metrics`) next to the ``engine.*`` family.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import OrderedDict
from dataclasses import asdict, dataclass
from typing import Iterable, NamedTuple

from repro.engine.engine import PricingEngine
from repro.errors import (
    DeadlineExceededError,
    InvalidRequestError,
    ServiceClosedError,
    ServiceOverloadedError,
)
from repro.obs import logging as obs_logging
from repro.obs.context import current_request_id, request_scope
from repro.obs.flight import FLIGHT
from repro.obs.metrics import REGISTRY as _metrics

__all__ = [
    "PricingService",
    "ServiceStats",
    "PricedAnswer",
    "BatchAnswer",
    "DegradePolicy",
]

_log = obs_logging.get_logger("service")


@dataclass
class ServiceStats:
    """Always-on serving counters (mirrored under ``service.*`` in the
    obs registry when collectors are enabled).

    ``requests`` counts admitted price queries (coalesced attaches
    included), ``batches`` admitted ``price_many`` calls, ``coalesced``
    requests served by attaching to an already-in-flight duplicate,
    ``rejected`` queue-full rejections (the 429s), ``timeouts``
    deadline expiries (the 504s — waiter gave up or the ticket expired
    in queue), ``updates`` applied mutations, ``degraded`` answers
    served from the last-committed cache instead of a fresh snapshot
    read, ``expired`` tickets a worker skipped because their deadline
    passed while they sat in the admission queue.
    """

    requests: int = 0
    batches: int = 0
    coalesced: int = 0
    rejected: int = 0
    timeouts: int = 0
    updates: int = 0
    degraded: int = 0
    expired: int = 0

    def as_dict(self) -> dict:
        """Plain-dict view (reports, ``/healthz``)."""
        return asdict(self)


@dataclass(frozen=True)
class DegradePolicy:
    """When may :meth:`PricingService.price` serve a stale cached answer?

    Degraded mode trades freshness for availability: instead of a
    blind 429 (queue saturated) or 503 (engine mid-recovery), a pair
    that has been answered before may be served its **last-committed**
    answer, stamped ``degraded=True`` and carrying the (possibly
    stale) ``graph_version`` it was originally computed at — explicit,
    verifiable staleness, never a silently wrong price.

    ``on_overload`` / ``while_recovering`` gate the two triggers;
    ``max_age_s`` bounds how stale a cached answer may be (``None`` =
    any age); ``max_entries`` caps the LRU cache of last answers.
    The default policy is what you get from ``DegradePolicy()``;
    passing ``degrade=None`` to the service disables degraded mode
    entirely (the pre-existing strict behavior).
    """

    on_overload: bool = True
    while_recovering: bool = True
    max_age_s: float | None = None
    max_entries: int = 4096

    def __post_init__(self) -> None:
        if self.max_entries < 1:
            raise InvalidRequestError("max_entries must be >= 1")
        if self.max_age_s is not None and self.max_age_s <= 0:
            raise InvalidRequestError("max_age_s must be positive or None")


class PricedAnswer(NamedTuple):
    """One served query: the payment, the engine version it was priced
    at, whether this caller coalesced onto another's ticket, and
    whether the answer came from the degraded-mode cache (in which
    case ``graph_version`` names the stale snapshot it was computed
    at, not the engine's current version)."""

    payment: object
    graph_version: int
    coalesced: bool
    degraded: bool = False


class BatchAnswer(NamedTuple):
    """One served batch: ``pair -> payment`` plus the pinned version."""

    payments: dict
    graph_version: int


class _Ticket:
    """One unit of queued work, shared by every coalesced waiter."""

    __slots__ = (
        "kind", "key", "pairs", "jobs", "deadline",
        "done", "result", "version", "error",
    )

    def __init__(self, kind: str, deadline: float) -> None:
        self.kind = kind  # "pair" | "batch"
        self.key: tuple[int, int] | None = None
        self.pairs: list[tuple[int, int]] | None = None
        self.jobs: int | None = None
        self.deadline = deadline  # monotonic absolute
        self.done = threading.Event()
        self.result = None
        self.version = -1
        self.error: BaseException | None = None


class PricingService:
    """Concurrent, deadline-aware pricing front end over one engine.

    Parameters
    ----------
    engine:
        The shared :class:`~repro.engine.PricingEngine`. The service
        owns its lifecycle from here on: :meth:`close` drains, writes a
        final checkpoint when durable, and closes it.
    workers:
        Threads draining the admission queue. Pricing releases the GIL
        inside the NumPy/SciPy kernels, so a handful of workers keeps
        the engine busy; more mostly adds queue fairness.
    max_queue:
        Admission-queue capacity. Submits beyond it fail fast with
        :class:`~repro.errors.ServiceOverloadedError` (HTTP 429).
    deadline_s:
        Default per-request deadline (overridable per call); expiry
        raises :class:`~repro.errors.DeadlineExceededError` (504).
    jobs:
        ``jobs=`` forwarded to :meth:`PricingEngine.price_many` for
        batch requests (``None`` = serial in-process).
    degrade:
        A :class:`DegradePolicy` enabling degraded-mode serving
        (stale-but-stamped answers when the queue is saturated or the
        engine is mid-recovery); ``None`` (default) keeps the strict
        429/503 behavior.
    """

    def __init__(
        self,
        engine: PricingEngine,
        workers: int = 4,
        max_queue: int = 64,
        deadline_s: float = 30.0,
        jobs: int | None = None,
        degrade: DegradePolicy | None = None,
    ) -> None:
        if workers < 1:
            raise InvalidRequestError(f"workers must be >= 1, got {workers}")
        if max_queue < 1:
            raise InvalidRequestError(
                f"max_queue must be >= 1, got {max_queue}"
            )
        if deadline_s <= 0:
            raise InvalidRequestError(
                f"deadline_s must be positive, got {deadline_s}"
            )
        self._engine = engine
        self._jobs = jobs
        self._deadline_s = float(deadline_s)
        self._queue: queue.Queue[_Ticket | None] = queue.Queue(
            maxsize=int(max_queue)
        )
        self._max_queue = int(max_queue)
        # (source, target) -> in-flight ticket; the coalescing map.
        self._inflight: dict[tuple[int, int], _Ticket] = {}
        self._mu = threading.Lock()
        self._closed = False
        self._degrade = degrade
        self._recovering = False
        # (source, target) -> (payment, version, monotonic commit time);
        # the degraded-mode LRU of last-committed answers (guarded by
        # _mu, maintained only when a policy is set).
        self._last_good: OrderedDict[
            tuple[int, int], tuple[object, int, float]
        ] = OrderedDict()
        self.stats = ServiceStats()
        self._workers = [
            threading.Thread(
                target=self._worker_loop,
                name=f"repro-service-{i}",
                daemon=True,
            )
            for i in range(int(workers))
        ]
        for t in self._workers:
            t.start()

    # -- introspection -------------------------------------------------------

    @property
    def engine(self) -> PricingEngine:
        """The engine this service fronts."""
        return self._engine

    @property
    def closed(self) -> bool:
        """True once :meth:`close` started draining."""
        return self._closed

    @property
    def queue_depth(self) -> int:
        """Tickets currently waiting in the admission queue."""
        return self._queue.qsize()

    @property
    def max_queue(self) -> int:
        """Admission-queue capacity (the 429 threshold)."""
        return self._max_queue

    @property
    def default_deadline_s(self) -> float:
        """Deadline applied when a request does not carry its own."""
        return self._deadline_s

    @property
    def degrade_policy(self) -> DegradePolicy | None:
        """The degraded-mode policy, or ``None`` when disabled."""
        return self._degrade

    @property
    def recovering(self) -> bool:
        """True while the engine is flagged as mid-recovery."""
        return self._recovering

    def set_recovering(self, flag: bool) -> None:
        """Flag the engine as (not) mid-recovery.

        While set, ``/readyz`` reports not-ready and — with a
        :class:`DegradePolicy` whose ``while_recovering`` is on —
        :meth:`price` serves cached last-committed answers instead of
        queueing fresh work.
        """
        self._recovering = bool(flag)
        if _metrics.enabled:
            _metrics.set_gauge("service.recovering", 1.0 if flag else 0.0)

    def __repr__(self) -> str:
        return (
            f"PricingService(workers={len(self._workers)}, "
            f"queue={self.queue_depth}/{self._max_queue}, "
            f"closed={self._closed})"
        )

    def _count(self, name: str, n: int = 1) -> None:
        if _metrics.enabled:
            _metrics.add(f"service.{name}", n)

    def _update_gauges(self) -> None:
        if _metrics.enabled:
            _metrics.set_gauge("service.queue_depth", self.queue_depth)
            _metrics.set_gauge("service.inflight", len(self._inflight))

    def _resolve_deadline(self, deadline_s: float | None) -> float:
        budget = self._deadline_s if deadline_s is None else float(deadline_s)
        if budget <= 0:
            raise InvalidRequestError(
                f"deadline_s must be positive, got {budget}"
            )
        return time.monotonic() + budget

    # -- degraded mode -------------------------------------------------------

    def _degraded_answer_locked(
        self, key: tuple[int, int]
    ) -> PricedAnswer | None:
        """The cached last-committed answer for ``key`` (caller holds _mu).

        Returns ``None`` when nothing usable is cached — the caller
        then falls through to the strict path (queue or reject).
        """
        policy = self._degrade
        entry = self._last_good.get(key)
        if policy is None or entry is None:
            return None
        payment, version, committed_at = entry
        if (
            policy.max_age_s is not None
            and time.monotonic() - committed_at > policy.max_age_s
        ):
            return None
        self._last_good.move_to_end(key)
        self.stats.degraded += 1
        self._count("degraded")
        FLIGHT.record(
            "service.degraded",
            request_id=current_request_id(),
            version=version,
        )
        return PricedAnswer(
            payment, version, coalesced=False, degraded=True
        )

    def _record_last_good_locked(
        self, key: tuple[int, int], payment: object, version: int
    ) -> None:
        policy = self._degrade
        if policy is None:
            return
        self._last_good[key] = (payment, version, time.monotonic())
        self._last_good.move_to_end(key)
        while len(self._last_good) > policy.max_entries:
            self._last_good.popitem(last=False)

    # -- queries -------------------------------------------------------------

    def price(
        self, source: int, target: int, deadline_s: float | None = None
    ) -> PricedAnswer:
        """Price one request through the admission queue.

        Coalesces onto an in-flight duplicate when one exists. Raises
        :class:`~repro.errors.ServiceOverloadedError` on a full queue,
        :class:`~repro.errors.DeadlineExceededError` on expiry,
        :class:`~repro.errors.ServiceClosedError` after :meth:`close`,
        and otherwise exactly what the engine raises
        (:class:`~repro.errors.DisconnectedError`, ...).
        """
        deadline = self._resolve_deadline(deadline_s)
        key = (int(source), int(target))
        with self._mu:
            if self._closed:
                raise ServiceClosedError(
                    "service is draining; request not admitted"
                )
            policy = self._degrade
            if (
                self._recovering
                and policy is not None
                and policy.while_recovering
            ):
                stale = self._degraded_answer_locked(key)
                if stale is not None:
                    return stale
            ticket = self._inflight.get(key)
            coalesced = ticket is not None
            if coalesced:
                # Attach to the duplicate's ticket. Keep the ticket
                # alive at least as long as the latest waiter cares.
                ticket.deadline = max(ticket.deadline, deadline)
                self.stats.coalesced += 1
                self._count("coalesced")
            else:
                ticket = _Ticket("pair", deadline)
                ticket.key = key
                try:
                    self._queue.put_nowait(ticket)
                except queue.Full:
                    if policy is not None and policy.on_overload:
                        stale = self._degraded_answer_locked(key)
                        if stale is not None:
                            return stale
                    self.stats.rejected += 1
                    self._count("rejected")
                    raise ServiceOverloadedError(
                        f"admission queue full ({self._max_queue} "
                        "tickets); retry with backoff"
                    ) from None
                self._inflight[key] = ticket
            self.stats.requests += 1
            self._count("requests")
            self._update_gauges()
        return PricedAnswer(
            *self._await_ticket(ticket, deadline), coalesced=coalesced
        )

    def price_many(
        self,
        pairs: Iterable[tuple[int, int]],
        deadline_s: float | None = None,
    ) -> BatchAnswer:
        """Price a batch through the admission queue (one ticket).

        Batches are not coalesced (each is assumed distinct) but share
        the queue's backpressure and deadline rules; the whole batch is
        priced under one engine read-lock hold, so every payment in the
        answer carries the same ``graph_version``.
        """
        deadline = self._resolve_deadline(deadline_s)
        batch = [(int(s), int(t)) for s, t in pairs]
        if not batch:
            raise InvalidRequestError("pairs must be non-empty")
        with self._mu:
            if self._closed:
                raise ServiceClosedError(
                    "service is draining; request not admitted"
                )
            ticket = _Ticket("batch", deadline)
            ticket.pairs = batch
            ticket.jobs = self._jobs
            try:
                self._queue.put_nowait(ticket)
            except queue.Full:
                self.stats.rejected += 1
                self._count("rejected")
                raise ServiceOverloadedError(
                    f"admission queue full ({self._max_queue} tickets); "
                    "retry with backoff"
                ) from None
            self.stats.batches += 1
            self._count("batches")
            self._update_gauges()
        return BatchAnswer(*self._await_ticket(ticket, deadline))

    def _await_ticket(self, ticket: _Ticket, deadline: float):
        remaining = deadline - time.monotonic()
        if not ticket.done.wait(timeout=max(0.0, remaining)):
            self.stats.timeouts += 1
            self._count("timeouts")
            raise DeadlineExceededError(
                f"request deadline expired after "
                f"{self._deadline_s if remaining <= 0 else remaining:.3f}s "
                "waiting for an answer"
            )
        if ticket.error is not None:
            raise ticket.error
        return ticket.result, ticket.version

    # -- updates (write-through; the engine's writer lock serializes) --------

    def update_cost(self, node_or_edge, value: float) -> int:
        """Apply a cost re-declaration; returns the published version."""
        self._check_admitting()
        t0 = time.perf_counter()
        version = self._engine.update_cost(node_or_edge, value)
        self._note_update(t0)
        return version

    def add_node(self, cost: float = 0.0, neighbors=(), arcs=()) -> int:
        """Grow the graph by one node; returns the new node's id."""
        self._check_admitting()
        t0 = time.perf_counter()
        node = self._engine.add_node(cost=cost, neighbors=neighbors, arcs=arcs)
        self._note_update(t0)
        return node

    def remove_node(self, node: int) -> int:
        """Disconnect a node; returns the published version."""
        self._check_admitting()
        t0 = time.perf_counter()
        version = self._engine.remove_node(node)
        self._note_update(t0)
        return version

    def graph(self):
        """The current ``(graph, version)`` snapshot, read atomically."""
        self._check_admitting()
        return self._engine.graph_snapshot()

    def _check_admitting(self) -> None:
        if self._closed:
            raise ServiceClosedError(
                "service is draining; request not admitted"
            )

    def _note_update(self, t0: float) -> None:
        self.stats.updates += 1
        self._count("updates")
        if _metrics.enabled:
            _metrics.observe("service.update_time", time.perf_counter() - t0)

    # -- worker pool ---------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            ticket = self._queue.get()
            try:
                if ticket is None:
                    return  # drain sentinel
                self._serve_ticket(ticket)
            finally:
                self._queue.task_done()

    def _serve_ticket(self, ticket: _Ticket) -> None:
        t0 = time.perf_counter()
        if t0 >= ticket.deadline:
            # Expired while queued: don't burn engine time on an
            # answer nobody is waiting for. The waiter already raised
            # (and counted) its own timeout; setting the error keeps
            # late coalescers honest too.
            self.stats.expired += 1
            self._count("expired_in_queue")
            FLIGHT.record("service.expired_in_queue")
            ticket.error = DeadlineExceededError(
                "request expired in the admission queue"
            )
        else:
            try:
                with request_scope():
                    if ticket.kind == "pair":
                        ticket.result, ticket.version = (
                            self._engine.price_versioned(*ticket.key)
                        )
                    else:
                        ticket.result, ticket.version = (
                            self._engine.price_many_versioned(
                                ticket.pairs, jobs=ticket.jobs
                            )
                        )
            except BaseException as exc:  # delivered to every waiter
                ticket.error = exc
        # Unregister before waking waiters: a waiter that immediately
        # re-submits the same key must start a fresh ticket, not
        # re-attach to this finished one. Committed answers also feed
        # the degraded-mode cache under the same lock hold.
        if ticket.key is not None:
            with self._mu:
                self._inflight.pop(ticket.key, None)
                if ticket.error is None:
                    self._record_last_good_locked(
                        ticket.key, ticket.result, ticket.version
                    )
        ticket.done.set()
        if _metrics.enabled:
            name = (
                "service.price_time"
                if ticket.kind == "pair"
                else "service.batch_time"
            )
            _metrics.observe(name, time.perf_counter() - t0)
            self._update_gauges()

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Graceful drain: finish queued work, then retire the engine.

        Stops admitting (new submits raise
        :class:`~repro.errors.ServiceClosedError`), waits for the queue
        to empty and in-flight tickets to finish, joins the worker
        pool, writes a final checkpoint when the engine is durable, and
        closes the engine — flushing its WAL. Idempotent.
        """
        with self._mu:
            if self._closed:
                return
            self._closed = True
        self._queue.join()  # queued tickets all served
        for _ in self._workers:
            self._queue.put(None)  # one sentinel per worker
        for t in self._workers:
            t.join(timeout=30.0)
        if self._engine.durable and not self._engine.closed:
            self._engine.checkpoint()
        self._engine.close()
        self._update_gauges()
        _log.info(
            "service drained",
            extra={
                "requests": self.stats.requests,
                "coalesced": self.stats.coalesced,
                "rejected": self.stats.rejected,
                "timeouts": self.stats.timeouts,
                "updates": self.stats.updates,
            },
        )

    def __enter__(self) -> "PricingService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
