"""Resilient HTTP client for the pricing service.

The paper's mechanism is only incentive-compatible if every node can
actually *obtain* its payment answer — in a selfish-network deployment
a pricing endpoint that times out is indistinguishable from a
strategic refusal. This module is the availability layer on the
caller's side of the wire:

* :class:`BackoffPolicy` — capped exponential backoff with **full
  jitter** (``delay = U(0, min(cap, base * 2**attempt))``). The jitter
  RNG is a dedicated seeded :class:`random.Random`, so retry schedules
  are reproducible in tests and chaos runs without perturbing any
  other seeded stream.
* :class:`CircuitBreaker` — the classic closed → open → half-open
  machine over a sliding window of attempt outcomes. While open, calls
  fail fast with :class:`~repro.errors.CircuitOpenError` instead of
  piling load on a struggling server; after ``cooldown_s`` a bounded
  number of half-open probes decide whether to close again.
  Transitions are counted as ``service.breaker_*`` metrics.
* :class:`PricingClient` — a stdlib-:mod:`http.client` front end to
  :class:`~repro.service.ServiceServer` that retries transport
  failures and retryable statuses (429/500/502/503/504), honors
  ``Retry-After``, propagates the caller's remaining deadline to the
  server via the ``X-Deadline-S`` header, and re-raises server error
  envelopes as their original taxonomy classes
  (:func:`~repro.errors.error_for_code`).

Retry safety is not symmetric across endpoints. ``/v1/price`` and
``/v1/price_many`` are GET-safe reads — retried unconditionally.
``/v1/update`` mutates: the client attaches a deterministic
``Idempotency-Key`` header, the server replays the cached first
response for a duplicate key, and — second line of defense, surviving
a server restart that drops the cache — re-applying ``update_cost``
with an unchanged value is a version-preserving no-op in the engine.

Determinism: with a fixed ``seed`` the client's jitter schedule and
idempotency keys are reproducible; the breaker takes an injectable
``time_fn`` so its state machine can be driven with a fake clock in
tests.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
import urllib.parse
from collections import deque
from dataclasses import dataclass, field
from random import Random

from repro import io as repro_io
from repro.errors import (
    CircuitOpenError,
    ClientError,
    DeadlineExceededError,
    RetryExhaustedError,
    error_for_code,
)
from repro.obs.metrics import REGISTRY, MetricsRegistry

__all__ = [
    "BackoffPolicy",
    "CircuitBreaker",
    "ClientStats",
    "PricingClient",
    "RETRYABLE_STATUSES",
]

#: Statuses a retry can help with: serving-layer pushback (429 queue
#: full, 503 draining/recovering, 504 deadline) and server-side faults
#: (500/502, e.g. injected by the chaos plan or a mid-crash worker).
RETRYABLE_STATUSES = frozenset({429, 500, 502, 503, 504})

#: Transport-level failures worth retrying: refused/reset connections,
#: timeouts, torn responses (http.client raises ``IncompleteRead`` /
#: ``BadStatusLine``, both :class:`http.client.HTTPException`).
_TRANSPORT_ERRORS = (OSError, http.client.HTTPException)


@dataclass(frozen=True)
class BackoffPolicy:
    """Capped exponential backoff with full jitter.

    ``delay(attempt, rng) = rng.uniform(0, min(cap_s, base_s * 2**attempt))``
    — the AWS "full jitter" scheme: retries from a thundering herd
    spread uniformly instead of re-synchronizing on power-of-two
    boundaries. ``max_retries`` bounds *re*-tries (total attempts =
    ``max_retries + 1``).
    """

    max_retries: int = 4
    base_s: float = 0.05
    cap_s: float = 2.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.base_s < 0 or self.cap_s < 0:
            raise ValueError("base_s and cap_s must be >= 0")

    def delay_s(self, attempt: int, rng: Random) -> float:
        """The jittered sleep before retry number ``attempt`` (0-based)."""
        ceiling = min(self.cap_s, self.base_s * (2.0 ** attempt))
        return rng.uniform(0.0, ceiling)


class CircuitBreaker:
    """Per-host circuit breaker: closed → open → half-open → closed.

    Outcomes (success/failure) of the last ``window`` attempts feed a
    failure-rate check: once at least ``min_volume`` outcomes are
    recorded and the failure fraction reaches ``failure_threshold``,
    the breaker **opens** and :meth:`allow` returns ``False`` for
    ``cooldown_s`` seconds. It then goes **half-open**: up to
    ``half_open_probes`` in-flight probe calls are allowed; the first
    probe success closes the breaker (window cleared), the first
    failure re-opens it for another cooldown.

    Thread-safe; shareable between every client talking to one host.
    ``time_fn`` is injectable so tests can drive the machine with a
    fake clock.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        *,
        window: int = 20,
        failure_threshold: float = 0.5,
        min_volume: int = 5,
        cooldown_s: float = 1.0,
        half_open_probes: int = 1,
        time_fn=time.monotonic,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        if not 0.0 < failure_threshold <= 1.0:
            raise ValueError("failure_threshold must be in (0, 1]")
        if min_volume < 1:
            raise ValueError("min_volume must be >= 1")
        if half_open_probes < 1:
            raise ValueError("half_open_probes must be >= 1")
        self._window: deque[bool] = deque(maxlen=window)
        self._failure_threshold = float(failure_threshold)
        self._min_volume = int(min_volume)
        self._cooldown_s = float(cooldown_s)
        self._half_open_probes = int(half_open_probes)
        self._time = time_fn
        self._metrics = REGISTRY if metrics is None else metrics
        self._mu = threading.Lock()
        self._state = self.CLOSED
        self._opened_at = 0.0
        self._probes_in_flight = 0

    @property
    def state(self) -> str:
        with self._mu:
            self._maybe_half_open_locked()
            return self._state

    def allow(self) -> bool:
        """May a call proceed right now? (Reserves a half-open probe.)"""
        with self._mu:
            self._maybe_half_open_locked()
            if self._state == self.OPEN:
                self._metrics.add("service.breaker_short_circuits")
                return False
            if self._state == self.HALF_OPEN:
                if self._probes_in_flight >= self._half_open_probes:
                    self._metrics.add("service.breaker_short_circuits")
                    return False
                self._probes_in_flight += 1
            return True

    def record_success(self) -> None:
        with self._mu:
            if self._state == self.HALF_OPEN:
                self._transition_locked(self.CLOSED)
                self._window.clear()
                self._probes_in_flight = 0
            self._window.append(True)

    def record_failure(self) -> None:
        with self._mu:
            if self._state == self.HALF_OPEN:
                self._transition_locked(self.OPEN)
                self._opened_at = self._time()
                self._probes_in_flight = 0
                return
            self._window.append(False)
            if self._state == self.CLOSED and self._trips_locked():
                self._transition_locked(self.OPEN)
                self._opened_at = self._time()

    def _trips_locked(self) -> bool:
        if len(self._window) < self._min_volume:
            return False
        failures = sum(1 for ok in self._window if not ok)
        return failures / len(self._window) >= self._failure_threshold

    def _maybe_half_open_locked(self) -> None:
        if self._state == self.OPEN:
            if self._time() - self._opened_at >= self._cooldown_s:
                self._transition_locked(self.HALF_OPEN)
                self._probes_in_flight = 0

    def _transition_locked(self, state: str) -> None:
        if state == self._state:
            return
        self._state = state
        self._metrics.add(f"service.breaker_{state}")
        # Gauge encoding: 0 closed, 1 open, 0.5 half-open.
        value = {self.CLOSED: 0.0, self.OPEN: 1.0, self.HALF_OPEN: 0.5}[state]
        self._metrics.set_gauge("service.breaker_state", value)


@dataclass
class ClientStats:
    """Counters a :class:`PricingClient` keeps (a mutable snapshot)."""

    requests: int = 0
    retries: int = 0
    transport_failures: int = 0
    server_errors: int = 0
    short_circuits: int = 0
    deadline_expired: int = 0
    degraded_answers: int = 0
    idempotent_replays: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "requests": self.requests,
            "retries": self.retries,
            "transport_failures": self.transport_failures,
            "server_errors": self.server_errors,
            "short_circuits": self.short_circuits,
            "deadline_expired": self.deadline_expired,
            "degraded_answers": self.degraded_answers,
            "idempotent_replays": self.idempotent_replays,
        }


@dataclass
class _Attempt:
    """Outcome of one wire attempt (internal)."""

    status: int = 0
    headers: dict[str, str] = field(default_factory=dict)
    doc: object = None
    transport_error: BaseException | None = None


class PricingClient:
    """Retrying, breaker-guarded client for the pricing HTTP API.

    One persistent connection per calling thread (``http.client``
    connections are not thread-safe; the client object is — stats and
    the jitter RNG are lock-guarded, connections live in
    ``threading.local``). Pass a shared :class:`CircuitBreaker` to let
    several clients agree on a host's health.

    ``deadline_s`` is the *total* per-call budget: connect + every
    attempt + every backoff sleep. The remaining budget is propagated
    to the server as ``X-Deadline-S`` on each attempt so the admission
    queue can drop work the caller has already given up on.
    """

    def __init__(
        self,
        url: str,
        *,
        deadline_s: float = 30.0,
        timeout_s: float = 10.0,
        retry: BackoffPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        seed: int = 0,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        parsed = urllib.parse.urlsplit(url if "//" in url else f"http://{url}")
        if parsed.scheme not in ("", "http"):
            raise ClientError(f"unsupported scheme {parsed.scheme!r} (http only)")
        if not parsed.hostname:
            raise ClientError(f"no host in url {url!r}")
        self.host = parsed.hostname
        self.port = parsed.port or 80
        self.deadline_s = float(deadline_s)
        self.timeout_s = float(timeout_s)
        self.retry = BackoffPolicy() if retry is None else retry
        self.breaker = breaker
        self.stats = ClientStats()
        self._metrics = REGISTRY if metrics is None else metrics
        self._rng = Random(seed)
        self._mu = threading.Lock()
        self._local = threading.local()
        self._closed = False
        # Deterministic idempotency-key stream: seed-derived prefix +
        # a process-wide-unique-enough counter.
        self._idem_prefix = f"c{seed}-{self._rng.getrandbits(32):08x}"
        self._idem_seq = 0

    # ------------------------------------------------------------------
    # public API

    def price(
        self, source: int, target: int, *, deadline_s: float | None = None
    ) -> repro_io.PriceResponse:
        doc = self._call(
            "POST",
            "/v1/price",
            repro_io.PriceRequest(source=int(source), target=int(target)),
            idempotent=True,
            deadline_s=deadline_s,
        )
        resp = self._decode(doc, repro_io.PriceResponse)
        if resp.degraded:
            with self._mu:
                self.stats.degraded_answers += 1
        return resp

    def price_many(
        self,
        pairs: list[tuple[int, int]],
        *,
        deadline_s: float | None = None,
    ) -> repro_io.PriceManyResponse:
        req = repro_io.PriceManyRequest(
            pairs=tuple((int(s), int(t)) for s, t in pairs)
        )
        doc = self._call(
            "POST", "/v1/price_many", req, idempotent=True, deadline_s=deadline_s
        )
        return self._decode(doc, repro_io.PriceManyResponse)

    def update_cost(
        self, node: int, value: float, *, deadline_s: float | None = None
    ) -> repro_io.UpdateResponse:
        req = repro_io.UpdateRequest(op="cost", node=int(node), value=float(value))
        return self._update(req, deadline_s)

    def add_node(
        self,
        cost: float,
        neighbors: list[int],
        *,
        deadline_s: float | None = None,
    ) -> repro_io.UpdateResponse:
        req = repro_io.UpdateRequest(
            op="add_node", cost=float(cost), neighbors=tuple(int(v) for v in neighbors)
        )
        return self._update(req, deadline_s)

    def remove_node(
        self, node: int, *, deadline_s: float | None = None
    ) -> repro_io.UpdateResponse:
        req = repro_io.UpdateRequest(op="remove_node", node=int(node))
        return self._update(req, deadline_s)

    def graph(self, *, deadline_s: float | None = None) -> repro_io.GraphResponse:
        doc = self._call(
            "GET", "/v1/graph", None, idempotent=True, deadline_s=deadline_s
        )
        return self._decode(doc, repro_io.GraphResponse)

    def healthz(self, *, deadline_s: float | None = None) -> dict:
        return self._call(
            "GET", "/healthz", None, idempotent=True, deadline_s=deadline_s
        )

    def readyz(self) -> tuple[bool, dict]:
        """One non-retried readiness probe: ``(ready, body)``."""
        attempt = self._attempt_once("GET", "/readyz", None, self.timeout_s, None)
        if attempt.transport_error is not None:
            raise ClientError(
                f"readyz probe failed: {attempt.transport_error}"
            ) from attempt.transport_error
        doc = attempt.doc if isinstance(attempt.doc, dict) else {}
        return attempt.status == 200, doc

    def close(self) -> None:
        self._closed = True
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            self._local.conn = None
            try:
                conn.close()
            except OSError:
                pass

    def __enter__(self) -> "PricingClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # retry loop

    def _update(
        self, req: repro_io.UpdateRequest, deadline_s: float | None
    ) -> repro_io.UpdateResponse:
        with self._mu:
            self._idem_seq += 1
            key = f"{self._idem_prefix}-{self._idem_seq}"
        doc = self._call(
            "POST",
            "/v1/update",
            req,
            idempotent=False,
            idempotency_key=key,
            deadline_s=deadline_s,
        )
        return self._decode(doc, repro_io.UpdateResponse)

    def _call(
        self,
        method: str,
        path: str,
        body: object | None,
        *,
        idempotent: bool,
        idempotency_key: str | None = None,
        deadline_s: float | None = None,
    ):
        if self._closed:
            raise ClientError("client is closed")
        with self._mu:
            self.stats.requests += 1
        self._metrics.add("service.client_requests")
        budget = self.deadline_s if deadline_s is None else float(deadline_s)
        deadline = time.monotonic() + budget
        retryable = idempotent or idempotency_key is not None
        attempt_no = 0
        last_exc: BaseException | None = None
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0.0:
                with self._mu:
                    self.stats.deadline_expired += 1
                raise DeadlineExceededError(
                    f"{method} {path}: deadline expired after "
                    f"{attempt_no} attempt(s)"
                ) from last_exc
            if self.breaker is not None and not self.breaker.allow():
                with self._mu:
                    self.stats.short_circuits += 1
                raise CircuitOpenError(
                    f"{method} {path}: circuit breaker open for "
                    f"{self.host}:{self.port}"
                ) from last_exc
            attempt = self._attempt_once(
                method, path, body, min(self.timeout_s, remaining), idempotency_key
            )
            retry_after: float | None = None
            if attempt.transport_error is not None:
                with self._mu:
                    self.stats.transport_failures += 1
                self._metrics.add("service.client_transport_failures")
                if self.breaker is not None:
                    self.breaker.record_failure()
                last_exc = attempt.transport_error
                should_retry = retryable
            elif attempt.status < 400:
                if self.breaker is not None:
                    self.breaker.record_success()
                if attempt.headers.get("idempotency-replay") == "true":
                    with self._mu:
                        self.stats.idempotent_replays += 1
                return attempt.doc
            else:
                # Typed server failure. 5xx counts against the host's
                # health; 4xx means the host is fine and *we* sent a
                # bad (or unservable-right-now) request.
                if attempt.status >= 500:
                    with self._mu:
                        self.stats.server_errors += 1
                    self._metrics.add("service.client_server_errors")
                    if self.breaker is not None:
                        self.breaker.record_failure()
                elif self.breaker is not None:
                    self.breaker.record_success()
                last_exc = self._envelope_error(attempt)
                should_retry = retryable and attempt.status in RETRYABLE_STATUSES
                retry_after = _parse_retry_after(attempt.headers)
            if attempt.transport_error is not None and not retryable:
                raise ClientError(
                    f"{method} {path}: transport failure on a "
                    f"non-retryable call: {last_exc}"
                ) from last_exc
            if not should_retry:
                raise last_exc  # type: ignore[misc]  # always set on this path
            if attempt_no >= self.retry.max_retries:
                raise RetryExhaustedError(
                    f"{method} {path}: {attempt_no + 1} attempt(s) failed; "
                    f"last: {last_exc}",
                    last=last_exc,
                ) from last_exc
            with self._mu:
                delay = self.retry.delay_s(attempt_no, self._rng)
                self.stats.retries += 1
            if retry_after is not None:
                delay = max(delay, retry_after)
            self._metrics.add("service.client_retries")
            if time.monotonic() + delay >= deadline:
                with self._mu:
                    self.stats.deadline_expired += 1
                raise DeadlineExceededError(
                    f"{method} {path}: next retry would overrun the "
                    f"deadline (backoff {delay:.3f}s)"
                ) from last_exc
            time.sleep(delay)
            attempt_no += 1

    def _attempt_once(
        self,
        method: str,
        path: str,
        body: object | None,
        timeout_s: float,
        idempotency_key: str | None,
    ) -> _Attempt:
        payload = None
        headers = {"Accept": "application/json"}
        if body is not None:
            payload = json.dumps(repro_io.to_wire(body)).encode("utf-8")
            headers["Content-Type"] = "application/json"
        headers["X-Deadline-S"] = f"{max(0.001, timeout_s):.3f}"
        if idempotency_key is not None:
            headers["Idempotency-Key"] = idempotency_key
        conn = self._connection(timeout_s)
        try:
            conn.request(method, path, body=payload, headers=headers)
            resp = conn.getresponse()
            raw = resp.read()
            status = resp.status
            hdrs = {k.lower(): v for k, v in resp.getheaders()}
        except _TRANSPORT_ERRORS as exc:
            self._drop_connection()
            return _Attempt(transport_error=exc)
        try:
            doc = json.loads(raw.decode("utf-8")) if raw else None
        except (ValueError, UnicodeDecodeError) as exc:
            # A torn/garbled body is a transport failure, not a server
            # answer — retryable for idempotent calls.
            self._drop_connection()
            return _Attempt(transport_error=exc)
        return _Attempt(status=status, headers=hdrs, doc=doc)

    def _connection(self, timeout_s: float) -> http.client.HTTPConnection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = http.client.HTTPConnection(
                self.host, self.port, timeout=timeout_s
            )
            self._local.conn = conn
        else:
            conn.timeout = timeout_s
            if conn.sock is not None:
                conn.sock.settimeout(timeout_s)
        return conn

    def _drop_connection(self) -> None:
        conn = getattr(self._local, "conn", None)
        self._local.conn = None
        if conn is not None:
            try:
                conn.close()
            except OSError:
                pass

    # ------------------------------------------------------------------
    # decoding

    def _envelope_error(self, attempt: _Attempt) -> BaseException:
        doc = attempt.doc
        if isinstance(doc, dict) and doc.get("format") == "error-response":
            try:
                err = repro_io.from_wire(doc)
            except Exception:  # malformed envelope: fall through
                err = None
            if isinstance(err, repro_io.ErrorResponse):
                return error_for_code(err.code, err.message)
        return ClientError(f"HTTP {attempt.status} with unrecognized body")

    def _decode(self, doc: object, expected: type):
        if not isinstance(doc, dict):
            raise ClientError(f"expected a wire envelope, got {type(doc).__name__}")
        decoded = repro_io.from_wire(doc)
        if not isinstance(decoded, expected):
            raise ClientError(
                f"expected {expected.__name__}, got {type(decoded).__name__}"
            )
        return decoded


def _parse_retry_after(headers: dict[str, str]) -> float | None:
    raw = headers.get("retry-after")
    if raw is None:
        return None
    try:
        return max(0.0, float(raw))
    except ValueError:
        return None
