"""Seeded server-side fault injection for :class:`ServiceServer`.

PR 3 proved the pattern at the protocol layer (seeded loss/delay/dup
with bit-identical loss=0 behavior); this is the same discipline at the
HTTP layer. A :class:`ChaosPlan` maps endpoints to :class:`ChaosRule`
probabilities and draws every fault decision from one seeded
:class:`random.Random`, so a chaos run is *reproducible*: the same
plan + seed + request order injects the same faults.

Fault kinds (per matching request, in priority order):

* ``reset_p`` — the connection is aborted with an RST (``SO_LINGER``
  zero-timeout close) before any response bytes; clients see
  ``ConnectionResetError`` / ``BadStatusLine``.
* ``torn_p`` — the *real* response is computed, its headers declare
  the full ``Content-Length``, but only half the body is written
  before the socket is torn down. This deliberately tears genuine
  payloads: an update may have been durably applied even though the
  client never saw the ack — exactly the case idempotency keys exist
  for.
* ``error_p`` — a synthetic ``error-response`` envelope with
  ``error_status`` (default 500) and code ``"internal"``.
* ``latency_p`` / ``latency_s`` — sleep before handling (combinable
  with the other faults).

The plan is **off by default**: a ``None`` plan (or one whose rules
are all zero-probability) leaves the server's code path and wire bytes
identical to a chaos-free build — asserted by
``tests/test_resilience.py``. Plans come from ``--chaos`` / the
``REPRO_CHAOS`` environment variable as inline JSON or a path to a
JSON file::

    {"seed": 7, "endpoints": {
        "/v1/price": {"error_p": 0.1, "reset_p": 0.05,
                       "latency_p": 0.2, "latency_s": 0.05},
        "*": {"torn_p": 0.02}}}

The ``"*"`` rule applies to every ``/v1/`` endpoint without an exact
rule; telemetry endpoints (``/healthz``, ``/readyz``, ``/metrics``,
...) are only faulted when named explicitly, so supervisors probing
liveness are not confused by injected faults.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, fields
from pathlib import Path
from random import Random

from repro.errors import InvalidRequestError
from repro.obs.metrics import REGISTRY, MetricsRegistry

__all__ = ["ChaosRule", "ChaosDecision", "ChaosPlan", "CHAOS_ENV"]

#: Environment variable ``serve`` reads a default plan from.
CHAOS_ENV = "REPRO_CHAOS"


@dataclass(frozen=True)
class ChaosRule:
    """Per-endpoint fault probabilities (all default to "never")."""

    latency_p: float = 0.0
    latency_s: float = 0.0
    error_p: float = 0.0
    error_status: int = 500
    reset_p: float = 0.0
    torn_p: float = 0.0

    def __post_init__(self) -> None:
        for name in ("latency_p", "error_p", "reset_p", "torn_p"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise InvalidRequestError(
                    f"chaos {name} must be in [0, 1], got {p}"
                )
        if self.latency_s < 0.0:
            raise InvalidRequestError("chaos latency_s must be >= 0")
        if not 500 <= self.error_status <= 599:
            raise InvalidRequestError(
                f"chaos error_status must be a 5xx, got {self.error_status}"
            )

    @property
    def is_null(self) -> bool:
        return (
            self.latency_p == 0.0
            and self.error_p == 0.0
            and self.reset_p == 0.0
            and self.torn_p == 0.0
        )


@dataclass(frozen=True)
class ChaosDecision:
    """The faults to inject into one request.

    ``action`` is the terminal fault (``"reset"``, ``"torn"``,
    ``"error"``, or ``None`` for "respond normally"); ``latency_s`` is
    an additional pre-handling sleep (0 = none).
    """

    latency_s: float = 0.0
    action: str | None = None
    status: int = 500


class ChaosPlan:
    """A seeded, per-endpoint fault plan (thread-safe).

    ``rules`` maps an exact path (``"/v1/price"``) or the ``"*"``
    wildcard (any ``/v1/`` endpoint) to a :class:`ChaosRule`. All
    random draws come from one lock-guarded seeded RNG in request
    order.
    """

    def __init__(
        self,
        rules: dict[str, ChaosRule] | None = None,
        *,
        seed: int = 0,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.rules = dict(rules or {})
        self.seed = int(seed)
        self._rng = Random(self.seed)
        self._mu = threading.Lock()
        self._metrics = REGISTRY if metrics is None else metrics

    @property
    def is_null(self) -> bool:
        """True when no rule can ever fire (plan is effectively off)."""
        return all(rule.is_null for rule in self.rules.values())

    def rule_for(self, path: str) -> ChaosRule | None:
        rule = self.rules.get(path)
        if rule is not None:
            return rule
        if path.startswith("/v1/"):
            return self.rules.get("*")
        return None

    def decide(self, path: str) -> ChaosDecision | None:
        """Draw the fault decision for one request (``None`` = no faults).

        Terminal faults are prioritized reset > torn > error so a rule
        with several nonzero probabilities stays well-defined; the RNG
        consumes exactly one draw per configured nonzero probability,
        keeping the stream aligned across runs.
        """
        rule = self.rule_for(path)
        if rule is None or rule.is_null:
            return None
        with self._mu:
            latency = 0.0
            if rule.latency_p > 0.0 and self._rng.random() < rule.latency_p:
                latency = rule.latency_s
            action: str | None = None
            if rule.reset_p > 0.0 and self._rng.random() < rule.reset_p:
                action = "reset"
            if action is None and rule.torn_p > 0.0:
                if self._rng.random() < rule.torn_p:
                    action = "torn"
            if action is None and rule.error_p > 0.0:
                if self._rng.random() < rule.error_p:
                    action = "error"
        if latency == 0.0 and action is None:
            return None
        if latency > 0.0:
            self._metrics.add("service.chaos_latency")
        if action is not None:
            self._metrics.add(f"service.chaos_{action}")
        return ChaosDecision(latency_s=latency, action=action, status=rule.error_status)

    # ------------------------------------------------------------------
    # (de)serialization

    def to_doc(self) -> dict:
        return {
            "seed": self.seed,
            "endpoints": {
                path: {
                    f.name: getattr(rule, f.name)
                    for f in fields(ChaosRule)
                    if getattr(rule, f.name) != f.default
                }
                for path, rule in self.rules.items()
            },
        }

    @classmethod
    def from_doc(cls, doc: dict, *, metrics: MetricsRegistry | None = None
                 ) -> "ChaosPlan":
        if not isinstance(doc, dict):
            raise InvalidRequestError("chaos plan must be a JSON object")
        endpoints = doc.get("endpoints", {})
        if not isinstance(endpoints, dict):
            raise InvalidRequestError("chaos plan 'endpoints' must be an object")
        known = {f.name for f in fields(ChaosRule)}
        rules: dict[str, ChaosRule] = {}
        for path, spec in endpoints.items():
            if not isinstance(spec, dict):
                raise InvalidRequestError(
                    f"chaos rule for {path!r} must be an object"
                )
            unknown = set(spec) - known
            if unknown:
                raise InvalidRequestError(
                    f"chaos rule for {path!r} has unknown keys {sorted(unknown)}"
                )
            rules[str(path)] = ChaosRule(**spec)
        return cls(rules, seed=int(doc.get("seed", 0)), metrics=metrics)

    @classmethod
    def from_spec(cls, spec: str, *, metrics: MetricsRegistry | None = None
                  ) -> "ChaosPlan":
        """Parse ``--chaos`` input: inline JSON or a path to a JSON file."""
        text = spec.strip()
        if not text.startswith("{"):
            path = Path(text)
            try:
                text = path.read_text(encoding="utf-8")
            except OSError as exc:
                raise InvalidRequestError(
                    f"chaos plan file {spec!r} unreadable: {exc}"
                ) from exc
        try:
            doc = json.loads(text)
        except ValueError as exc:
            raise InvalidRequestError(
                f"chaos plan is not valid JSON: {exc}"
            ) from exc
        return cls.from_doc(doc, metrics=metrics)

    @classmethod
    def from_env(cls, environ: dict[str, str] | None = None
                 ) -> "ChaosPlan | None":
        """The plan named by ``REPRO_CHAOS``, or ``None`` when unset."""
        env = os.environ if environ is None else environ
        spec = env.get(CHAOS_ENV, "").strip()
        if not spec:
            return None
        return cls.from_spec(spec)
