"""The uniform front door: one module, four verbs, consistent keywords.

The library grew one entry point per paper section, and their keywords
drifted (``method`` vs nothing, ``backend`` accepted here but not
there, four result shapes). This facade reunifies them. Every function
takes the same three knobs, validated by the shared helpers in
:mod:`repro.core.mechanism`:

``method=``
    Which algorithm serves the request. Node model: ``"fast"``
    (Algorithm 1, the default) or ``"naive"`` (per-relay Dijkstra
    oracle). Link model: ``"auto"`` (Algorithm 1 when link costs are
    symmetric, per-removal otherwise), ``"fast"``, ``"removal"``.
``backend=``
    Kernel selection — ``"auto"`` | ``"python"`` | ``"scipy"`` |
    ``"numpy"`` — identical across every function
    (:data:`repro.core.mechanism.BACKENDS`).
``on_monopoly=``
    ``"raise"`` or ``"inf"`` when a relay's removal disconnects the
    endpoints (:data:`repro.core.mechanism.MONOPOLY_POLICIES`).

The pre-facade entry points (``vcg_unicast_payments``,
``link_vcg_payments``, ...) remain public and unchanged — these are
thin delegates, not replacements. For stateful serving (cost updates,
caching, batched traffic) use :class:`repro.engine.PricingEngine`.

Quickstart (doctested — ``make doctest`` runs it in CI):

>>> from repro import api, generators
>>> g = generators.random_biconnected_graph(50, seed=7)
>>> result = api.price(g, source=13, target=0)
>>> result.path[0], result.path[-1]
(13, 0)
>>> all(result.payment(k) >= g.costs[k] for k in result.relays)
True
>>> report = api.check_truthful(g, source=13, target=0)
>>> report.ok
True
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.core.link_vcg import LinkPaymentTable
from repro.core.mechanism import (
    MechanismSpec,
    UnicastPayment,
    resolve_backend,
    resolve_monopoly_policy,
)
from repro.graph.link_graph import LinkWeightedDigraph
from repro.graph.node_graph import NodeWeightedGraph
from repro.obs import logging as obs_logging
from repro.obs.context import request_scope
from repro.obs.tracing import TRACER as _tracer

__all__ = ["price", "price_links", "price_all_pairs", "check_truthful"]

_log = obs_logging.get_logger("api")


def _require_model(graph, want: type, fn: str):
    if not isinstance(graph, want):
        raise TypeError(
            f"{fn}() expects a {want.__name__}, got {type(graph).__name__}"
        )


def price(
    graph: NodeWeightedGraph | LinkWeightedDigraph,
    source: int,
    target: int,
    method: str = "fast",
    backend: str = "auto",
    on_monopoly: str = "raise",
) -> UnicastPayment:
    """VCG outcome for one unicast request, either cost model.

    Dispatches on the graph type: a
    :class:`~repro.graph.node_graph.NodeWeightedGraph` goes through
    :func:`repro.core.vcg_unicast.vcg_unicast_payments` (Section III.A,
    ``method`` = ``"fast"``/``"naive"``); a
    :class:`~repro.graph.link_graph.LinkWeightedDigraph` delegates to
    :func:`price_links` (Section III.F; pass ``method="auto"`` — the
    node-model default ``"fast"`` is accepted there too).
    """
    if isinstance(graph, LinkWeightedDigraph):
        return price_links(
            graph,
            source,
            target,
            method=method if method != "naive" else "removal",
            backend=backend,
            on_monopoly=on_monopoly,
        )
    _require_model(graph, NodeWeightedGraph, "price")
    from repro.core.vcg_unicast import vcg_unicast_payments

    with request_scope() as rid, _tracer.span(
        "api.price", source=source, target=target, method=method
    ):
        result = vcg_unicast_payments(
            graph,
            source,
            target,
            method=method,
            backend=backend,
            on_monopoly=on_monopoly,
        )
        _log.debug(
            "request priced",
            extra={
                "request_id": rid,
                "source": source,
                "target": target,
                "method": method,
            },
        )
        return result


def price_links(
    dg: LinkWeightedDigraph,
    source: int,
    target: int,
    method: str = "auto",
    backend: str = "auto",
    on_monopoly: str = "raise",
) -> UnicastPayment:
    """VCG outcome for one request in the link-cost model (III.F).

    ``method="fast"`` runs the Algorithm-1 adaptation (requires
    symmetric link costs), ``"removal"`` the per-relay-removal oracle,
    and ``"auto"`` picks ``"fast"`` exactly when the digraph is
    symmetric. Both methods return identical payments on symmetric
    inputs (property-tested).
    """
    _require_model(dg, LinkWeightedDigraph, "price_links")
    from repro.core.fast_link_payment import (
        check_symmetric,
        fast_link_vcg_payments,
    )
    from repro.core.link_vcg import link_vcg_payments
    from repro.errors import InvalidGraphError, InvalidRequestError

    if method == "auto":
        try:
            check_symmetric(dg)
            method = "fast"
        except InvalidGraphError:
            method = "removal"
    if method not in ("fast", "removal"):
        raise InvalidRequestError(
            f"method must be 'auto', 'fast' or 'removal', got {method!r}"
        )
    with request_scope() as rid, _tracer.span(
        "api.price_links", source=source, target=target, method=method
    ):
        if method == "fast":
            result = fast_link_vcg_payments(
                dg, source, target, on_monopoly=on_monopoly, backend=backend
            )
        else:
            result = link_vcg_payments(
                dg, source, target, on_monopoly=on_monopoly, backend=backend
            )
        _log.debug(
            "request priced",
            extra={
                "request_id": rid,
                "source": source,
                "target": target,
                "method": method,
                "model": "link",
            },
        )
        return result


def price_all_pairs(
    graph: NodeWeightedGraph | LinkWeightedDigraph,
    pairs: Iterable[tuple[int, int]] | None = None,
    root: int = 0,
    backend: str = "auto",
    on_monopoly: str = "inf",
    jobs: int | None = None,
) -> Mapping[tuple[int, int], UnicastPayment] | LinkPaymentTable:
    """Batch pricing: many pairs at once, shared work across requests.

    Node model: returns ``{(source, target) -> UnicastPayment}`` via the
    shared-SPT batch engine
    (:func:`repro.core.allpairs.pairwise_vcg_payments`); ``pairs=None``
    prices every node toward ``root`` (the paper's access-point
    scenario). ``jobs`` fans the batch out over worker processes
    (``-1`` = all cores, bit-identical results).

    Link model: returns a
    :class:`~repro.core.link_vcg.LinkPaymentTable` of every source
    toward ``root`` via one reverse Dijkstra per interior routing-tree
    node (``pairs``/``jobs`` do not apply and must be left at their
    defaults).

    ``on_monopoly`` defaults to ``"inf"`` here (batches report
    monopolized sources instead of dying on the first one) — the
    per-request functions default to ``"raise"``.
    """
    resolve_backend(backend)
    resolve_monopoly_policy(on_monopoly)
    with request_scope() as rid:
        if isinstance(graph, LinkWeightedDigraph):
            if pairs is not None or jobs not in (None, 0, 1):
                from repro.errors import InvalidRequestError

                raise InvalidRequestError(
                    "link-model batches price all sources toward `root`; "
                    "pairs=/jobs= are node-model options"
                )
            from repro.core.link_vcg import all_sources_link_payments

            with _tracer.span("api.price_all_pairs", root=root, model="link"):
                result = all_sources_link_payments(
                    graph, root, on_monopoly=on_monopoly, backend=backend
                )
            _log.debug(
                "batch priced",
                extra={"request_id": rid, "root": root, "model": "link"},
            )
            return result
        _require_model(graph, NodeWeightedGraph, "price_all_pairs")
        if pairs is None:
            pairs = [(i, root) for i in range(graph.n) if i != root]
        else:
            pairs = list(pairs)
        from repro.analysis.parallel import resolve_jobs

        with _tracer.span("api.price_all_pairs", pairs=len(pairs)):
            if resolve_jobs(jobs) == 1:
                from repro.core.allpairs import pairwise_vcg_payments

                result = pairwise_vcg_payments(
                    graph, pairs, on_monopoly=on_monopoly, backend=backend
                )
            else:
                from repro.engine import PricingEngine

                eng = PricingEngine(
                    graph, backend=backend, on_monopoly=on_monopoly
                )
                result = eng.price_many(pairs, jobs=jobs)
        _log.debug(
            "batch priced",
            extra={"request_id": rid, "pairs": len(pairs)},
        )
        return result


def check_truthful(
    graph: NodeWeightedGraph | LinkWeightedDigraph,
    source: int,
    target: int,
    method: str = "fast",
    backend: str = "auto",
    agents: Iterable[int] | None = None,
):
    """Black-box truthfulness audit of the mechanism on one instance.

    Node model: sweeps individual rationality (every relay's utility
    non-negative at the truthful profile) and incentive compatibility
    (no unilateral misdeclaration beats truthtelling) through
    :mod:`repro.core.truthfulness`, against the mechanism configured
    with these exact ``method``/``backend`` knobs. Link model: the
    row-rescaling IC sweep of
    :func:`~repro.core.truthfulness.check_link_strategyproof`
    (``method``/``backend`` select nothing there and are validated
    only).

    Returns a :class:`~repro.core.truthfulness.DeviationReport`;
    ``report.ok`` is True when no profitable deviation was found.
    """
    resolve_backend(backend)
    from repro.core.truthfulness import (
        DeviationReport,
        check_individual_rationality,
        check_link_strategyproof,
        check_strategyproof,
    )

    if isinstance(graph, LinkWeightedDigraph):
        return check_link_strategyproof(graph, source, target, agents=agents)
    _require_model(graph, NodeWeightedGraph, "check_truthful")
    from repro.core.vcg_unicast import vcg_unicast_payments

    spec = MechanismSpec(
        name=f"vcg-unicast[{method}]",
        compute=lambda g, s, t, **kw: vcg_unicast_payments(
            g, s, t, method=method, backend=backend, **kw
        ),
        properties=("strategyproof", "individually-rational"),
    )
    ir = check_individual_rationality(spec, graph, source, target)
    ic = check_strategyproof(spec, graph, source, target, agents=agents)
    return DeviationReport(
        mechanism=f"{spec.name} [IR+IC]",
        checked=ir.checked + ic.checked,
        violations=ir.violations + ic.violations,
    )
