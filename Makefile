# Convenience targets for the repro repository.

PYTHON ?= python

.PHONY: install test doctest bench bench-full bench-save bench-compare experiments experiments-full examples lint lint-docs docs check-links all

# Perf-regression gate defaults: compare a fresh run against the newest
# committed BENCH_<sha>.json baseline, failing past a 50% slowdown.
BENCH_BASELINE ?= $(shell ls -t BENCH_*.json 2>/dev/null | head -1)
BENCH_CURRENT ?= bench_current.json
BENCH_THRESHOLD ?= 0.5

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# Config lives in pyproject.toml ([tool.ruff]). Skips gracefully when
# ruff is not on PATH (e.g. the minimal runtime container); CI installs
# it and fails hard.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks; \
	else \
		echo "ruff not installed; skipping lint (CI runs it)"; \
	fi

# API reference into docs/api/ (markdown always; pdoc HTML when pdoc is
# installed — CI installs it and the build fails hard on docstring or
# import errors). Also validates every intra-repo markdown link.
docs:
	$(PYTHON) tools/build_docs.py

# Just the markdown link/anchor checker (also part of `make docs`).
check-links:
	$(PYTHON) tools/build_docs.py --check-links

# Executable documentation: the doctests embedded in the api facade and
# engine docstrings (the README/engine.md quickstarts mirror these).
doctest:
	PYTHONPATH=src $(PYTHON) -m pytest --doctest-modules \
		src/repro/api.py src/repro/engine -q -p no:cacheprovider

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# The paper's exact evaluation scale (n = 100..500, 100 instances/point).
bench-full:
	REPRO_BENCH_FULL=1 $(PYTHON) -m pytest benchmarks/ --benchmark-only

# Save a machine-readable baseline named after the current commit, for
# before/after comparison across perf changes (pytest-benchmark JSON,
# with operation-count metrics attached under extra_info).
bench-save:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only \
		--benchmark-json=BENCH_$$(git rev-parse --short HEAD).json

# Run the suite, then diff it per-benchmark against the committed
# baseline (tools/bench_compare.py); non-zero exit past the threshold.
# Override pieces: make bench-compare BENCH_BASELINE=BENCH_abc.json \
#                       BENCH_THRESHOLD=0.25
bench-compare:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only \
		--benchmark-json=$(BENCH_CURRENT)
	$(PYTHON) tools/bench_compare.py $(BENCH_BASELINE) $(BENCH_CURRENT) \
		--threshold $(BENCH_THRESHOLD)

experiments:
	$(PYTHON) benchmarks/generate_experiments_md.py --instances 30

experiments-full:
	$(PYTHON) benchmarks/generate_experiments_md.py --full

examples:
	@for f in examples/*.py; do echo "== $$f"; \
		PYTHONPATH=src $(PYTHON) $$f > /dev/null || exit 1; done; \
	echo "all examples ran clean"

all: test doctest bench examples
