#!/usr/bin/env python
"""Build the API reference for every public ``repro.*`` module.

Output goes to ``docs/api/`` as one markdown file per module plus an
``index.md``. Two rendering paths:

* **pdoc** (installed in CI): renders the full HTML reference into
  ``docs/api/html/`` and — crucially — *imports every module and parses
  every docstring*, so a broken docstring or import error fails the
  docs build.
* **stdlib fallback** (minimal containers without pdoc): an
  ``inspect``-based markdown generator producing the committed
  ``docs/api/*.md`` files. This always runs, so the committed reference
  never depends on an optional dependency.

Exit code is non-zero on any import failure, missing module docstring,
or (when pdoc is available) pdoc error — that is what makes ``make
docs`` a meaningful CI gate.

Usage::

    python tools/build_docs.py [--out docs/api] [--no-pdoc]
"""

from __future__ import annotations

import argparse
import importlib
import inspect
import pkgutil
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
SRC = ROOT / "src"


def discover_modules() -> list[str]:
    """Import ``repro`` and list every public submodule, sorted.

    Returns:
        Dotted module names (``repro`` first, then ``repro.*``),
        excluding anything with an underscore-private path component.
    """
    sys.path.insert(0, str(SRC))
    import repro  # noqa: F401 - imported for side effect of discovery

    names = ["repro"]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        parts = info.name.split(".")
        if any(p.startswith("_") for p in parts):
            continue
        names.append(info.name)
    return sorted(names)


def _signature(obj) -> str:
    """Best-effort ``inspect.signature`` rendering (empty on failure)."""
    try:
        return str(inspect.signature(obj))
    except (ValueError, TypeError):
        return "(...)"


def _first_paragraph(doc: str | None) -> str:
    """First paragraph of a docstring, collapsed to one line."""
    if not doc:
        return ""
    para = inspect.cleandoc(doc).split("\n\n", 1)[0]
    return " ".join(para.split())


def _public_members(mod) -> tuple[list, list]:
    """Split a module's public API into (classes, functions).

    Honours ``__all__`` when present; otherwise takes every non-private
    top-level name actually defined in (not imported into) the module.
    """
    names = getattr(mod, "__all__", None)
    if names is None:
        names = [
            n
            for n, obj in vars(mod).items()
            if not n.startswith("_")
            and getattr(obj, "__module__", None) == mod.__name__
        ]
    classes, functions = [], []
    for name in names:
        obj = getattr(mod, name, None)
        if obj is None:
            continue
        if inspect.isclass(obj):
            classes.append((name, obj))
        elif inspect.isroutine(obj):
            functions.append((name, obj))
    return classes, functions


def render_module(name: str) -> tuple[str, list[str]]:
    """Render one module's markdown page.

    Args:
        name: Dotted module name (must be importable).

    Returns:
        ``(markdown, problems)`` where ``problems`` lists docstring
        gaps (missing module docstring) that should fail the build.
    """
    mod = importlib.import_module(name)
    problems: list[str] = []
    doc = inspect.getdoc(mod)
    if not doc:
        problems.append(f"{name}: missing module docstring")
        doc = ""
    lines = [f"# `{name}`", "", doc, ""]
    classes, functions = _public_members(mod)
    if classes:
        lines.append("## Classes")
        lines.append("")
        for cname, cls in classes:
            lines.append(f"### `{cname}{_signature(cls)}`")
            lines.append("")
            cdoc = inspect.getdoc(cls)
            lines.append(cdoc or "*(no docstring)*")
            lines.append("")
            for mname, meth in sorted(vars(cls).items()):
                if mname.startswith("_") or not inspect.isroutine(meth):
                    continue
                lines.append(f"- `{mname}{_signature(meth)}` — "
                             f"{_first_paragraph(inspect.getdoc(meth))}")
            lines.append("")
    if functions:
        lines.append("## Functions")
        lines.append("")
        for fname, fn in functions:
            lines.append(f"### `{fname}{_signature(fn)}`")
            lines.append("")
            lines.append(inspect.getdoc(fn) or "*(no docstring)*")
            lines.append("")
    return "\n".join(lines).rstrip() + "\n", problems


def build_markdown(out: Path, modules: list[str]) -> list[str]:
    """Write one page per module plus the index; return problems."""
    out.mkdir(parents=True, exist_ok=True)
    problems: list[str] = []
    index = [
        "# `repro` API reference",
        "",
        "One page per public module. Regenerate with `make docs` "
        "(generator: `tools/build_docs.py`).",
        "",
    ]
    for name in modules:
        try:
            page, probs = render_module(name)
        except Exception as exc:  # import/introspection failure = build failure
            problems.append(f"{name}: {exc!r}")
            continue
        problems.extend(probs)
        (out / f"{name}.md").write_text(page)
        mod = importlib.import_module(name)
        index.append(f"- [`{name}`]({name}.md) — "
                     f"{_first_paragraph(inspect.getdoc(mod))}")
    index.append("")
    (out / "index.md").write_text("\n".join(index))
    return problems


def run_pdoc(out: Path, modules: list[str]) -> list[str]:
    """Render the HTML reference with pdoc when it is installed.

    pdoc imports every module and parses every docstring, so this is
    the strict validation pass. Returns problems (empty when pdoc is
    absent — the fallback generator already ran).
    """
    try:
        import pdoc  # noqa: F401
        import pdoc.web  # noqa: F401 - fail early on partial installs
    except ImportError:
        print("pdoc not installed; stdlib fallback only (CI runs pdoc)")
        return []
    import os
    import subprocess

    html = out / "html"
    cmd = [sys.executable, "-m", "pdoc", "repro", "-o", str(html)]
    env = {**os.environ, "PYTHONPATH": str(SRC)}
    proc = subprocess.run(cmd, env=env, capture_output=True, text=True)
    if proc.returncode != 0:
        return [f"pdoc failed:\n{proc.stderr}"]
    print(f"pdoc HTML written to {html}")
    return []


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--out", default=str(ROOT / "docs" / "api"))
    ap.add_argument(
        "--no-pdoc",
        action="store_true",
        help="skip the pdoc HTML pass even when pdoc is installed",
    )
    args = ap.parse_args(argv)
    out = Path(args.out)

    modules = discover_modules()
    problems = build_markdown(out, modules)
    if not args.no_pdoc:
        problems += run_pdoc(out, modules)
    print(f"documented {len(modules)} modules -> {out}")
    if problems:
        print("DOCS BUILD FAILED:", file=sys.stderr)
        for p in problems:
            print(f"  - {p}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
