#!/usr/bin/env python
"""Build the API reference for every public ``repro.*`` module.

Output goes to ``docs/api/`` as one markdown file per module plus an
``index.md``. Two rendering paths:

* **pdoc** (installed in CI): renders the full HTML reference into
  ``docs/api/html/`` and — crucially — *imports every module and parses
  every docstring*, so a broken docstring or import error fails the
  docs build.
* **stdlib fallback** (minimal containers without pdoc): an
  ``inspect``-based markdown generator producing the committed
  ``docs/api/*.md`` files. This always runs, so the committed reference
  never depends on an optional dependency.

After generating, a link checker walks every committed markdown file
(``README.md``, ``docs/**/*.md``) and fails the build on dead
intra-repo links — missing files and missing ``#anchors`` alike
(anchors use GitHub's heading-slug rules). External ``http(s)://``
links are not fetched.

Exit code is non-zero on any import failure, missing module docstring,
dead link, or (when pdoc is available) pdoc error — that is what makes
``make docs`` a meaningful CI gate.

Usage::

    python tools/build_docs.py [--out docs/api] [--no-pdoc]
    python tools/build_docs.py --check-links   # link pass only
"""

from __future__ import annotations

import argparse
import importlib
import inspect
import pkgutil
import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
SRC = ROOT / "src"


def discover_modules() -> list[str]:
    """Import ``repro`` and list every public submodule, sorted.

    Returns:
        Dotted module names (``repro`` first, then ``repro.*``),
        excluding anything with an underscore-private path component.
    """
    sys.path.insert(0, str(SRC))
    import repro  # noqa: F401 - imported for side effect of discovery

    names = ["repro"]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        parts = info.name.split(".")
        if any(p.startswith("_") for p in parts):
            continue
        names.append(info.name)
    return sorted(names)


def _signature(obj) -> str:
    """Best-effort ``inspect.signature`` rendering (empty on failure)."""
    try:
        return str(inspect.signature(obj))
    except (ValueError, TypeError):
        return "(...)"


def _first_paragraph(doc: str | None) -> str:
    """First paragraph of a docstring, collapsed to one line."""
    if not doc:
        return ""
    para = inspect.cleandoc(doc).split("\n\n", 1)[0]
    return " ".join(para.split())


def _public_members(mod) -> tuple[list, list]:
    """Split a module's public API into (classes, functions).

    Honours ``__all__`` when present; otherwise takes every non-private
    top-level name actually defined in (not imported into) the module.
    """
    names = getattr(mod, "__all__", None)
    if names is None:
        names = [
            n
            for n, obj in vars(mod).items()
            if not n.startswith("_")
            and getattr(obj, "__module__", None) == mod.__name__
        ]
    classes, functions = [], []
    for name in names:
        obj = getattr(mod, name, None)
        if obj is None:
            continue
        if inspect.isclass(obj):
            classes.append((name, obj))
        elif inspect.isroutine(obj):
            functions.append((name, obj))
    return classes, functions


def render_module(name: str) -> tuple[str, list[str]]:
    """Render one module's markdown page.

    Args:
        name: Dotted module name (must be importable).

    Returns:
        ``(markdown, problems)`` where ``problems`` lists docstring
        gaps (missing module docstring) that should fail the build.
    """
    mod = importlib.import_module(name)
    problems: list[str] = []
    doc = inspect.getdoc(mod)
    if not doc:
        problems.append(f"{name}: missing module docstring")
        doc = ""
    lines = [f"# `{name}`", "", doc, ""]
    classes, functions = _public_members(mod)
    if classes:
        lines.append("## Classes")
        lines.append("")
        for cname, cls in classes:
            lines.append(f"### `{cname}{_signature(cls)}`")
            lines.append("")
            cdoc = inspect.getdoc(cls)
            lines.append(cdoc or "*(no docstring)*")
            lines.append("")
            for mname, meth in sorted(vars(cls).items()):
                if mname.startswith("_") or not inspect.isroutine(meth):
                    continue
                lines.append(f"- `{mname}{_signature(meth)}` — "
                             f"{_first_paragraph(inspect.getdoc(meth))}")
            lines.append("")
    if functions:
        lines.append("## Functions")
        lines.append("")
        for fname, fn in functions:
            lines.append(f"### `{fname}{_signature(fn)}`")
            lines.append("")
            lines.append(inspect.getdoc(fn) or "*(no docstring)*")
            lines.append("")
    return "\n".join(lines).rstrip() + "\n", problems


def build_markdown(out: Path, modules: list[str]) -> list[str]:
    """Write one page per module plus the index; return problems."""
    out.mkdir(parents=True, exist_ok=True)
    problems: list[str] = []
    index = [
        "# `repro` API reference",
        "",
        "One page per public module. Regenerate with `make docs` "
        "(generator: `tools/build_docs.py`).",
        "",
    ]
    for name in modules:
        try:
            page, probs = render_module(name)
        except Exception as exc:  # import/introspection failure = build failure
            problems.append(f"{name}: {exc!r}")
            continue
        problems.extend(probs)
        (out / f"{name}.md").write_text(page)
        mod = importlib.import_module(name)
        index.append(f"- [`{name}`]({name}.md) — "
                     f"{_first_paragraph(inspect.getdoc(mod))}")
    index.append("")
    (out / "index.md").write_text("\n".join(index))
    return problems


def run_pdoc(out: Path, modules: list[str]) -> list[str]:
    """Render the HTML reference with pdoc when it is installed.

    pdoc imports every module and parses every docstring, so this is
    the strict validation pass. Returns problems (empty when pdoc is
    absent — the fallback generator already ran).
    """
    try:
        import pdoc  # noqa: F401
        import pdoc.web  # noqa: F401 - fail early on partial installs
    except ImportError:
        print("pdoc not installed; stdlib fallback only (CI runs pdoc)")
        return []
    import os
    import subprocess

    html = out / "html"
    cmd = [sys.executable, "-m", "pdoc", "repro", "-o", str(html)]
    env = {**os.environ, "PYTHONPATH": str(SRC)}
    proc = subprocess.run(cmd, env=env, capture_output=True, text=True)
    if proc.returncode != 0:
        return [f"pdoc failed:\n{proc.stderr}"]
    print(f"pdoc HTML written to {html}")
    return []


# ---------------------------------------------------------------------------
# link checking
# ---------------------------------------------------------------------------

# [text](target) — skipping images; nested brackets in text not needed here.
_LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
_CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def _github_slug(heading: str) -> str:
    """GitHub's anchor slug for a markdown heading.

    Lowercase, spaces to hyphens, drop everything that is not a word
    character or hyphen (backticks, punctuation); keep unicode letters.
    """
    text = heading.strip()
    # inline code/emphasis markers do not contribute to the slug
    text = re.sub(r"[`*_]", "", text)
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _anchors_of(md_path: Path) -> set[str]:
    """All heading anchors a markdown file exposes (with GitHub's
    ``-1``/``-2`` suffixing for duplicate headings)."""
    anchors: set[str] = set()
    counts: dict[str, int] = {}
    in_fence = False
    for line in md_path.read_text().splitlines():
        if _CODE_FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = _HEADING_RE.match(line)
        if not m:
            continue
        slug = _github_slug(m.group(1))
        seen = counts.get(slug, 0)
        counts[slug] = seen + 1
        anchors.add(slug if seen == 0 else f"{slug}-{seen}")
    return anchors


def _iter_links(md_path: Path):
    """Yield ``(line_number, target)`` for every markdown link,
    skipping fenced code blocks."""
    in_fence = False
    for lineno, line in enumerate(md_path.read_text().splitlines(), 1):
        if _CODE_FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for m in _LINK_RE.finditer(line):
            yield lineno, m.group(1)


def check_links(root: Path = ROOT) -> list[str]:
    """Validate every intra-repo markdown link under ``root``.

    Checks ``README.md`` and ``docs/**/*.md``. A link target may be a
    relative file path (resolved against the linking file), optionally
    with a ``#anchor`` that must match a heading in the target file.
    Absolute URLs and ``mailto:`` are skipped. Returns a list of
    ``file:line: problem`` strings (empty = clean).
    """
    files = [root / "README.md"] if (root / "README.md").exists() else []
    files += sorted((root / "docs").rglob("*.md"))
    problems: list[str] = []
    anchor_cache: dict[Path, set[str]] = {}
    for md in files:
        rel = md.relative_to(root)
        for lineno, target in _iter_links(md):
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:, …
                continue
            path_part, _, anchor = target.partition("#")
            if not path_part:
                dest = md  # same-file #anchor
            else:
                dest = (md.parent / path_part).resolve()
            if not dest.exists():
                problems.append(f"{rel}:{lineno}: dead link -> {target}")
                continue
            if anchor:
                if dest.is_dir() or dest.suffix.lower() != ".md":
                    continue  # anchors into non-markdown are not checked
                if dest not in anchor_cache:
                    anchor_cache[dest] = _anchors_of(dest)
                if anchor.lower() not in anchor_cache[dest]:
                    problems.append(
                        f"{rel}:{lineno}: dead anchor -> {target}"
                    )
    return problems


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--out", default=str(ROOT / "docs" / "api"))
    ap.add_argument(
        "--no-pdoc",
        action="store_true",
        help="skip the pdoc HTML pass even when pdoc is installed",
    )
    ap.add_argument(
        "--check-links",
        action="store_true",
        help="only run the markdown link/anchor checker",
    )
    args = ap.parse_args(argv)
    out = Path(args.out)

    if args.check_links:
        problems = check_links()
        if problems:
            print("DEAD LINKS:", file=sys.stderr)
            for p in problems:
                print(f"  - {p}", file=sys.stderr)
            return 1
        print("link check: all intra-repo links resolve")
        return 0

    modules = discover_modules()
    problems = build_markdown(out, modules)
    if not args.no_pdoc:
        problems += run_pdoc(out, modules)
    problems += check_links()
    print(f"documented {len(modules)} modules -> {out}")
    if problems:
        print("DOCS BUILD FAILED:", file=sys.stderr)
        for p in problems:
            print(f"  - {p}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
