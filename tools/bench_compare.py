#!/usr/bin/env python
"""Diff two pytest-benchmark JSON files and gate on perf regressions.

``make bench-save`` writes ``BENCH_<sha>.json`` baselines; until now
they were collected and never compared. This tool closes the loop:

* benchmarks are matched by ``fullname``
  (``benchmarks/bench_engine.py::test_engine_replay_speed``);
* per benchmark the chosen statistic (default ``min`` — the least noisy
  under CI contention) is compared as ``current / baseline``;
* a table is printed (ratio > 1 means the current run is slower), and
  the exit code is non-zero when any benchmark regressed past the
  threshold — that is what makes it a CI gate.

Benchmarks present on only one side are reported but never fail the
gate (new benchmarks have no baseline; retired ones have no current
run). A filter that matches *nothing in common* exits non-zero too —
a silently empty comparison would pass a broken gate.

Stdlib-only on purpose: CI (and `make bench-compare`) can run it
without installing the package or setting PYTHONPATH.

Usage::

    python tools/bench_compare.py BASELINE.json CURRENT.json \
        [--threshold 0.5] [--stat min|mean|median] [--only PREFIX] [--json OUT]

``--threshold 0.5`` fails on >50% slowdowns (ratio > 1.5).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

__all__ = ["load_stats", "compare", "main"]

#: Statistics pytest-benchmark records that make sense to gate on.
STATS = ("min", "max", "mean", "median", "stddev")


def load_stats(path: str | Path, stat: str) -> dict[str, float]:
    """``fullname -> seconds`` for one pytest-benchmark JSON file."""
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    out: dict[str, float] = {}
    for bench in doc.get("benchmarks", ()):
        stats = bench.get("stats") or {}
        if stat in stats:
            out[bench["fullname"]] = float(stats[stat])
    return out


def compare(
    baseline: dict[str, float],
    current: dict[str, float],
    threshold: float,
) -> dict:
    """Structured comparison of two ``fullname -> seconds`` mappings.

    Returns a document with per-benchmark rows (``ratio`` =
    current/baseline), plus the names only one side knows. A row is a
    regression when ``ratio > 1 + threshold``, an improvement when
    ``ratio < 1 / (1 + threshold)`` (symmetric in log space).
    """
    common = sorted(set(baseline) & set(current))
    rows = []
    for name in common:
        base, cur = baseline[name], current[name]
        ratio = cur / base if base > 0 else float("inf")
        verdict = "ok"
        if ratio > 1.0 + threshold:
            verdict = "SLOWER"
        elif ratio < 1.0 / (1.0 + threshold):
            verdict = "faster"
        rows.append(
            {
                "name": name,
                "baseline_s": base,
                "current_s": cur,
                "ratio": ratio,
                "verdict": verdict,
            }
        )
    return {
        "threshold": threshold,
        "rows": rows,
        "regressions": [r["name"] for r in rows if r["verdict"] == "SLOWER"],
        "improvements": [r["name"] for r in rows if r["verdict"] == "faster"],
        "only_baseline": sorted(set(baseline) - set(current)),
        "only_current": sorted(set(current) - set(baseline)),
    }


def _fmt_seconds(s: float) -> str:
    if s < 1e-3:
        return f"{s * 1e6:8.1f}us"
    if s < 1.0:
        return f"{s * 1e3:8.2f}ms"
    return f"{s:8.3f}s "


def render_table(report: dict, stat: str) -> str:
    """The comparison as an aligned ASCII table, slowest-ratio first."""
    rows = sorted(report["rows"], key=lambda r: -r["ratio"])
    width = max((len(r["name"]) for r in rows), default=20)
    lines = [
        f"{'benchmark':<{width}}  {'base ' + stat:>10} {'current':>10} "
        f"{'ratio':>7}  verdict"
    ]
    for r in rows:
        lines.append(
            f"{r['name']:<{width}}  {_fmt_seconds(r['baseline_s'])} "
            f"{_fmt_seconds(r['current_s'])} {r['ratio']:6.2f}x  "
            f"{r['verdict']}"
        )
    for name in report["only_current"]:
        lines.append(f"{name:<{width}}  {'-':>10} {'-':>10} {'-':>7}  new")
    for name in report["only_baseline"]:
        lines.append(
            f"{name:<{width}}  {'-':>10} {'-':>10} {'-':>7}  missing"
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    ap = argparse.ArgumentParser(description=__doc__.split("\n\n", 1)[0])
    ap.add_argument("baseline", help="baseline BENCH_<sha>.json")
    ap.add_argument("current", help="current benchmark JSON to judge")
    ap.add_argument(
        "--threshold",
        type=float,
        default=0.5,
        help="allowed fractional slowdown before failing "
        "(0.5 = fail past 1.5x; default %(default)s)",
    )
    ap.add_argument(
        "--stat",
        choices=STATS,
        default="min",
        help="which pytest-benchmark statistic to compare "
        "(default %(default)s)",
    )
    ap.add_argument(
        "--only",
        metavar="PREFIX",
        action="append",
        default=None,
        help="compare only benchmarks whose fullname starts with PREFIX "
        "(repeatable)",
    )
    ap.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the comparison document as JSON",
    )
    args = ap.parse_args(argv)
    if args.threshold <= 0:
        ap.error("--threshold must be positive")

    baseline = load_stats(args.baseline, args.stat)
    current = load_stats(args.current, args.stat)
    if args.only:
        def keep(name: str) -> bool:
            return any(name.startswith(p) for p in args.only)

        baseline = {k: v for k, v in baseline.items() if keep(k)}
        current = {k: v for k, v in current.items() if keep(k)}

    report = compare(baseline, current, args.threshold)
    print(render_table(report, args.stat))
    if args.json:
        Path(args.json).write_text(json.dumps(report, indent=2) + "\n")

    n = len(report["rows"])
    if n == 0:
        print(
            "error: no benchmarks in common between "
            f"{args.baseline} and {args.current}"
            + (f" (filter: {args.only})" if args.only else ""),
            file=sys.stderr,
        )
        return 2
    regressions = report["regressions"]
    if regressions:
        print(
            f"\nFAIL: {len(regressions)}/{n} benchmark(s) regressed past "
            f"{args.threshold:.0%}: {', '.join(regressions)}",
            file=sys.stderr,
        )
        return 1
    print(
        f"\nOK: {n} benchmark(s) within {args.threshold:.0%} of baseline "
        f"({len(report['improvements'])} faster, "
        f"{len(report['only_current'])} new, "
        f"{len(report['only_baseline'])} missing)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
