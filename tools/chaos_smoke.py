#!/usr/bin/env python
"""The chaos gate: kill the server mid-load, demand bit-identical answers.

This is the end-to-end acceptance check for the resilience layer, run
in CI and by hand::

    PYTHONPATH=src python tools/chaos_smoke.py --duration 30

It boots ``python -m repro.cli serve`` under a
:class:`~repro.service.Supervisor` with a durable WAL and a **seeded**
:class:`~repro.service.ChaosPlan` (latency + injected 5xx + connection
resets + torn responses on every ``/v1/`` endpoint), then drives it
with :class:`~repro.service.PricingClient` workers that interleave
price reads and cost re-declarations, retrying through every fault.
Mid-run the child is ``kill -9``-ed once; the supervisor restarts it
with ``--recover`` (checkpoint + WAL replay) while the clients keep
retrying through the outage.

The gate: afterwards, a **serial oracle replay** of the recorded
update history recomputes every priced answer at its pinned
``graph_version`` — every payment must match bit-identically
(``path``, ``lcp_cost``, and each per-node payment). Degraded answers
(stamped ``degraded=true``) are reported separately and excluded from
the exact gate, since their contract is "possibly stale but correctly
versioned" — the replay still checks them *at the version they claim*.

Exit codes: 0 green; 1 mismatches/unverifiable answers; 2 operational
failure (server never ready, client gave up, restart budget spent).
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from pathlib import Path
from random import Random
from tempfile import TemporaryDirectory

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.vcg_unicast import vcg_unicast_payments  # noqa: E402
from repro.errors import ReproError, error_code  # noqa: E402
from repro.service import BackoffPolicy, PricingClient  # noqa: E402
from repro.service.supervisor import Supervisor, serve_argv  # noqa: E402

#: The default seeded fault plan (inline JSON so CI logs show it).
DEFAULT_PLAN = {
    "seed": 2004,
    "endpoints": {
        "*": {
            "latency_p": 0.10,
            "latency_s": 0.01,
            "error_p": 0.05,
            "reset_p": 0.05,
            "torn_p": 0.05,
        }
    },
}


def _free_port() -> int:
    import socket

    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


def _answer_key(payment):
    return (payment.path, payment.lcp_cost, tuple(sorted(payment.payments.items())))


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--nodes", type=int, default=32)
    ap.add_argument("--seed", type=int, default=7)
    ap.add_argument("--duration", type=float, default=30.0,
                    help="seconds of client load (the kill fires halfway)")
    ap.add_argument("--clients", type=int, default=3)
    ap.add_argument("--update-frac", type=float, default=0.2)
    ap.add_argument("--port", type=int, default=0,
                    help="server port (0 = pick a free one)")
    ap.add_argument("--plan", default=None,
                    help="chaos plan JSON (default: the built-in seeded plan)")
    ap.add_argument("--no-kill", action="store_true",
                    help="skip the mid-run kill -9 (chaos plan only)")
    args = ap.parse_args(argv)

    plan_json = args.plan or json.dumps(DEFAULT_PLAN)
    port = args.port or _free_port()
    url = f"http://127.0.0.1:{port}"

    with TemporaryDirectory(prefix="repro-chaos-") as tmp:
        child_argv = serve_argv(
            nodes=args.nodes,
            seed=args.seed,
            port=port,
            checkpoint_dir=str(Path(tmp) / "ckpt"),
            workers=4,
            fsync="always",
            extra=("--chaos", plan_json),
        )
        sup = Supervisor(
            child_argv,
            url,
            probe_interval_s=0.2,
            restart_backoff_s=0.2,
            max_restarts=5,
        )
        print(f"chaos_smoke: serving {args.nodes} nodes on {url}")
        print(f"chaos_smoke: plan {plan_json}")
        with sup:
            try:
                sup.wait_ready(timeout_s=60.0)
            except ReproError as exc:
                print(f"chaos_smoke: server never became ready: {exc}",
                      file=sys.stderr)
                return 2

            head_client = PricingClient(url, deadline_s=30.0)
            head = head_client.graph()
            g0, v0 = head.graph, head.graph_version
            head_client.close()

            mu = threading.Lock()
            updates: list[tuple[int, int, float]] = []
            records: list[tuple[int, int, int, object, bool]] = []
            failures: list[str] = []
            stop_at = time.monotonic() + args.duration

            def worker(idx: int) -> None:
                # Worker 0 is the *only* writer. With one writer, an
                # update whose ack is lost to the kill re-applies as a
                # version-preserving no-op at the same version, so the
                # recorded (version, node, value) history stays a
                # faithful serial order for the oracle replay. (A
                # second writer could bump the version in between,
                # making the retried ack ambiguous.)
                rng = Random(1000 + idx)
                client = PricingClient(
                    url,
                    deadline_s=60.0,
                    retry=BackoffPolicy(max_retries=12, base_s=0.05,
                                        cap_s=1.0),
                    seed=idx,
                )
                try:
                    while time.monotonic() < stop_at:
                        try:
                            if idx == 0 and rng.random() < args.update_frac:
                                node = rng.randrange(1, args.nodes)
                                value = round(rng.uniform(0.5, 20.0), 3)
                                resp = client.update_cost(node, value)
                                with mu:
                                    updates.append(
                                        (resp.graph_version, node, value)
                                    )
                            else:
                                s = rng.randrange(1, args.nodes)
                                resp = client.price(s, 0)
                                with mu:
                                    records.append((
                                        s, 0, resp.graph_version,
                                        resp.payment, resp.degraded,
                                    ))
                        except ReproError as exc:
                            with mu:
                                failures.append(
                                    f"[{error_code(exc)}] {exc}"
                                )
                            return
                finally:
                    client.close()

            threads = [
                threading.Thread(target=worker, args=(i,), daemon=True)
                for i in range(args.clients)
            ]
            for t in threads:
                t.start()
            if not args.no_kill:
                time.sleep(args.duration / 2.0)
                try:
                    pid = sup.kill_child()
                    print(f"chaos_smoke: kill -9 pid {pid} (mid-load)")
                except ReproError as exc:
                    print(f"chaos_smoke: kill failed: {exc}", file=sys.stderr)
            for t in threads:
                t.join(timeout=args.duration + 120.0)

            restarts = sup.restarts
            gave_up = sup.failed

        if failures:
            for f in failures:
                print(f"chaos_smoke: client failure: {f}", file=sys.stderr)
            return 2
        if gave_up:
            print("chaos_smoke: supervisor restart budget spent",
                  file=sys.stderr)
            return 2
        if not args.no_kill and restarts < 1:
            print("chaos_smoke: the kill was never observed/restarted",
                  file=sys.stderr)
            return 2

        # Serial oracle replay at every pinned graph_version. Updates
        # are deduped: a retried mutation acked at the same version is
        # one logical write (idempotency keys + the engine's
        # unchanged-value no-op guarantee exactly this).
        graph_at = {v0: g0}
        current = g0
        for version, node, value in sorted(set(updates)):
            current = current.with_declaration(node, value)
            graph_at[version] = current
        oracle: dict[tuple[int, int, int], tuple] = {}
        mismatches = unverifiable = degraded = 0
        for s, t, version, payment, was_degraded in records:
            if was_degraded:
                degraded += 1
            if version not in graph_at:
                unverifiable += 1
                continue
            key = (version, s, t)
            if key not in oracle:
                oracle[key] = _answer_key(vcg_unicast_payments(
                    graph_at[version], s, t, method="fast", on_monopoly="inf"
                ))
            if _answer_key(payment) != oracle[key]:
                mismatches += 1
        print(
            f"chaos_smoke: {len(records)} answers ({degraded} degraded), "
            f"{len(set(updates))} updates, {restarts} restart(s), "
            f"{len(oracle)} oracle keys, {mismatches} mismatches, "
            f"{unverifiable} unverifiable"
        )
        if mismatches or unverifiable:
            return 1
        print("chaos_smoke: PASS — bit-identical under chaos")
        return 0


if __name__ == "__main__":
    sys.exit(main())
