"""Setuptools shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so
the package installs in fully offline environments where the ``wheel``
package is unavailable and PEP-517 editable installs therefore fail:

    python setup.py develop
"""

from setuptools import setup

setup()
