#!/usr/bin/env python
"""The paper's motivating scenario: a campus wireless network.

Students' battery-powered devices relay traffic to the access point only
because they are paid to. This example deploys a 2000 m x 2000 m campus
network (the paper's first-simulation setup), prices every node's route
with the link-cost VCG mechanism of Section III.F, and reports the
Section III.G overpayment statistics — the cost of buying cooperation.

Run:  python examples/campus_unicast.py
"""

import numpy as np

from repro.core.link_vcg import all_sources_link_payments, relay_link_utility
from repro.core.overpayment import overpayment_summary, per_hop_breakdown
from repro.utils.tables import ascii_table
from repro.wireless.deployment import sample_udg_deployment


def main() -> None:
    # 1. Deploy 150 devices uniformly on campus; 300 m radios; the energy
    #    to push a packet over distance d costs d^2 (path loss).
    dep = sample_udg_deployment(150, range_m=300.0, kappa=2.0, seed=42)
    print(
        f"deployed {dep.n} devices "
        f"({dep.dropped} could not reach the AP and were dropped), "
        f"{dep.digraph.num_arcs} radio links, "
        f"mean degree {dep.mean_out_degree():.1f}"
    )

    # 2. Everyone routes to the access point (node 0); the mechanism
    #    computes every payment in one batch (one compiled Dijkstra per
    #    interior routing-tree node).
    table = all_sources_link_payments(dep.digraph, root=0)

    # 3. How much does cooperation cost? The headline metrics of III.G.
    summary = overpayment_summary(table)
    print("\n" + summary.describe())

    # 4. A few concrete sessions.
    rows = []
    for i in sorted(table.sources())[:8]:
        r = table.payment_result(i)
        if r.lcp_cost <= 0:
            continue
        rows.append(
            [
                i,
                len(r.path) - 1,
                round(r.lcp_cost, 1),
                round(r.total_payment, 1),
                round(r.overpayment_ratio, 3),
            ]
        )
    print()
    print(
        ascii_table(
            ["source", "hops", "relay cost", "payment", "ratio"],
            rows,
            title="sample sessions",
        )
    )

    # 5. Per-hop structure (Figure 3(d)): far-away sources do not overpay
    #    proportionally more.
    buckets = per_hop_breakdown(table)
    print()
    print(
        ascii_table(
            ["hops", "sources", "avg ratio", "max ratio"],
            [
                [b.hops, b.count, round(b.mean_ratio, 3), round(b.max_ratio, 3)]
                for b in buckets
            ],
            title="overpayment by hop distance",
        )
    )

    # 6. Every relay profits — that is what buys cooperation.
    worst_profit = np.inf
    for i in table.sources():
        r = table.payment_result(i)
        for k in r.relays:
            worst_profit = min(worst_profit, relay_link_utility(dep.digraph, r, k))
    print(f"\nminimum relay profit across all sessions: {worst_profit:.4f} (>= 0)")


if __name__ == "__main__":
    main()
