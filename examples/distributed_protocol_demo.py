#!/usr/bin/env python
"""The two-stage distributed protocol, honest and under attack.

Wireless ad hoc networks have no centralized authority (Section III.C):
the selfish nodes themselves build the routing tree (stage 1) and compute
the very payments they will owe (stage 2). This demo runs both stages on
a message-passing simulator and shows:

* the converged distributed payments equal the centralized mechanism's;
* convergence takes far fewer than the paper's n-round bound;
* a node that *hides a link* (Figure 2's manipulation) is challenged and
  flagged by the Algorithm-2 stage-1 rules;
* a node that *mis-computes its own payments* is caught by the
  Algorithm-2 audit (every announcement names its trigger, and the
  trigger re-derives it).

Run:  python examples/distributed_protocol_demo.py
"""

from repro import generators, vcg_unicast_payments
from repro.distributed.adversary import LinkHiderSptNode, PaymentInflatorNode
from repro.distributed.payment_protocol import run_distributed_payments
from repro.distributed.secure import run_secure_distributed_payments


def honest_run() -> None:
    print("=" * 70)
    print("1. honest network: distributed == centralized")
    g = generators.random_biconnected_graph(25, extra_edge_prob=0.2, seed=11)
    res = run_distributed_payments(g, root=0)
    stats = res.stats
    print(
        f"   converged in {stats.rounds} rounds "
        f"(paper bound: <= n = {g.n}), {stats.broadcasts} broadcasts"
    )
    worst = 0.0
    for i in range(1, g.n):
        cent = vcg_unicast_payments(g, i, 0, on_monopoly="inf")
        for k in cent.relays:
            worst = max(worst, abs(res.payment(i, k) - cent.payment(k)))
    print(f"   max |distributed - centralized| over all entries: {worst:.2e}")


def link_hider_run() -> None:
    print("=" * 70)
    print("2. Figure-2 attack in-protocol: hiding a link")
    g, src, ap = generators.fig2_example()
    hider = LinkHiderSptNode(src, float(g.costs[src]), hidden_neighbor=2)
    res = run_distributed_payments(g, root=ap, spt_processes={src: hider})
    for flag in res.all_flags:
        print(
            f"   node {flag.witness} flags node {flag.suspect}: {flag.reason}"
        )
    if not res.all_flags:
        print("   (no flags — unexpected)")
    else:
        print("   -> the liar is exposed by the neighbour it tried to ignore.")


def payment_cheat_run() -> None:
    print("=" * 70)
    print("3. cheating calculator: announcing manipulated price entries")
    g = generators.random_biconnected_graph(18, extra_edge_prob=0.25, seed=5)
    honest, _ = run_secure_distributed_payments(g, root=0)
    cheater = next(
        i for i in range(1, g.n) if honest.prices[i]
    )
    res, reports = run_secure_distributed_payments(
        g, root=0, payment_overrides={cheater: PaymentInflatorNode}
    )
    print(f"   node {cheater} halves its announced payment entries...")
    for r in reports[:4]:
        print(f"   audit: {r.describe()}")
    caught = any(r.suspect == cheater for r in reports)
    print(f"   cheater caught: {caught}")


def main() -> None:
    honest_run()
    link_hider_run()
    payment_cheat_run()


if __name__ == "__main__":
    main()
