#!/usr/bin/env python
"""Quickstart: price one unicast request with the paper's VCG mechanism.

Builds a random biconnected network of selfish nodes, routes a packet
from a source to the access point over the least cost path, and computes
the strategyproof payment to every relay (Section III.A) — then shows
why lying does not pay.

Run:  python examples/quickstart.py
"""

from repro import generators, relay_utility, vcg_unicast_payments


def main() -> None:
    # 1. A 30-node network; node 0 is the access point. Every node has a
    #    private relaying cost drawn uniformly from [1, 10].
    g = generators.random_biconnected_graph(30, extra_edge_prob=0.15, seed=7)
    source, access_point = 17, 0

    # 2. Everyone declares a cost (here: truthfully) and the mechanism
    #    computes the least cost path and the VCG payments.
    result = vcg_unicast_payments(g, source, access_point)
    print(result.describe())
    print(f"route relays and payments (payment >= declared cost, always):")
    for relay in result.relays:
        print(
            f"  relay {relay:2d}: cost {g.costs[relay]:6.3f}  "
            f"paid {result.payment(relay):6.3f}  "
            f"profit {relay_utility(result, g.costs, relay):6.3f}"
        )
    print(
        f"source pays {result.total_payment:.3f} for a path costing "
        f"{result.lcp_cost:.3f} -> overpayment ratio "
        f"{result.overpayment_ratio:.3f}"
    )

    # 3. Strategyproofness in action: the first relay tries inflating and
    #    shading its declared cost. Its *true* utility never improves.
    relay = result.relays[0]
    truthful_utility = relay_utility(result, g.costs, relay)
    print(f"\nrelay {relay} experiments with false declarations:")
    for factor in (0.0, 0.5, 2.0, 10.0):
        declared = float(g.costs[relay]) * factor
        outcome = vcg_unicast_payments(
            g.with_declaration(relay, declared), source, access_point
        )
        utility = relay_utility(outcome, g.costs, relay)
        verdict = "no gain" if utility <= truthful_utility + 1e-9 else "GAIN?!"
        print(
            f"  declares {declared:7.3f} (x{factor:4.1f}) -> "
            f"utility {utility:6.3f}  [{verdict}]"
        )
    print(
        f"  truthful utility {truthful_utility:.3f} is optimal — "
        "declaring the true cost is a dominant strategy."
    )


if __name__ == "__main__":
    main()
