#!/usr/bin/env python
"""Collusion stories: what the mechanism can and cannot defend.

Walks through the paper's four collusion results on concrete instances:

1. Figure 2 — a source profits by *hiding a link* under a naive protocol
   (why stage 1 of the distributed algorithm must be secured);
2. Theorem 7 — no mechanism outputting the LCP resists arbitrary 2-agent
   coalitions: we find a concrete witness automatically;
3. Section III.E — the neighbour-collusion payment scheme: immune to the
   motivating off-path attack, at a measurable premium (plus the
   reproduction's caveat about adjacent on-path pairs, DESIGN.md §5);
4. Figure 4 / Section III.H — resale-the-path collusion survives even
   truthful declarations.

Run:  python examples/collusion_and_security.py
"""

from repro import (
    find_resale_opportunities,
    find_two_agent_collusion,
    generators,
    neighbor_collusion_payments,
    relay_utility,
    vcg_unicast_payments,
)


def fig2_story() -> None:
    print("=" * 70)
    print("1. Figure 2: lying about the neighbourhood (why Algorithm 2 exists)")
    g, src, ap = generators.fig2_example()
    honest = vcg_unicast_payments(g, src, ap)
    print(f"   honest:  {honest.describe()}")
    lied = vcg_unicast_payments(g.without_edge(src, 2), src, ap)
    print(f"   hiding the link into the cheap branch: {lied.describe()}")
    print(
        f"   -> the source saves {honest.total_payment - lied.total_payment:.1f} "
        "by pretending a link does not exist; the secure stage-1 protocol\n"
        "      (examples/distributed_protocol_demo.py) detects exactly this."
    )


def theorem7_story() -> None:
    print("=" * 70)
    print("2. Theorem 7: some pair can always collude against plain VCG")
    for seed in range(30):
        g = generators.random_biconnected_graph(12, seed=seed)
        w = find_two_agent_collusion(g, 0, 5)
        if w is not None:
            print(
                f"   instance seed={seed}: node {w.liar} declares "
                f"{w.declared_cost:.2f} instead of {g.costs[w.liar]:.2f};"
            )
            print(
                f"   coalition ({w.liar}, {w.beneficiary}) joint utility "
                f"{w.truthful_joint_utility:.3f} -> "
                f"{w.colluding_joint_utility:.3f} (gain {w.gain:.3f})"
            )
            return
    print("   (no witness on the deviation grid for these instances)")


def neighbor_scheme_story() -> None:
    print("=" * 70)
    print("3. Section III.E: the neighbour-collusion scheme and its price")
    g = generators.random_neighbor_safe_graph(14, seed=3)
    src, ap = 7, 0
    plain = vcg_unicast_payments(g, src, ap)
    guarded = neighbor_collusion_payments(g, src, ap)
    print(f"   plain VCG total payment:     {plain.total_payment:8.3f}")
    print(f"   neighbour scheme total:      {guarded.total_payment:8.3f}")
    print(
        f"   premium for collusion resistance: "
        f"{guarded.total_payment - plain.total_payment:.3f}"
    )
    # the motivating attack, demonstrated dead:
    relay = plain.relays[0]
    off_path = [
        int(t) for t in g.neighbors(relay) if t not in plain.path
    ]
    if off_path:
        t = off_path[0]
        lie = g.with_declaration(t, float(g.costs[t]) * 10 + 5)
        before = guarded.payment(relay)
        after = neighbor_collusion_payments(lie, src, ap).payment(relay)
        print(
            f"   off-path neighbour {t} of relay {relay} inflates 10x: "
            f"relay's payment {before:.3f} -> {after:.3f} "
            f"({'unchanged — attack dead' if abs(after - before) < 1e-9 else 'CHANGED'})"
        )
    print(
        "   (caveat, DESIGN.md section 5: two *adjacent on-path* relays can\n"
        "    still shade jointly — Theorem 8 as stated does not cover them.)"
    )


def resale_story() -> None:
    print("=" * 70)
    print("4. Figure 4: resale-the-path collusion (truthful declarations!)")
    g, src, ap, reseller = generators.fig4_example()
    direct = vcg_unicast_payments(g, src, ap)
    via = vcg_unicast_payments(g, reseller, ap)
    print(f"   source {src} pays {direct.total_payment:.1f} going direct")
    print(
        f"   neighbour {reseller} (cost {g.costs[reseller]:.0f}) pays only "
        f"{via.total_payment:.1f} for its own route"
    )
    for opp in find_resale_opportunities(g, root=ap):
        if (opp.source, opp.reseller) == (src, reseller):
            print(f"   -> {opp.describe()}")
            print(
                "   the mechanism cannot price this away: it happens after\n"
                "   payments are fixed, during actual routing (open problem)."
            )
            return


def main() -> None:
    fig2_story()
    theorem7_story()
    neighbor_scheme_story()
    resale_story()


if __name__ == "__main__":
    main()
