#!/usr/bin/env python
"""Inside Algorithm 1: a step-by-step walkthrough on a small network.

Section III.B's fast payment computation is the paper's most technical
contribution. This example runs it on a graph small enough to print
everything — the shortest path trees, the level assignment (step 2), the
per-level region candidates (steps 3-4), the crossing edges (step 5) and
the resulting payments (step 6) — then confirms against the one-removal-
per-relay naive method.

Run:  python examples/algorithm1_walkthrough.py
"""

import numpy as np

from repro.core.fast_payment import fast_vcg_payments
from repro.core.vcg_unicast import vcg_unicast_payments
from repro.graph.dijkstra import node_weighted_spt
from repro.graph.node_graph import NodeWeightedGraph
from repro.utils.tables import ascii_table


def build_instance() -> tuple[NodeWeightedGraph, int, int]:
    """A 10-node instance with a 4-hop LCP and interesting detours.

        0 --- 1 --- 2 --- 3 --- 4      the cheap spine (costs 1..2)
        |    /|     |     |    /|
        5 --- 6 --- 7 --- 8 --- 9      a pricier parallel street
    """
    edges = [
        (0, 1), (1, 2), (2, 3), (3, 4),          # spine
        (5, 6), (6, 7), (7, 8), (8, 9),          # street
        (0, 5), (1, 6), (2, 7), (3, 8), (4, 9),  # rungs
        (1, 5), (4, 8),                          # diagonals
    ]
    costs = [0.0, 1.0, 2.0, 1.5, 0.0, 4.0, 3.0, 5.0, 3.5, 4.5]
    return NodeWeightedGraph(10, edges, costs), 0, 4


def main() -> None:
    g, source, target = build_instance()
    result = fast_vcg_payments(g, source, target)
    path = result.path
    s = len(path) - 1
    print(f"request: {source} -> {target}")
    print(f"LCP P = {' -> '.join(map(str, path))}   (cost {result.lcp_cost})\n")

    # Step 1: the two SPTs.
    spt_i = node_weighted_spt(g, source, backend="python")
    spt_j = node_weighted_spt(g, target, backend="python")
    print("step 1 — shortest path trees:")
    print(
        ascii_table(
            ["node", "L(v) = dist from source", "R(v) = dist to target"],
            [[v, spt_i.dist[v], spt_j.dist[v]] for v in range(g.n)],
        )
    )

    # Step 2: levels.
    print("\nstep 2 — levels (index of the last path node on the tree path):")
    levels = result.levels
    by_level: dict[int, list[int]] = {}
    for v in range(g.n):
        by_level.setdefault(int(levels[v]), []).append(v)
    for l in sorted(by_level):
        marker = f" (removal of r_{l} = node {path[l]})" if 1 <= l <= s - 1 else ""
        print(f"  level {l}: nodes {by_level[l]}{marker}")

    # Steps 3-5 happen inside; show their product: the avoiding costs.
    print("\nsteps 3-5 — v_k-avoiding path costs (region + crossing-edge sweep):")
    rows = []
    for l in range(1, s):
        r_l = path[l]
        rows.append(
            [
                f"r_{l} = {r_l}",
                result.avoiding_costs[r_l],
                result.avoiding_costs[r_l] - result.lcp_cost,
            ]
        )
    print(ascii_table(["removed relay", "||P_-k||", "detour gap"], rows))
    print(f"  bookkeeping: {result.stats}")

    # Step 6: payments, checked against the naive oracle.
    print("\nstep 6 — payments p^k = ||P_-k|| - ||P|| + d_k:")
    naive = vcg_unicast_payments(g, source, target, method="naive")
    rows = []
    for k in result.path[1:-1]:
        rows.append(
            [k, g.costs[k], result.payments[k], naive.payment(k)]
        )
    print(
        ascii_table(
            ["relay", "declared cost", "fast payment", "naive payment"], rows
        )
    )
    agree = all(
        abs(result.payments[k] - naive.payment(k)) < 1e-9
        for k in result.path[1:-1]
    )
    print(f"\nfast == naive: {agree}")
    assert agree


if __name__ == "__main__":
    main()
