#!/usr/bin/env python
"""Power-controlled radios: the link-cost model of Section III.F.

With transmit-power control a node's cost depends on *which neighbour* it
talks to (``c1 + c2 * d^kappa``), so its private type is a whole vector of
link costs — and the second simulation's heterogeneous ranges make links
genuinely one-directional. This example builds such a network, prices a
route, compares against the Anderegg-Eidenbenz spread bound, and shows
truthfulness holds even for vector types.

Run:  python examples/link_cost_routing.py
"""

import numpy as np

from repro.baselines.adhoc_vcg import eidenbenz_overpayment_bound
from repro.core.link_vcg import (
    all_sources_link_payments,
    link_vcg_payments,
    relay_link_utility,
)
from repro.core.overpayment import overpayment_summary
from repro.wireless.deployment import sample_heterogeneous_deployment


def main() -> None:
    # 1. The paper's second simulation: per-node ranges U[100, 500] m,
    #    per-node power coefficients c1 ~ U[300, 500], c2 ~ U[10, 50].
    dep = sample_heterogeneous_deployment(120, kappa=2.0, seed=77)
    dg = dep.digraph
    asym = sum(
        1 for u, v, _ in dg.arc_iter() if not dg.has_arc(v, u)
    )
    print(
        f"{dep.n} nodes ({dep.dropped} unreachable dropped), "
        f"{dg.num_arcs} directed links, {asym} one-directional"
    )

    # 2. Price one route end-to-end.
    source = max(
        (i for i in range(1, dep.n)),
        key=lambda i: 0,  # deterministic pick below
    )
    table = all_sources_link_payments(dg, root=0)
    candidates = [
        i for i in table.sources() if len(table.path(i)) >= 4
        and not table.is_monopolized(i)
    ]
    source = candidates[0] if candidates else next(iter(table.sources()))
    r = link_vcg_payments(dg, source, 0, on_monopoly="inf")
    print(f"\nsession {source} -> 0 over {len(r.path) - 1} hops:")
    path = r.path
    for idx in range(1, len(path) - 1):
        k, nxt = path[idx], path[idx + 1]
        print(
            f"  relay {k:3d} transmits to {nxt:3d} at link cost "
            f"{dg.arc_weight(k, nxt):10.1f}, paid {r.payment(k):10.1f}, "
            f"profit {relay_link_utility(dg, r, k):8.1f}"
        )
    print(
        f"  total payment {r.total_payment:.1f} vs relay cost {r.lcp_cost:.1f} "
        f"(ratio {r.overpayment_ratio:.3f})"
    )

    # 3. Vector-type truthfulness: the first relay rescales its entire
    #    declared cost row; its true profit never improves.
    k = r.relays[0]
    base = relay_link_utility(dg, r, k)
    print(f"\nrelay {k} tries misdeclaring its whole cost vector:")
    for factor in (0.5, 2.0, 5.0):
        row = dg.cost_row(k)
        finite = np.isfinite(row)
        row[finite] *= factor
        row[k] = 0.0
        out = link_vcg_payments(dg.with_declaration(k, row), source, 0,
                                on_monopoly="inf")
        util = relay_link_utility(dg, out, k)
        print(
            f"  x{factor:3.1f}: utility {util:10.1f} "
            f"({'no gain' if util <= base + 1e-6 else 'GAIN?!'})"
        )

    # 4. Network-wide: measured overpayment vs the analytic spread bound.
    summary = overpayment_summary(table)
    bound = eidenbenz_overpayment_bound(dg)
    print(f"\n{summary.describe()}")
    print(
        f"Anderegg-Eidenbenz spread bound on the ratio: "
        f"{bound.ratio_bound:.1f} (measured TOR {summary.tor:.2f} — far below)"
    )


if __name__ == "__main__":
    main()
