#!/usr/bin/env python
"""The device owner's view: incomes, bills, and what mobility costs.

Three questions a participant (or operator) would ask of the mechanism,
answered on concrete instances:

1. Under all-to-all traffic, who earns and who pays? (the all-pairs
   generalization the paper sketches in Section II)
2. Does the access point's ledger actually clear — with the Section III.H
   safeguards against repudiation and free riding?
3. How much of the pricing state survives when nodes move? (the static-
   network assumption of Section III.C, stress-tested)

Run:  python examples/network_economy.py
"""

import numpy as np

from repro.accounting import (
    AccessPointLedger,
    bill_session,
    uniform_workload,
)
from repro.analysis.churn import mobility_churn_experiment
from repro.core.allpairs import TrafficMatrix, network_economy
from repro.core.vcg_unicast import vcg_unicast_payments
from repro.graph import generators as gen
from repro.utils.tables import ascii_table
from repro.wireless.geometry import PAPER_REGION
from repro.wireless.mobility import GaussianDrift


def economy_story() -> None:
    print("=" * 70)
    print("1. all-to-all traffic: who profits from relaying?")
    g = gen.random_biconnected_graph(20, extra_edge_prob=0.15, seed=101)
    econ = network_economy(g, TrafficMatrix.uniform(g.n, intensity=1.0))
    by_profit = sorted(econ.nodes, key=lambda e: -e.profit)
    rows = [
        [e.node, round(e.packets_relayed), round(e.income, 1),
         round(e.energy_cost, 1), round(e.profit, 1)]
        for e in by_profit[:6]
    ]
    print(
        ascii_table(
            ["node", "pkts relayed", "income", "energy cost", "profit"],
            rows,
            title="   top relays under uniform all-to-all traffic",
        )
    )
    print(
        f"   network overpayment ratio {econ.overpayment_ratio:.3f}; "
        f"income Gini {econ.gini_income():.3f} "
        "(how concentrated the relay business is)"
    )


def ledger_story() -> None:
    print("=" * 70)
    print("2. clearing at the access point (Section III.H)")
    g = gen.random_biconnected_graph(15, extra_edge_prob=0.2, seed=102)
    ledger = AccessPointLedger(g.n)
    priced = {}
    settled = skipped = 0
    for session in uniform_workload(g.n, 60, seed=103):
        if session.source not in priced:
            priced[session.source] = vcg_unicast_payments(
                g, session.source, 0, on_monopoly="inf"
            )
        p = priced[session.source]
        if any(not np.isfinite(v) for v in p.payments.values()):
            skipped += 1
            continue
        ledger.settle(
            bill_session(p, session),
            ledger.sign(session.source, session),
            ledger.sign(0, session),
        )
        settled += 1
    print(f"   settled {settled} sessions ({skipped} unpriceable skipped)")
    for acct in ledger.top_earners(3):
        print(f"   {acct.describe()}")
    print(f"   ledger conservation check: sum of balances = "
          f"{ledger.total_balance():+.2e}")

    # the safeguards in action
    from repro.accounting import RepudiationError, UnacknowledgedError
    from repro.accounting.sessions import Session

    session = Session(source=7, packets=2)
    billing = bill_session(priced.get(7) or vcg_unicast_payments(g, 7, 0), session)
    try:
        ledger.settle(billing, None, ledger.sign(0, session))
    except RepudiationError as e:
        print(f"   repudiation attempt rejected: {e}")
    try:
        ledger.settle(billing, ledger.sign(7, session), None)
    except UnacknowledgedError as e:
        print(f"   free-riding attempt rejected: {e}")


def mobility_story() -> None:
    print("=" * 70)
    print("3. what mobility does to the prices")
    for sigma in (20.0, 80.0, 200.0):
        model = GaussianDrift(PAPER_REGION, sigma=sigma)
        result = mobility_churn_experiment(model, n=100, epochs=4, seed=104)
        print(f"   drift sigma={sigma:5.0f} m/epoch -> {result.describe()}")
    print(
        "   -> payments are far more fragile than routes: a moving *detour*\n"
        "      changes a payment even when the route itself survives, so the\n"
        "      static-network protocol must re-run stage 2 almost every epoch."
    )


def main() -> None:
    economy_story()
    ledger_story()
    mobility_story()


if __name__ == "__main__":
    main()
