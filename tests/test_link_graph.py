"""Tests for the directed link-weighted graph model (Section III.F)."""

import numpy as np
import pytest
from hypothesis import given

from repro.errors import InvalidGraphError
from repro.graph.link_graph import LinkWeightedDigraph

from conftest import robust_digraphs


@pytest.fixture
def tri() -> LinkWeightedDigraph:
    """Asymmetric triangle: 0->1 (1), 1->0 (2), 1->2 (3), 2->0 (4), 0->2 (9)."""
    return LinkWeightedDigraph(
        3, [(0, 1, 1.0), (1, 0, 2.0), (1, 2, 3.0), (2, 0, 4.0), (0, 2, 9.0)]
    )


class TestConstruction:
    def test_counts(self, tri):
        assert tri.n == 3 and tri.num_arcs == 5

    def test_duplicate_arc_rejected(self):
        with pytest.raises(InvalidGraphError, match="duplicate"):
            LinkWeightedDigraph(2, [(0, 1, 1.0), (0, 1, 2.0)])

    def test_self_loop_rejected(self):
        with pytest.raises(InvalidGraphError, match="self-loop"):
            LinkWeightedDigraph(2, [(0, 0, 1.0)])

    def test_infinite_weight_rejected(self):
        with pytest.raises(InvalidGraphError, match="invalid weight"):
            LinkWeightedDigraph(2, [(0, 1, float("inf"))])

    def test_negative_weight_rejected(self):
        with pytest.raises(InvalidGraphError, match="invalid weight"):
            LinkWeightedDigraph(2, [(0, 1, -1.0)])

    def test_from_cost_matrix_roundtrip(self, tri):
        clone = LinkWeightedDigraph.from_cost_matrix(tri.cost_matrix())
        assert clone == tri

    def test_from_cost_matrix_requires_square(self):
        with pytest.raises(InvalidGraphError, match="square"):
            LinkWeightedDigraph.from_cost_matrix(np.zeros((2, 3)))

    def test_from_undirected_symmetric(self):
        g = LinkWeightedDigraph.from_undirected(3, [(0, 1, 2.0), (1, 2, 3.0)])
        assert g.arc_weight(0, 1) == g.arc_weight(1, 0) == 2.0
        assert g.num_arcs == 4

    def test_from_node_weighted(self, small_graph):
        dg = LinkWeightedDigraph.from_node_weighted(small_graph)
        # arc u -> v carries the tail's node cost
        for u, v, w in dg.arc_iter():
            assert w == pytest.approx(float(small_graph.costs[u]))


class TestQueries:
    def test_arc_weight_and_absence(self, tri):
        assert tri.arc_weight(0, 1) == 1.0
        assert tri.arc_weight(2, 1) == float("inf")
        assert tri.has_arc(1, 2) and not tri.has_arc(2, 1)

    def test_out_neighbors(self, tri):
        heads, wts = tri.out_neighbors(0)
        assert heads.tolist() == [1, 2]
        assert wts.tolist() == [1.0, 9.0]

    def test_cost_row_convention(self, tri):
        row = tri.cost_row(1)
        assert row[1] == 0.0  # diagonal
        assert row[0] == 2.0 and row[2] == 3.0

    def test_path_cost_counts_all_arcs(self, tri):
        assert tri.path_cost([0, 1, 2, 0]) == 1.0 + 3.0 + 4.0

    def test_path_cost_missing_arc(self, tri):
        with pytest.raises(InvalidGraphError, match="missing arc"):
            tri.path_cost([2, 1])

    def test_relay_cost_excludes_first_hop(self, tri):
        assert tri.relay_cost([0, 1, 2, 0]) == pytest.approx(3.0 + 4.0)
        assert tri.relay_cost([0, 1]) == 0.0
        assert tri.relay_cost([0]) == 0.0


class TestTransforms:
    def test_reverse_is_involution(self, tri):
        assert tri.reverse().reverse() is tri

    def test_reverse_arcs(self, tri):
        rev = tri.reverse()
        assert rev.arc_weight(1, 0) == tri.arc_weight(0, 1)
        assert rev.num_arcs == tri.num_arcs

    def test_with_node_removed(self, tri):
        g2 = tri.with_node_removed(1)
        assert g2.num_arcs == 2  # only 0->2 and 2->0 survive
        assert not g2.has_arc(0, 1) and not g2.has_arc(1, 2)

    def test_with_nodes_removed(self, tri):
        g2 = tri.with_nodes_removed([1, 2])
        assert g2.num_arcs == 0

    def test_with_declaration_replaces_row_only(self, tri):
        row = np.full(3, np.inf)
        row[2] = 5.0
        g2 = tri.with_declaration(0, row)
        assert g2.arc_weight(0, 2) == 5.0
        assert not g2.has_arc(0, 1)  # dropped by the declaration
        assert g2.arc_weight(1, 0) == 2.0  # incoming arcs untouched

    def test_with_declaration_negative_rejected(self, tri):
        row = np.full(3, np.inf)
        row[1] = -1.0
        with pytest.raises(InvalidGraphError, match="negative"):
            tri.with_declaration(0, row)

    def test_scipy_csr_preserves_zero_arcs(self):
        g = LinkWeightedDigraph(2, [(0, 1, 0.0)])
        mat = g.to_scipy_csr()
        assert mat.nnz == 1  # the zero-weight arc survives via the nudge

    def test_to_networkx(self, tri):
        nx_g = tri.to_networkx()
        assert nx_g.number_of_edges() == tri.num_arcs
        assert nx_g[0][1]["weight"] == 1.0


class TestProperties:
    @given(robust_digraphs(max_nodes=12))
    def test_cost_matrix_roundtrip(self, dg):
        assert LinkWeightedDigraph.from_cost_matrix(dg.cost_matrix()) == dg

    @given(robust_digraphs(max_nodes=12))
    def test_reverse_preserves_weights(self, dg):
        rev = dg.reverse()
        for u, v, w in dg.arc_iter():
            assert rev.arc_weight(v, u) == w
