"""The docs pipeline: generator health and committed-reference coverage.

``make docs`` (tools/build_docs.py) must document every public
``repro.*`` module, and the committed ``docs/api/`` tree must not drift
behind the package — adding a module without regenerating the reference
is a test failure, not a silent gap.
"""

import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "tools"))

import build_docs  # noqa: E402


@pytest.fixture(scope="module")
def modules():
    """Every public repro.* module name."""
    return build_docs.discover_modules()


def test_discovery_finds_the_package_tree(modules):
    assert "repro" in modules
    assert "repro.distributed.faults" in modules
    assert "repro.analysis.chaos" in modules
    # no private module leaks into the public reference
    assert not any("._" in m or m.startswith("_") for m in modules)


def test_generator_runs_clean(tmp_path, modules):
    """The fallback generator documents every module without problems."""
    problems = build_docs.build_markdown(tmp_path, modules)
    assert problems == []
    written = {p.name for p in tmp_path.glob("*.md")}
    assert written == {f"{m}.md" for m in modules} | {"index.md"}


def test_every_page_has_content(tmp_path):
    mods = ["repro.distributed.faults", "repro.analysis.chaos"]
    problems = build_docs.build_markdown(tmp_path, mods)
    assert problems == []
    page = (tmp_path / "repro.distributed.faults.md").read_text()
    assert "# `repro.distributed.faults`" in page
    assert "FaultPlan" in page and "ReliableNode" in page
    chaos = (tmp_path / "repro.analysis.chaos.md").read_text()
    assert "chaos_convergence_experiment" in chaos


def test_committed_reference_covers_every_module(modules):
    """docs/api/ is regenerated whenever the public surface changes."""
    api = ROOT / "docs" / "api"
    assert api.is_dir(), "docs/api/ missing — run `make docs`"
    committed = {p.stem for p in api.glob("*.md")} - {"index"}
    missing = set(modules) - committed
    assert not missing, (
        f"modules missing from docs/api/ (run `make docs`): {sorted(missing)}"
    )
    index = (api / "index.md").read_text()
    for m in modules:
        assert f"`{m}`" in index, f"{m} missing from docs/api/index.md"


def test_missing_module_docstring_is_a_problem(tmp_path, monkeypatch):
    """The generator reports (not ignores) undocumented modules."""
    import types

    bare = types.ModuleType("repro._docless_probe")
    monkeypatch.setitem(sys.modules, "repro._docless_probe", bare)
    page, problems = build_docs.render_module("repro._docless_probe")
    assert any("missing module docstring" in p for p in problems)


class TestLinkChecker:
    """The markdown link/anchor checker `make docs` gates on."""

    def _repo(self, tmp_path, files):
        for rel, content in files.items():
            p = tmp_path / rel
            p.parent.mkdir(parents=True, exist_ok=True)
            p.write_text(content)
        return tmp_path

    def test_clean_tree_passes(self, tmp_path):
        root = self._repo(tmp_path, {
            "README.md": "[guide](docs/a.md) and [sec](docs/a.md#my-heading)",
            "docs/a.md": "# My heading\n\nsee [readme](../README.md)\n",
        })
        assert build_docs.check_links(root) == []

    def test_dead_file_link_reported(self, tmp_path):
        root = self._repo(tmp_path, {
            "README.md": "broken: [x](docs/missing.md)",
            "docs/a.md": "# A\n",
        })
        problems = build_docs.check_links(root)
        assert len(problems) == 1
        assert "dead link" in problems[0] and "missing.md" in problems[0]

    def test_dead_anchor_reported(self, tmp_path):
        root = self._repo(tmp_path, {
            "README.md": "[x](docs/a.md#no-such-heading)",
            "docs/a.md": "# Real heading\n",
        })
        problems = build_docs.check_links(root)
        assert len(problems) == 1 and "dead anchor" in problems[0]

    def test_same_file_anchor(self, tmp_path):
        root = self._repo(tmp_path, {
            "docs/a.md": "# Top\n\n[down](#details)\n\n## Details\n",
            "docs/b.md": "[bad](#nowhere)\n",
        })
        problems = build_docs.check_links(root)
        assert len(problems) == 1 and "b.md" in problems[0]

    def test_external_and_code_links_skipped(self, tmp_path):
        root = self._repo(tmp_path, {
            "docs/a.md": (
                "# A\n\n[ext](https://example.com/x.md) "
                "[mail](mailto:a@b.c)\n\n"
                "```\n[not a link](nothing.md)\n```\n"
            ),
        })
        assert build_docs.check_links(root) == []

    def test_slugs_match_github_rules(self):
        assert build_docs._github_slug("The facade and the engine") == \
            "the-facade-and-the-engine"
        assert build_docs._github_slug("`repro.engine` — WAL & CRCs!") == \
            "reproengine--wal--crcs"

    def test_committed_docs_have_no_dead_links(self):
        assert build_docs.check_links(ROOT) == []
