"""Shortest-path tests: backends agree with each other and with networkx."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graph.dijkstra import (
    link_weighted_distance,
    link_weighted_spt,
    node_weighted_distance,
    node_weighted_spt,
)

from conftest import biconnected_graphs, robust_digraphs


def nx_node_weighted_dists(g, root):
    """Oracle: node-weighted distances via the half-sum edge transform."""
    h = nx.Graph()
    h.add_nodes_from(range(g.n))
    for u, v in g.edge_iter():
        h.add_edge(u, v, weight=0.5 * (g.costs[u] + g.costs[v]))
    raw = nx.single_source_dijkstra_path_length(h, root)
    return {
        x: d - 0.5 * (g.costs[root] + g.costs[x]) if x != root else 0.0
        for x, d in raw.items()
    }


class TestNodeWeightedSpt:
    def test_small_graph_by_hand(self, small_graph):
        # ring 0-1-2-3-4-5-0 with costs [0,1,2,3,4,5]
        spt = node_weighted_spt(small_graph, 0, backend="python")
        assert spt.dist[1] == 0.0  # adjacent: no relays
        assert spt.dist[2] == 1.0  # via node 1
        assert spt.dist[3] == 3.0  # via 1,2
        assert spt.dist[4] == 5.0  # via 5 (cost 5) vs via 1,2,3 (6)
        assert spt.dist[5] == 0.0

    def test_path_extraction(self, small_graph):
        spt = node_weighted_spt(small_graph, 0)
        assert spt.path_from_root(3) == [0, 1, 2, 3]
        assert spt.path_from_root(4) == [0, 5, 4]

    @given(biconnected_graphs(max_nodes=20), st.integers(0, 10**6))
    def test_backends_agree(self, g, seed):
        root = seed % g.n
        a = node_weighted_spt(g, root, backend="python")
        b = node_weighted_spt(g, root, backend="scipy")
        assert np.allclose(a.dist, b.dist)

    @given(biconnected_graphs(max_nodes=20))
    def test_matches_networkx(self, g):
        spt = node_weighted_spt(g, 0, backend="python")
        oracle = nx_node_weighted_dists(g, 0)
        for x in range(g.n):
            assert spt.dist[x] == pytest.approx(oracle[x], abs=1e-9)

    @given(biconnected_graphs(max_nodes=16))
    def test_paths_realize_distances(self, g):
        spt = node_weighted_spt(g, 0, backend="python")
        for x in range(g.n):
            path = spt.path_from_root(x)
            assert g.path_cost(path) == pytest.approx(float(spt.dist[x]))

    def test_forbidden_nodes_are_avoided(self, small_graph):
        spt = node_weighted_spt(small_graph, 0, forbidden=[1], backend="python")
        assert not np.isfinite(spt.dist[1])
        # 3 now reachable only the long way via 5, 4
        assert spt.dist[3] == pytest.approx(9.0)

    def test_forbidden_root_rejected(self, small_graph):
        with pytest.raises(GraphError, match="forbidden"):
            node_weighted_spt(small_graph, 0, forbidden=[0])

    def test_forbidden_boolean_mask(self, small_graph):
        mask = np.zeros(6, dtype=bool)
        mask[1] = True
        spt = node_weighted_spt(small_graph, 0, forbidden=mask, backend="python")
        assert spt.dist[3] == pytest.approx(9.0)

    def test_unknown_backend(self, small_graph):
        with pytest.raises(ValueError, match="backend"):
            node_weighted_spt(small_graph, 0, backend="gpu")

    def test_distance_helper(self, small_graph):
        assert node_weighted_distance(small_graph, 0, 3) == 3.0
        assert node_weighted_distance(small_graph, 2, 2) == 0.0

    def test_disconnected_gives_inf(self):
        from repro.graph.node_graph import NodeWeightedGraph

        g = NodeWeightedGraph(4, [(0, 1), (2, 3)], [1, 1, 1, 1])
        spt = node_weighted_spt(g, 0, backend="python")
        assert not np.isfinite(spt.dist[2])


class TestLinkWeightedSpt:
    @given(robust_digraphs(max_nodes=16), st.integers(0, 10**6))
    def test_backends_agree_both_directions(self, dg, seed):
        root = seed % dg.n
        for direction in ("from", "to"):
            a = link_weighted_spt(dg, root, direction=direction, backend="python")
            b = link_weighted_spt(dg, root, direction=direction, backend="scipy")
            assert np.allclose(a.dist, b.dist)

    @given(robust_digraphs(max_nodes=14))
    def test_matches_networkx(self, dg):
        h = dg.to_networkx()
        spt_from = link_weighted_spt(dg, 0, direction="from", backend="python")
        spt_to = link_weighted_spt(dg, 0, direction="to", backend="python")
        for x in range(dg.n):
            assert spt_from.dist[x] == pytest.approx(
                nx.dijkstra_path_length(h, 0, x), abs=1e-9
            )
            assert spt_to.dist[x] == pytest.approx(
                nx.dijkstra_path_length(h, x, 0), abs=1e-9
            )

    @given(robust_digraphs(max_nodes=14))
    def test_to_root_paths_are_forward_walks(self, dg):
        spt = link_weighted_spt(dg, 0, direction="to", backend="python")
        for x in range(1, dg.n):
            route = spt.path_to_root(x)
            assert route[0] == x and route[-1] == 0
            assert dg.path_cost(route) == pytest.approx(float(spt.dist[x]))

    def test_direction_validated(self, random_digraph):
        with pytest.raises(ValueError, match="direction"):
            link_weighted_spt(random_digraph, 0, direction="sideways")

    def test_distance_helper(self, random_digraph):
        d = link_weighted_distance(random_digraph, 3, 0)
        spt = link_weighted_spt(random_digraph, 3, direction="from")
        assert d == pytest.approx(float(spt.dist[0]))

    def test_zero_weight_arcs_exact(self):
        from repro.graph.link_graph import LinkWeightedDigraph

        dg = LinkWeightedDigraph(3, [(0, 1, 0.0), (1, 2, 0.0), (0, 2, 5.0)])
        spt = link_weighted_spt(dg, 0, direction="from", backend="scipy")
        assert spt.dist[2] == 0.0
